"""Figure 8: average read latency vs load.

Regenerates the experiment via :func:`repro.bench.experiments.fig8_read_latency`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig8_read_latency
from repro.bench.report import render

from conftest import SCALE


def test_fig08(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_read_latency(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
