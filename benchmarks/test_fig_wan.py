"""WAN frontier (beyond the paper): latency vs consistency across
three datacenters with ~25 ms one-way WAN links.

Regenerates the experiment via :func:`repro.bench.experiments.fig_wan`,
prints the measured latency rows, and asserts the shape checks:
cross-DC quorum writes pay at least one WAN RTT, local-quorum writes
and nearest-replica timeline reads stay under it, leases don't flap
through a merely-degraded WAN link, writes survive a whole-DC
partition, and the invariant audit plus strong-history check come back
clean.
"""

from repro.bench.experiments import fig_wan
from repro.bench.report import render

from conftest import SCALE


def test_fig_wan(benchmark):
    result = benchmark.pedantic(
        lambda: fig_wan(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
