"""Ablation: parallel force+propose (Fig. 4).

Regenerates the experiment via :func:`repro.bench.experiments.ablation_parallel_propose`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import ablation_parallel_propose
from repro.bench.report import render

from conftest import SCALE


def test_ablation_parallel_propose(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_parallel_propose(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
