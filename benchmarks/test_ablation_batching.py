"""Ablation: leader proposal batching.

Regenerates the experiment via
:func:`repro.bench.experiments.ablation_batching`, prints the swept
load curves per batch cap, and asserts the expected shape: the knee
moves out ≥1.5x at ``propose_batch_max_records=8`` (once the scale is
large enough to saturate the unbatched pipeline) while the lowest load
point pays no latency tax.
"""

from repro.bench.experiments import ablation_batching
from repro.bench.report import render

from conftest import SCALE


def test_ablation_batching(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_batching(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
