"""Ablation: commit piggybacking (D.1).

Regenerates the experiment via :func:`repro.bench.experiments.ablation_piggyback_commits`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import ablation_piggyback_commits
from repro.bench.report import render

from conftest import SCALE


def test_ablation_piggyback(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_piggyback_commits(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
