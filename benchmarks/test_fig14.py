"""Figure 14: conditional put vs regular put.

Regenerates the experiment via :func:`repro.bench.experiments.fig14_conditional_put`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig14_conditional_put
from repro.bench.report import render

from conftest import SCALE


def test_fig14(benchmark):
    result = benchmark.pedantic(
        lambda: fig14_conditional_put(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
