"""Shared configuration for the figure/table regeneration benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation and asserts its *shape checks* (see DESIGN.md).  Set
``REPRO_BENCH_SCALE`` (default 0.3) to trade wall time for fidelity;
EXPERIMENTS.md records a scale-1.0 run.
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))


@pytest.fixture(scope="session")
def scale():
    return SCALE
