"""Figure 15: Cassandra weak vs quorum writes.

Regenerates the experiment via :func:`repro.bench.experiments.fig15_weak_writes`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig15_weak_writes
from repro.bench.report import render

from conftest import SCALE


def test_fig15(benchmark):
    result = benchmark.pedantic(
        lambda: fig15_weak_writes(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
