"""Figure 11: write latency vs cluster size (EC2).

Regenerates the experiment via :func:`repro.bench.experiments.fig11_scaling`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig11_scaling
from repro.bench.report import render

from conftest import SCALE


def test_fig11(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_scaling(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
