"""Ablation: Zipfian key skew vs strong/timeline reads (§8.3 trade-off).

Regenerates the experiment via
:func:`repro.bench.experiments.ablation_skewed_reads`, prints the series,
and asserts the expected shape (skew saturates the hot leader; timeline
reads absorb it).
"""

from repro.bench.experiments import ablation_skewed_reads
from repro.bench.report import render

from conftest import SCALE


def test_ablation_skew(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_skewed_reads(scale=max(SCALE, 0.4)),
        rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
