"""Figure 12: mixed workload latency vs write percentage.

Regenerates the experiment via :func:`repro.bench.experiments.fig12_mixed`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig12_mixed
from repro.bench.report import render

from conftest import SCALE


def test_fig12(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_mixed(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
