"""Figure 13: write latency with an SSD log.

Regenerates the experiment via :func:`repro.bench.experiments.fig13_ssd`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig13_ssd
from repro.bench.report import render

from conftest import SCALE


def test_fig13(benchmark):
    result = benchmark.pedantic(
        lambda: fig13_ssd(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
