"""Ablation: group commit.

Regenerates the experiment via :func:`repro.bench.experiments.ablation_group_commit`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import ablation_group_commit
from repro.bench.report import render

from conftest import SCALE


def test_ablation_group_commit(benchmark):
    result = benchmark.pedantic(
        lambda: ablation_group_commit(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
