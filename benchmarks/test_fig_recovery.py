"""Recovery ramp (beyond the paper, §6.1): rejoin time for a follower
that missed a fixed-size write gap, measured after 1x and 10x total
history.

Regenerates the experiment via
:func:`repro.bench.experiments.fig_recovery`, prints the measured
rejoin times and WAL footprints, and asserts the shape checks: rejoin
bounded by the gap (not the history), WAL record and marker counts
bounded as the history grows 10x, and a clean, converged fig11-elastic
join ramp at both histories.
"""

from repro.bench.experiments import fig_recovery
from repro.bench.report import render

from conftest import SCALE


def test_fig_recovery(benchmark):
    result = benchmark.pedantic(
        lambda: fig_recovery(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
