"""Table 1: cohort recovery time vs commit period.

Regenerates the experiment via :func:`repro.bench.experiments.table1_recovery`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import table1_recovery
from repro.bench.report import render

from conftest import SCALE


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: table1_recovery(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
