"""Self-tuning control plane (beyond the paper): tuned vs hand-tuned.

Regenerates the experiment via :func:`repro.bench.experiments.fig_tune`,
prints the tuned-vs-hand-tuned and recovery tables, and asserts the
shape checks: every trial ledger shows a converging multi-trial search
(monotone best-so-far), the tuned configs are never worse than the
hand-tuned baselines beyond noise, at least one profile improves
materially or all sit at parity, and the recovery arm — started from a
deliberately detuned config — climbs back to within noise of the
hand-tuned optimum.
"""

from repro.bench.experiments import fig_tune
from repro.bench.report import render

from conftest import SCALE


def test_fig_tune(benchmark):
    result = benchmark.pedantic(
        lambda: fig_tune(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
