"""Simulator-kernel overhead guard.

Everything the repo measures rides on the discrete-event kernel, so a
slow kernel silently inflates every benchmark's wall time.  Two guards:

* the hot per-event classes stay ``__slots__``-only (an accidental
  ``__dict__`` costs both memory and attribute-lookup time on millions
  of instances);
* a microbenchmark drives the raw scheduler and the full process /
  timeout machinery, asserting events-per-second floors generous enough
  to pass on slow CI but far below healthy numbers — a 10x kernel
  regression fails loudly, a 10% one shows up in the benchmark history.
"""

import time

from repro.bench.openloop import (BurstyArrivals, DiurnalArrivals,
                                  MuxedUsers, PoissonArrivals)
from repro.core.commitqueue import PendingWrite
from repro.obs.trace import Span, TraceContext
from repro.sim.events import Event, Simulator
from repro.sim.metrics import Histogram
from repro.sim.network import Request, _Envelope
from repro.sim.process import Process, Timeout, spawn, timeout

#: classes instantiated once (or more) per simulated event/message/write,
#: plus the open-loop generator state touched on every arrival (heap
#: entries themselves are plain lists now — nothing to guard)
HOT_CLASSES = [Event, Process, Timeout, Request, _Envelope,
               PendingWrite, Span, TraceContext,
               PoissonArrivals, BurstyArrivals, DiurnalArrivals,
               MuxedUsers]

# Floors in events per wall-clock second, set at ~50% of the rates
# measured after the list-entry/lazy-cancel/timeout-fast-path kernel
# rewrite (raw 2.27M ev/s, process+timeout 584K ev/s, percentile 827K
# calls/s on the reference box) — high enough to lock the rewrite's
# gains in (the pre-rewrite kernel ran process+timeout at 208K ev/s,
# well under PROCESS_FLOOR), low enough to absorb slow CI.
RAW_FLOOR = 1_100_000
PROCESS_FLOOR = 290_000
PERCENTILE_FLOOR = 400_000


def test_hot_classes_have_no_dict():
    for cls in HOT_CLASSES:
        offenders = [c.__name__ for c in cls.__mro__
                     if "__dict__" in c.__dict__]
        assert not offenders, (
            f"{cls.__name__} instances grew a __dict__ via {offenders}; "
            f"keep the per-event hot path __slots__-only")


def _pump_callbacks(n):
    """n self-rescheduling raw callbacks through the event heap."""
    sim = Simulator()
    state = {"left": n}

    def tick():
        if state["left"] > 0:
            state["left"] -= 1
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def _pump_processes(n, n_procs=16):
    """n timeout yields spread over concurrent generator processes."""
    sim = Simulator()
    per_proc = n // n_procs

    def proc():
        for _ in range(per_proc):
            yield timeout(sim, 1e-6)

    for _ in range(n_procs):
        spawn(sim, proc())
    start = time.perf_counter()
    sim.run()
    return (per_proc * n_procs) / (time.perf_counter() - start)


def test_raw_event_loop_throughput(benchmark):
    rate = benchmark.pedantic(lambda: _pump_callbacks(200_000),
                              rounds=1, iterations=1)
    print(f"\nraw scheduler: {rate:,.0f} events/s")
    assert rate >= RAW_FLOOR, (
        f"raw event loop at {rate:,.0f} events/s "
        f"(floor {RAW_FLOOR:,})")


def test_process_machinery_throughput(benchmark):
    rate = benchmark.pedantic(lambda: _pump_processes(100_000),
                              rounds=1, iterations=1)
    print(f"\nprocess+timeout: {rate:,.0f} events/s")
    assert rate >= PROCESS_FLOOR, (
        f"process machinery at {rate:,.0f} events/s "
        f"(floor {PROCESS_FLOOR:,})")


def _pump_percentiles(samples, calls):
    """Repeated percentile reads over a fixed sample set — the phase
    aggregator's access pattern (many percentile calls per histogram,
    no adds in between).  The cached sorted view makes each call O(1);
    an implementation that re-sorts per call is ~1000x under the floor
    at this sample count."""
    hist = Histogram()
    for i in range(samples):
        hist.add(((i * 2654435761) % samples) / samples)
    start = time.perf_counter()
    for i in range(calls):
        hist.percentile(float(i % 100))
    return calls / (time.perf_counter() - start)


def test_percentile_calls_use_cached_sort(benchmark):
    rate = benchmark.pedantic(
        lambda: _pump_percentiles(samples=50_000, calls=5_000),
        rounds=1, iterations=1)
    print(f"\nhistogram percentile: {rate:,.0f} calls/s")
    assert rate >= PERCENTILE_FLOOR, (
        f"Histogram.percentile at {rate:,.0f} calls/s "
        f"(floor {PERCENTILE_FLOOR:,}); is the sorted view cached?")
