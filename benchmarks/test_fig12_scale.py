"""Open-loop scale-out: throughput linearity under fixed per-node load.

Regenerates the north-star scaling experiment via
:func:`repro.bench.experiments.fig12_scale` and asserts its shape
checks: completed throughput per node stays flat as the cluster grows,
nothing is shed at the in-flight cap, and the modeled-user population
scales with the cluster (1,048,576 users at 512 nodes when run at
scale 1.0; the bench-smoke tier runs 8 nodes / 2,048 users).
"""

from repro.bench.experiments import fig12_scale
from repro.bench.report import render

from conftest import SCALE


def test_fig12_scale(benchmark):
    result = benchmark.pedantic(
        lambda: fig12_scale(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
