"""Elastic growth (beyond the paper, §10): throughput ramps as two
nodes join a loaded 5-node cluster and the rebalancer splits the hot
range onto them.

Regenerates the experiment via
:func:`repro.bench.experiments.fig11_elastic`, prints the measured
before/during/after throughput, and asserts the shape checks: routing
convergence, new nodes leading the split ranges, zero failed strong
reads, a clean invariant audit through mid-move crashes, and (at full
scale) a >= 1.4x post-join throughput lift.
"""

from repro.bench.experiments import fig11_elastic
from repro.bench.report import render

from conftest import SCALE


def test_fig11_elastic(benchmark):
    result = benchmark.pedantic(
        lambda: fig11_elastic(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
