"""Figure 9: average write latency vs load.

Regenerates the experiment via :func:`repro.bench.experiments.fig9_write_latency`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig9_write_latency
from repro.bench.report import render

from conftest import SCALE


def test_fig09(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_write_latency(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
