"""Figure 16: writes with a main-memory log.

Regenerates the experiment via :func:`repro.bench.experiments.fig16_memory_log`,
prints the same rows/series the paper reports, and asserts the expected
shape (who wins, by roughly what factor).
"""

from repro.bench.experiments import fig16_memory_log
from repro.bench.report import render

from conftest import SCALE


def test_fig16(benchmark):
    result = benchmark.pedantic(
        lambda: fig16_memory_log(scale=SCALE), rounds=1, iterations=1)
    print()
    print(render(result))
    assert result.passed, render(result)
