"""CI docs gate: the README and top-level markdown stay in sync with
the tree.

Three checks, each tied to a drift that has actually happened in repos
like this one: a new package that never makes it into the architecture
map, a new CLI subcommand missing from the reference table, and a
renamed file leaving dangling markdown links.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
README = REPO / "README.md"


def _packages():
    """Every package directory under src/repro (has an __init__.py)."""
    return sorted(p.name for p in SRC.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def _subcommands():
    """Every subcommand dispatched by src/repro/__main__.py."""
    source = (SRC / "__main__.py").read_text()
    commands = re.findall(r'command == "(\w+)"', source)
    assert commands, "no subcommands parsed from __main__.py"
    return sorted(set(commands))


def test_every_package_is_in_the_readme_architecture_map():
    readme = README.read_text()
    section = readme.split("## Architecture", 1)[1].split("\n## ", 1)[0]
    missing = [name for name in _packages()
               if f"`{name}/`" not in section]
    assert not missing, (
        f"packages missing from README.md's Architecture section "
        f"(add a `{missing[0]}/` paragraph): {missing}")


def test_every_cli_subcommand_is_in_the_readme_cli_table():
    readme = README.read_text()
    section = readme.split("## CLI reference", 1)[1].split("\n## ", 1)[0]
    missing = [cmd for cmd in _subcommands()
               if f"python -m repro {cmd}" not in section]
    assert not missing, (
        f"subcommands missing from README.md's CLI reference table: "
        f"{missing}")


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _intra_repo_links(path: Path):
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_intra_repo_markdown_links_resolve():
    broken = []
    for doc in sorted(REPO.glob("*.md")):
        for target in _intra_repo_links(doc):
            if not target:
                continue
            if not (doc.parent / target).exists():
                broken.append(f"{doc.name}: {target}")
    assert not broken, f"dangling markdown links: {broken}"
