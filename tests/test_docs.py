"""CI docs gate: the README and top-level markdown stay in sync with
the tree.

Four checks, each tied to a drift that has actually happened in repos
like this one: a new package that never makes it into the architecture
map, a new CLI subcommand missing from the reference table, a renamed
file leaving dangling markdown links, and TUNING.md's knob inventory
drifting from the registry it documents.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
README = REPO / "README.md"
TUNING = REPO / "TUNING.md"


def _packages():
    """Every package directory under src/repro (has an __init__.py)."""
    return sorted(p.name for p in SRC.iterdir()
                  if p.is_dir() and (p / "__init__.py").exists())


def _subcommands():
    """Every subcommand dispatched by src/repro/__main__.py."""
    source = (SRC / "__main__.py").read_text()
    commands = re.findall(r'command == "(\w+)"', source)
    assert commands, "no subcommands parsed from __main__.py"
    return sorted(set(commands))


def test_every_package_is_in_the_readme_architecture_map():
    readme = README.read_text()
    section = readme.split("## Architecture", 1)[1].split("\n## ", 1)[0]
    missing = [name for name in _packages()
               if f"`{name}/`" not in section]
    assert not missing, (
        f"packages missing from README.md's Architecture section "
        f"(add a `{missing[0]}/` paragraph): {missing}")


def test_every_cli_subcommand_is_in_the_readme_cli_table():
    readme = README.read_text()
    section = readme.split("## CLI reference", 1)[1].split("\n## ", 1)[0]
    missing = [cmd for cmd in _subcommands()
               if f"python -m repro {cmd}" not in section]
    assert not missing, (
        f"subcommands missing from README.md's CLI reference table: "
        f"{missing}")


def _inventory_knobs():
    """Knob names documented in TUNING.md's inventory tables.

    Inventory rows are table lines whose first cell is a backticked
    knob name: ``| `commit_period` | ... |``.
    """
    text = TUNING.read_text()
    section = text.split("## Knob inventory", 1)[1].split("\n## ", 1)[0]
    return re.findall(r"^\|\s*`(\w+)`", section, flags=re.MULTILINE)


def test_tuning_inventory_matches_the_registry():
    from repro.tune.registry import knob_names
    documented = _inventory_knobs()
    assert len(documented) == len(set(documented)), (
        "duplicate knob rows in TUNING.md's inventory")
    registry = set(knob_names())
    phantom = sorted(set(documented) - registry)
    missing = sorted(registry - set(documented))
    assert not phantom, (
        f"TUNING.md documents knobs the registry doesn't have: {phantom}")
    assert not missing, (
        f"registry knobs missing from TUNING.md's inventory: {missing}")


def test_tuning_inventory_rows_are_in_registry_order():
    # registry order is the coordinate-descent walk order; the doc
    # mirrors it so a ledger reads top-to-bottom against the table
    from repro.tune.registry import knob_names
    assert _inventory_knobs() == knob_names()


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _intra_repo_links(path: Path):
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_intra_repo_markdown_links_resolve():
    broken = []
    for doc in sorted(REPO.glob("*.md")):
        for target in _intra_repo_links(doc):
            if not target:
                continue
            if not (doc.parent / target).exists():
                broken.append(f"{doc.name}: {target}")
    assert not broken, f"dangling markdown links: {broken}"
