"""The public import surface: every exported name resolves and the
package metadata is sane (a downstream user's first smoke test)."""

import importlib

import pytest

import repro


PACKAGES = ["repro.sim", "repro.storage", "repro.coord", "repro.core",
            "repro.baseline", "repro.bench"]


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_items_documented(package):
    module = importlib.import_module(package)
    for name in module.__all__:
        item = getattr(module, name)
        if name == "LogRecord":      # a typing Union, not an API object
            continue
        if callable(item) or isinstance(item, type):
            assert item.__doc__, f"{package}.{name} lacks a docstring"


def test_headline_types_importable_from_one_place():
    from repro.core import (SpinnakerCluster, SpinnakerClient,
                            SpinnakerConfig, Transaction)
    from repro.baseline import CassandraCluster
    from repro.bench import ALL_EXPERIMENTS
    assert len(ALL_EXPERIMENTS) == 19
