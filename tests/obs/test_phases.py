"""Unit tests for the phase aggregator (repro.obs.phases)."""

import pytest

from repro.obs.phases import (TraceView, format_phase_table, format_trace,
                              phase_durations, phase_histograms,
                              phase_summary, slowest_traces)
from repro.obs.trace import Span

_NEXT_ID = [100]


def _span(trace_id, name, node, start, end, parent=0, truncated=False):
    _NEXT_ID[0] += 1
    span = Span(trace_id, _NEXT_ID[0], parent, name, node, start)
    span.end = end
    span.truncated = truncated
    return span


def _view(trace_id, op="write", total=0.010, spans=()):
    root = Span(trace_id, trace_id, None, op, "client", 0.0)
    root.end = total
    children = sorted(spans, key=lambda s: (s.start, s.span_id))
    return TraceView(trace_id, root, list(children))


def test_phase_durations_sum_same_named_spans():
    # A retried request has two route spans; both attempts count.
    view = _view(1, spans=[
        _span(1, "route", "n0", 0.000, 0.001),
        _span(1, "route", "n1", 0.004, 0.006),
        _span(1, "log_force", "n1", 0.006, 0.009),
    ])
    durations = phase_durations(view)
    assert durations["route"] == pytest.approx(0.003)
    assert durations["log_force"] == pytest.approx(0.003)


def test_phase_summary_means_and_shares():
    views = [
        _view(1, total=0.010, spans=[
            _span(1, "route", "n0", 0.0, 0.002),
            _span(1, "log_force", "n0", 0.002, 0.008)]),
        _view(2, total=0.020, spans=[
            _span(2, "route", "n0", 0.0, 0.004),
            _span(2, "log_force", "n0", 0.004, 0.016)]),
    ]
    summary = phase_summary(views)
    write = summary["write"]
    assert write["count"] == 2
    assert write["total_mean_ms"] == pytest.approx(15.0)
    assert write["phases"]["route"]["mean_ms"] == pytest.approx(3.0)
    assert write["phases"]["route"]["share"] == pytest.approx(3.0 / 15.0)
    assert write["phases"]["log_force"]["share"] == pytest.approx(
        9.0 / 15.0)
    # canonical phase order, not alphabetical
    assert list(write["phases"]) == ["route", "log_force"]


def test_incomplete_traces_are_excluded_from_histograms():
    ok = _view(1, spans=[_span(1, "route", "n0", 0.0, 0.001)])
    failed = _view(2, spans=[_span(2, "route", "n0", 0.0, 0.001)])
    failed.root.fields = {"error": "RequestTimeout"}
    hists = phase_histograms([ok, failed])
    assert hists["write"]["_total"].count == 1


def test_slowest_traces_orders_and_breaks_ties_deterministically():
    views = [_view(1, total=0.010), _view(2, total=0.030),
             _view(3, total=0.030), _view(4, total=0.020)]
    slow = slowest_traces(views, k=3)
    assert [v.trace_id for v in slow] == [2, 3, 4]


def test_format_trace_renders_offsets_and_truncation():
    view = _view(7, spans=[
        _span(7, "route", "n0", 0.0, 0.001),
        _span(7, "log_force", "n0", 0.001, 0.004, truncated=True)])
    text = format_trace(view)
    assert "trace 7 · write" in text
    assert "route" in text and "log_force" in text
    assert "✂" in text and "[truncated spans]" in text


def test_format_phase_table_contains_shares():
    views = [_view(1, total=0.010,
                   spans=[_span(1, "route", "n0", 0.0, 0.005)])]
    table = format_phase_table(phase_summary(views))
    assert "write: n=1" in table
    assert "route" in table and "50.0%" in table
