"""End-to-end tracing through the protocol: full write/read traces,
span truncation across a leader takeover, and shared-force attribution
under proposal batching."""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.obs import (WRITE_PHASES, RequestTracer, collect_traces,
                       phase_durations)
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def _traced_cluster(n_nodes=3, seed=3, config=None, sample_every=1):
    tracer = RequestTracer(sample_every=sample_every)
    cluster = SpinnakerCluster(n_nodes=n_nodes, config=config, seed=seed,
                               request_tracer=tracer)
    cluster.start()
    return cluster, tracer


def _cohort_keys(cluster, cohort_id, count, prefix=b"bk"):
    """Deterministic keys all routed to one cohort."""
    part = cluster.partitioner
    keys = []
    i = 0
    while len(keys) < count:
        key = prefix + b"-%d" % i
        if part.cohort_for_key(key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


class TestWriteTrace:
    def test_write_trace_has_every_phase_once(self):
        cluster, tracer = _traced_cluster()
        client = cluster.client("c0")

        def wl():
            yield from client.put(b"k", b"v", b"x" * 64)

        proc = spawn(cluster.sim, wl(), name="wl")
        cluster.run_until(lambda: proc.triggered, limit=30.0)
        views = collect_traces(tracer, op="write")
        assert len(views) == 1
        view = views[0]
        assert view.op == "write" and view.completed
        names = [s.name for s in view.spans]
        for phase in WRITE_PHASES:
            assert names.count(phase) == 1, (phase, names)
        # Leader-side spans stay inside the client round trip, and the
        # force precedes commit.
        root = view.root
        by_name = {s.name: s for s in view.spans}
        for span in view.spans:
            assert root.start <= span.start
            assert span.end <= root.end + 1e-12
        assert (by_name["log_force"].end
                <= by_name["quorum_wait"].end + 1e-12)
        assert by_name["reply"].node == "c0"

    def test_read_trace_phases(self):
        cluster, tracer = _traced_cluster()
        client = cluster.client("c0")

        def wl():
            yield from client.put(b"k", b"v", b"val")
            got = yield from client.get(b"k", b"v", consistent=True)
            assert got.value == b"val"

        proc = spawn(cluster.sim, wl(), name="wl")
        cluster.run_until(lambda: proc.triggered, limit=30.0)
        reads = collect_traces(tracer, op="read")
        assert len(reads) == 1
        names = [s.name for s in reads[0].spans]
        assert names == ["route", "read_serve", "reply"]

    def test_unsampled_requests_leave_no_spans(self):
        cluster, tracer = _traced_cluster(sample_every=1000)
        client = cluster.client("c0")

        def wl():
            for i in range(3):
                yield from client.put(b"k%d" % i, b"v", b"x")

        proc = spawn(cluster.sim, wl(), name="wl")
        cluster.run_until(lambda: proc.triggered, limit=30.0)
        assert tracer.spans() == []
        # 3 writes plus any startup catch-up begins, all unsampled.
        assert tracer.skipped >= 3

    def test_null_tracer_cluster_serves_writes(self):
        cluster = SpinnakerCluster(n_nodes=3, seed=3)
        cluster.start()
        client = cluster.client("c0")

        def wl():
            yield from client.put(b"k", b"v", b"x")

        proc = spawn(cluster.sim, wl(), name="wl")
        cluster.run_until(lambda: proc.triggered, limit=30.0)
        assert cluster.request_tracer.spans() == []


def _sata_config():
    # Slow forces (2-10 ms) keep the write in flight long enough for a
    # fine-grained run_until poll to observe the leader's trace state.
    return SpinnakerConfig(log_profile=DiskProfile.sata_log())


class TestTakeoverTruncation:
    def test_leader_crash_truncates_open_spans(self):
        cluster, tracer = _traced_cluster(seed=5, config=_sata_config())
        client = cluster.client("c0")
        cohort = cluster.partitioner.cohort_for_key(key_of(b"tk"))
        cid = cohort.cohort_id
        leader_name = cluster.leader_of(cid)
        leader_node = cluster.nodes[leader_name]
        replica = leader_node.replicas[cid]

        done = {}

        def wl():
            yield from client.put(b"tk", b"v", b"x" * 64)
            done["ok"] = True

        spawn(cluster.sim, wl(), name="wl")
        # Run until the leader holds in-flight trace state (the write's
        # force/propose are pending), then fail-stop it mid-request.
        cluster.run_until(lambda: bool(replica._traces), limit=10.0,
                          step=0.001,
                          what="write in flight on the leader")
        leader_node.crash()
        cluster.run_until(lambda: done.get("ok", False), limit=60.0,
                          what="write completes after failover")

        views = collect_traces(tracer, op="write")
        assert len(views) == 1
        view = views[0]
        assert view.completed            # the retry eventually succeeded
        assert view.truncated            # but the first attempt shows
        truncated = [s for s in view.spans if s.truncated]
        assert truncated
        assert all(s.node == leader_name for s in truncated)
        # No span may outlive the crash instant on the dead leader, and
        # nothing of the write is left open anywhere (rejoin catch-up
        # traces may legitimately still be in flight elsewhere).
        crash_at = max(s.end for s in truncated)
        new_leader = cluster.leader_of(cid)
        assert new_leader != leader_name
        assert [s for s in tracer.open_spans()
                if s.trace_id == view.trace_id] == []
        assert all(s.node != leader_name for s in tracer.open_spans())
        complete = [s for s in view.spans
                    if not s.truncated and s.name == "quorum_wait"]
        assert complete and all(s.start >= crash_at for s in complete)

    def test_replica_has_no_trace_state_after_crash(self):
        cluster, tracer = _traced_cluster(seed=5, config=_sata_config())
        client = cluster.client("c0")
        cohort = cluster.partitioner.cohort_for_key(key_of(b"tk"))
        cid = cohort.cohort_id
        leader_node = cluster.nodes[cluster.leader_of(cid)]
        replica = leader_node.replicas[cid]

        spawn(cluster.sim, client.put(b"tk", b"v", b"x"), name="wl")
        cluster.run_until(lambda: bool(replica._traces), limit=10.0,
                          step=0.001)
        leader_node.crash()
        assert replica._traces == {}


class TestBatchedForceAttribution:
    def test_shared_force_attributed_once_per_member(self):
        # SATA forces are slow; a burst of concurrent same-cohort writes
        # congests the commit queue and engages the proposal batcher.
        cluster, tracer = _traced_cluster(
            seed=2, config=SpinnakerConfig(
                log_profile=DiskProfile.sata_log()))
        client = cluster.client("c0")
        cohort = cluster.partitioner.cohort_for_key(key_of(b"bk-0"))
        cid = cohort.cohort_id
        keys = _cohort_keys(cluster, cid, 12)
        done = {"n": 0}

        def one(key):
            yield from client.put(key, b"v", b"x" * 64)
            done["n"] += 1

        for key in keys:
            spawn(cluster.sim, one(key), name=f"w-{key.decode()}")
        cluster.run_until(lambda: done["n"] == len(keys), limit=60.0,
                          what="burst writes")

        leader = cluster.nodes[cluster.leader_of(cid)]
        batcher = leader.replicas[cid].batcher
        assert batcher.batches_sent < len(keys), \
            "burst did not engage batching; test premise broken"

        views = collect_traces(tracer, op="write")
        assert len(views) == len(keys)
        intervals = []
        for view in views:
            assert view.completed and not view.truncated
            forces = [s for s in view.spans if s.name == "log_force"]
            # exactly one force span per request: the shared force is
            # attributed to every member, never double-counted
            assert len(forces) == 1
            span = forces[0]
            intervals.append((span.start, span.end))
            # per-trace phase sums see the full force duration
            assert phase_durations(view)["log_force"] == pytest.approx(
                span.end - span.start)
        # members of a shared batched force report identical intervals
        by_interval = {}
        for interval in intervals:
            by_interval[interval] = by_interval.get(interval, 0) + 1
        assert max(by_interval.values()) >= 2, \
            "no two traces shared a force interval"
        # and the span count matches requests, not requests x batchmates
        leader_forces = [s for s in tracer.spans()
                         if s.name == "log_force"]
        assert len(leader_forces) == len(keys)
