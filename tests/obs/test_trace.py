"""Unit tests for the request tracer primitives (repro.obs.trace)."""

from types import SimpleNamespace

import pytest

from repro.obs.trace import (NullRequestTracer, RequestTracer, Span,
                             SpanStore, TraceContext)
from repro.sim.rng import RngRegistry


def _bound_tracer(**kwargs):
    tracer = RequestTracer(**kwargs)
    tracer.bind(SimpleNamespace(now=0.0), RngRegistry(7))
    return tracer


class TestSpan:
    def test_open_then_finished(self):
        tracer = _bound_tracer()
        ctx = tracer.begin("write", "client")
        span = tracer.start(ctx, "log_force", "node0")
        assert span.end is None
        tracer.sim.now = 0.005
        tracer.finish(span)
        assert span.duration == pytest.approx(0.005)
        assert tracer.store("node0").spans() == [span]

    def test_finish_is_idempotent(self):
        tracer = _bound_tracer()
        ctx = tracer.begin("write", "client")
        span = tracer.start(ctx, "log_force", "node0")
        tracer.sim.now = 0.003
        tracer.finish(span)
        tracer.sim.now = 0.009
        tracer.finish(span)          # second close must not move the end
        tracer.truncate(span)        # nor may truncation reopen it
        assert span.end == pytest.approx(0.003)
        assert not span.truncated
        assert len(tracer.store("node0")) == 1

    def test_span_at_records_closed_interval(self):
        tracer = _bound_tracer()
        ctx = tracer.begin("write", "client")
        tracer.sim.now = 0.010
        span = tracer.span_at(ctx, "route", "node1", start=0.002)
        assert span.start == pytest.approx(0.002)
        assert span.end == pytest.approx(0.010)
        assert tracer.open_spans("node1") == []


class TestTruncation:
    def test_truncate_node_closes_open_spans(self):
        tracer = _bound_tracer()
        ctx = tracer.begin("write", "client")
        a = tracer.start(ctx, "propose", "node0")
        b = tracer.start(ctx, "log_force", "node0")
        other = tracer.start(ctx, "replicate_rtt", "node1")
        tracer.sim.now = 0.004
        closed = tracer.truncate_node("node0")
        assert closed == 2
        assert a.truncated and b.truncated
        assert a.end == pytest.approx(0.004)
        assert other.end is None          # other nodes untouched
        # the root span (on the client) is untouched too
        assert ctx.root.end is None

    def test_truncate_node_without_spans_is_noop(self):
        tracer = _bound_tracer()
        assert tracer.truncate_node("nodeX") == 0


class TestSampling:
    def test_sample_every_one_traces_everything(self):
        tracer = _bound_tracer()
        assert all(tracer.begin("write", "c") is not None
                   for _ in range(20))
        assert tracer.sampled == 20 and tracer.skipped == 0

    def test_sampling_is_deterministic_across_runs(self):
        def decisions():
            tracer = RequestTracer(sample_every=4)
            tracer.bind(SimpleNamespace(now=0.0), RngRegistry(5))
            return [tracer.begin("write", "c") is not None
                    for _ in range(200)]

        first, second = decisions(), decisions()
        assert first == second
        assert 20 < sum(first) < 80    # roughly 1-in-4

    def test_sampler_stream_is_isolated(self):
        # Drawing trace decisions must not perturb other named streams.
        reg = RngRegistry(5)
        baseline = [RngRegistry(5).stream("node:x").random()
                    for _ in range(1)]
        tracer = RequestTracer(sample_every=2)
        tracer.bind(SimpleNamespace(now=0.0), reg)
        for _ in range(50):
            tracer.begin("write", "c")
        assert reg.stream("node:x").random() == baseline[0]

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestTracer(sample_every=0)


class TestSpanStore:
    def test_bounded_with_drop_counter(self):
        store = SpanStore(max_spans=3)
        spans = [Span(0, i, None, "x", "n", float(i)) for i in range(5)]
        for span in spans:
            store.add(span)
        assert len(store) == 3
        assert store.dropped == 2
        assert store.spans() == spans[2:]

    def test_filter_by_trace_id(self):
        store = SpanStore()
        a = Span(1, 0, None, "x", "n", 0.0)
        b = Span(2, 1, None, "x", "n", 0.0)
        store.add(a)
        store.add(b)
        assert store.spans(trace_id=2) == [b]


class TestNullTracer:
    def test_begin_returns_none(self):
        tracer = NullRequestTracer()
        assert not tracer.enabled
        assert tracer.begin("write", "c") is None
        assert tracer.truncate_node("n") == 0
        assert tracer.spans() == []
        assert tracer.stores() == {}

    def test_context_rendezvous_fields(self):
        tracer = _bound_tracer()
        ctx = tracer.begin("write", "client")
        assert isinstance(ctx, TraceContext)
        assert ctx.last_sent_at is None and ctx.server_done_at is None
        ctx.last_sent_at = 1.5
        ctx.server_done_at = 2.5
        assert (ctx.last_sent_at, ctx.server_done_at) == (1.5, 2.5)
