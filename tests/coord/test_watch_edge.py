"""Edge cases of watch and session semantics over the network."""

from repro.coord.client import CoordClient
from repro.coord.service import CoordinationService
from repro.coord.znode import NoNodeError
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import spawn
from repro.sim.rng import RngRegistry


def setup_world(n_clients=2):
    sim = Simulator()
    net = Network(sim, RngRegistry(31))
    service = CoordinationService(sim, net)
    clients = [CoordClient(sim, net.endpoint(f"node{i}"))
               for i in range(n_clients)]
    return sim, net, service, clients


def run(sim, gen, limit=30.0):
    proc = spawn(sim, gen)
    sim.run(until=sim.now + limit)
    assert proc.triggered
    return proc.result()


def test_watches_are_one_shot():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher():
        yield from c0.start()
        yield from c0.create("/a", b"0")
        yield from c0.get("/a", watcher=lambda ev: fired.append(ev.kind))

    def mutate_twice():
        yield from c1.start()
        yield from c1.set_data("/a", b"1")
        yield from c1.set_data("/a", b"2")

    run(sim, watcher())
    run(sim, mutate_twice())
    sim.run(until=sim.now + 5.0)
    assert fired == ["changed"]  # second change: no registered watch


def test_failed_get_leaves_no_watch():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher():
        yield from c0.start()
        try:
            yield from c0.get("/ghost", watcher=lambda ev: fired.append(1))
        except NoNodeError:
            pass

    def creator():
        yield from c1.start()
        yield from c1.create("/ghost", b"x")

    run(sim, watcher())
    run(sim, creator())
    sim.run(until=sim.now + 5.0)
    assert fired == []  # ZooKeeper semantics: failed get sets no watch


def test_exists_watch_fires_on_creation():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher():
        yield from c0.start()
        present = yield from c0.exists(
            "/later", watcher=lambda ev: fired.append(ev.kind))
        return present

    def creator():
        yield from c1.start()
        yield from c1.create("/later", b"x")

    assert run(sim, watcher()) is False
    run(sim, creator())
    sim.run(until=sim.now + 5.0)
    assert fired == ["created"]


def test_child_watch_not_fired_by_data_change():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher():
        yield from c0.start()
        yield from c0.create("/dir")
        yield from c0.create("/dir/kid", b"0")
        yield from c0.get_children("/dir",
                                   watcher=lambda ev: fired.append(ev))

    def mutate():
        yield from c1.start()
        yield from c1.set_data("/dir/kid", b"1")   # data only

    run(sim, watcher())
    run(sim, mutate())
    sim.run(until=sim.now + 5.0)
    assert fired == []

    def delete_kid():
        yield from c1.delete("/dir/kid")

    run(sim, delete_kid())
    sim.run(until=sim.now + 5.0)
    assert [ev.kind for ev in fired] == ["children"]


def test_watch_events_not_delivered_to_crashed_client():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher():
        yield from c0.start()
        yield from c0.create("/w", b"0")
        yield from c0.get("/w", watcher=lambda ev: fired.append(ev))

    run(sim, watcher())
    net.get("node0").crash()
    c0.stop()

    def mutate():
        yield from c1.start()
        yield from c1.set_data("/w", b"1")

    run(sim, mutate())
    sim.run(until=sim.now + 5.0)
    assert fired == []  # the notification message was dropped


def test_two_sessions_from_same_restarted_node():
    """A node that restarts gets a fresh session; the old session's
    ephemerals vanish even though the node name is reused."""
    sim, net, service, (c0, c1) = setup_world()

    def first_life():
        yield from c0.start()
        yield from c0.create("/grp")
        yield from c0.create("/grp/me", ephemeral=True)
        return c0.session

    old_session = run(sim, first_life())
    net.get("node0").crash()
    c0.stop()
    net.get("node0").restart()
    c0b = CoordClient(sim, net.get("node0"))

    def second_life():
        yield from c0b.start()
        yield from c0b.create("/grp/me2", ephemeral=True)
        return c0b.session

    new_session = run(sim, second_life())
    assert new_session != old_session
    sim.run(until=sim.now + 10.0)  # old session expires
    assert not service.tree.exists("/grp/me")
    assert service.tree.exists("/grp/me2")
