"""Tests for coordination recipes (membership, locks, barriers)."""

from repro.coord.client import CoordClient
from repro.coord.recipes import Barrier, DistributedLock, GroupMembership
from repro.coord.service import CoordinationService
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import spawn, timeout
from repro.sim.rng import RngRegistry


def setup_world(n_clients=3):
    sim = Simulator()
    net = Network(sim, RngRegistry(23))
    service = CoordinationService(sim, net)
    clients = [CoordClient(sim, net.endpoint(f"node{i}"))
               for i in range(n_clients)]
    return sim, net, service, clients


def test_group_membership_join_list_leave():
    sim, net, service, (c0, c1, c2) = setup_world()
    result = {}

    def member(client, name):
        yield from client.start()
        grp = GroupMembership(client, "/nodes", name)
        yield from grp.join(data=name.encode())
        return grp

    g0 = spawn(sim, member(c0, "a"))
    g1 = spawn(sim, member(c1, "b"))
    sim.run(until=sim.now + 30.0)

    def lister():
        yield from c2.start()
        grp = GroupMembership(c2, "/nodes", "c")
        result["before"] = yield from grp.members()
        yield from g1.result().leave()
        result["after"] = yield from grp.members()

    spawn(sim, lister())
    sim.run(until=sim.now + 30.0)
    assert result["before"] == ["a", "b"]
    assert result["after"] == ["a"]


def test_membership_notification_on_member_death():
    sim, net, service, (c0, c1, _) = setup_world()
    changes = []

    def member():
        yield from c0.start()
        grp = GroupMembership(c0, "/nodes", "victim")
        yield from grp.join()

    def observer():
        yield from c1.start()
        grp = GroupMembership(c1, "/nodes", "obs")
        members = yield from grp.members(
            watcher=lambda ev: changes.append(sim.now))
        return members

    spawn(sim, member())
    sim.run(until=sim.now + 30.0)
    spawn(sim, observer())
    sim.run(until=sim.now + 30.0)
    net.get("node0").crash()
    c0.stop()
    sim.run(until=sim.now + 10.0)
    assert changes, "observer was not notified of member death"


def test_lock_mutual_exclusion_and_fifo():
    sim, net, service, clients = setup_world(3)
    critical = []

    def contender(client, name, hold):
        yield from client.start()
        lock = DistributedLock(client, "/locks/L")
        yield from lock.acquire()
        critical.append(("enter", name, sim.now))
        yield timeout(sim, hold)
        critical.append(("exit", name, sim.now))
        yield from lock.release()

    for i, client in enumerate(clients):
        spawn(sim, contender(client, f"n{i}", hold=1.0))
    sim.run(until=sim.now + 30.0)
    # No overlapping critical sections.
    inside = 0
    for kind, _name, _t in sorted(critical, key=lambda x: x[2]):
        inside += 1 if kind == "enter" else -1
        assert inside <= 1
    assert len(critical) == 6


def test_lock_released_by_crash_of_holder():
    sim, net, service, (c0, c1, _) = setup_world()
    acquired = []

    def holder():
        yield from c0.start()
        lock = DistributedLock(c0, "/locks/L")
        yield from lock.acquire()
        acquired.append(("holder", sim.now))
        # never releases: crashes below

    def waiter():
        yield from c1.start()
        lock = DistributedLock(c1, "/locks/L")
        yield from lock.acquire()
        acquired.append(("waiter", sim.now))

    spawn(sim, holder())
    sim.run(until=sim.now + 30.0)
    spawn(sim, waiter())
    sim.run(until=sim.now + 1.0)
    assert [name for name, _ in acquired] == ["holder"]
    net.get("node0").crash()
    c0.stop()
    sim.run(until=sim.now + 20.0)
    assert [name for name, _ in acquired] == ["holder", "waiter"]


def test_barrier_waits_for_quorum():
    sim, net, service, clients = setup_world(3)
    passed = []

    def participant(client, name, delay):
        yield from client.start()
        yield timeout(sim, delay)
        barrier = Barrier(client, "/barrier", name, quorum=2)
        yield from barrier.enter()
        passed.append((name, sim.now))

    spawn(sim, participant(clients[0], "a", 0.0))
    spawn(sim, participant(clients[1], "b", 5.0))
    sim.run(until=4.0)
    assert passed == []  # first arrival blocks alone
    sim.run(until=30.0)
    assert {name for name, _ in passed} == {"a", "b"}
    assert all(t >= 5.0 for _, t in passed)
