"""Tests for the coordination service over the simulated network."""

import pytest

from repro.coord.client import CoordClient
from repro.coord.service import CoordinationService
from repro.coord.znode import NoNodeError, NodeExistsError
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import spawn
from repro.sim.rng import RngRegistry


def setup_world(n_clients=2, session_timeout=2.0):
    sim = Simulator()
    net = Network(sim, RngRegistry(11))
    service = CoordinationService(sim, net)
    clients = []
    for i in range(n_clients):
        ep = net.endpoint(f"node{i}")
        clients.append(CoordClient(sim, ep, session_timeout=session_timeout))
    return sim, net, service, clients


def run(sim, gen, limit=60.0):
    proc = spawn(sim, gen)
    sim.run(until=sim.now + limit)
    assert proc.triggered, "process did not finish"
    return proc.result()


def test_session_start_and_create_get():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.create("/a", b"hello")
        data, version = yield from c0.get("/a")
        return data, version

    assert run(sim, scenario()) == (b"hello", 0)


def test_errors_propagate_to_client():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.create("/a")
        try:
            yield from c0.create("/a")
        except NodeExistsError:
            pass
        else:
            raise AssertionError("expected NodeExistsError")
        try:
            yield from c0.get("/missing")
        except NoNodeError:
            return "ok"

    assert run(sim, scenario()) == "ok"


def test_watch_notification_crosses_the_network():
    sim, net, service, (c0, c1) = setup_world()
    fired = []

    def watcher_side():
        yield from c0.start()
        yield from c0.create("/a", b"x")
        yield from c0.get("/a", watcher=lambda ev: fired.append(
            (ev.kind, ev.path, sim.now)))

    def mutator_side():
        yield from c1.start()
        yield from c1.set_data("/a", b"y")

    p0 = spawn(sim, watcher_side())
    sim.run(until=sim.now + 30.0)
    assert p0.ok
    spawn(sim, mutator_side())
    sim.run(until=sim.now + 30.0)
    assert len(fired) == 1
    assert fired[0][0] == "changed" and fired[0][1] == "/a"


def test_session_expires_when_heartbeats_stop():
    sim, net, service, (c0, c1) = setup_world(session_timeout=2.0)
    deleted = []

    def ephemeral_owner():
        yield from c0.start()
        yield from c0.create("/grp")
        yield from c0.create("/grp/me", ephemeral=True)

    def observer():
        yield from c1.start()
        yield from c1.get(
            "/grp/me", watcher=lambda ev: deleted.append(sim.now))

    run(sim, ephemeral_owner())
    run(sim, observer())
    # Crash node0: endpoint dies, heartbeats stop.
    crash_time = sim.now
    net.get("node0").crash()
    c0.stop()
    sim.run(until=sim.now + 10.0)
    assert service.expired_sessions == 1
    assert len(deleted) == 1
    # Expiry lands within [timeout - heartbeat interval, timeout + sweep].
    assert 1.0 <= deleted[0] - crash_time <= 5.0


def test_ephemerals_survive_while_heartbeating():
    sim, net, service, (c0, _) = setup_world(session_timeout=2.0)

    def scenario():
        yield from c0.start()
        yield from c0.create("/grp")
        yield from c0.create("/grp/me", ephemeral=True)

    run(sim, scenario())
    sim.run(until=sim.now + 30.0)  # many timeouts worth of quiet time
    assert service.tree.exists("/grp/me")
    assert service.expired_sessions == 0


def test_explicit_close_expires_immediately():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.create("/grp")
        yield from c0.create("/grp/me", ephemeral=True)
        yield from c0.close()

    run(sim, scenario())
    assert not service.tree.exists("/grp/me")


def test_operations_after_expiry_fail():
    sim, net, service, (c0, _) = setup_world(session_timeout=1.0)
    outcome = []

    def scenario():
        yield from c0.start()
        session = c0.session
        service.expire_session_now(session)
        try:
            yield from c0.create("/x")
        except Exception as err:  # SessionExpired via generic CoordError
            outcome.append(type(err).__name__)

    run(sim, scenario())
    assert outcome and "Error" in outcome[0] or outcome == ["CoordError"]


def test_sequential_create_over_rpc():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.create("/q")
        p1 = yield from c0.create("/q/c-", sequential=True, ephemeral=True)
        p2 = yield from c0.create("/q/c-", sequential=True, ephemeral=True)
        return p1, p2

    p1, p2 = run(sim, scenario())
    assert p1 < p2


def test_ensure_path_creates_ancestors():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.ensure_path("/a/b/c")
        yield from c0.ensure_path("/a/b/c")  # idempotent
        return (yield from c0.get_children("/a/b"))

    assert run(sim, scenario()) == ["c"]


def test_delete_recursive():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.ensure_path("/a/b/c")
        yield from c0.ensure_path("/a/b2")
        yield from c0.delete_recursive("/a")
        return (yield from c0.exists("/a"))

    assert run(sim, scenario()) is False


def test_service_ops_take_time():
    sim, net, service, (c0, _) = setup_world()

    def scenario():
        yield from c0.start()
        yield from c0.create("/a")

    run(sim, scenario())
    assert sim.now > 1e-3  # at least the update latency + network
