"""Tests for the znode tree (data model semantics, §7.1)."""

import pytest

from repro.coord.znode import (BadVersionError, CoordError, EphemeralError,
                               NoNodeError, NodeExistsError, NotEmptyError,
                               ZNodeTree)


def test_create_get_round_trip():
    tree = ZNodeTree()
    actual, _ = tree.create("/a", b"data")
    assert actual == "/a"
    assert tree.get("/a") == (b"data", 0)


def test_create_nested_requires_parent():
    tree = ZNodeTree()
    with pytest.raises(NoNodeError):
        tree.create("/a/b")
    tree.create("/a")
    actual, _ = tree.create("/a/b", b"x")
    assert actual == "/a/b"
    assert tree.children("/a") == ["b"]


def test_create_duplicate_rejected():
    tree = ZNodeTree()
    tree.create("/a")
    with pytest.raises(NodeExistsError):
        tree.create("/a")


def test_sequential_names_are_monotonic_per_parent():
    tree = ZNodeTree()
    tree.create("/q")
    p1, _ = tree.create("/q/n-", sequential=True)
    p2, _ = tree.create("/q/n-", sequential=True)
    assert p1 == "/q/n-0000000000"
    assert p2 == "/q/n-0000000001"
    assert p1 < p2


def test_sequence_counter_survives_deletes():
    tree = ZNodeTree()
    tree.create("/q")
    p1, _ = tree.create("/q/n-", sequential=True)
    tree.delete(p1)
    p2, _ = tree.create("/q/n-", sequential=True)
    assert p2 > p1  # never reused — ties in leader election stay unique


def test_delete_nonempty_rejected():
    tree = ZNodeTree()
    tree.create("/a")
    tree.create("/a/b")
    with pytest.raises(NotEmptyError):
        tree.delete("/a")


def test_versioned_set_and_delete():
    tree = ZNodeTree()
    tree.create("/a", b"v0")
    version, _ = tree.set_data("/a", b"v1")
    assert version == 1
    with pytest.raises(BadVersionError):
        tree.set_data("/a", b"v2", version=0)
    with pytest.raises(BadVersionError):
        tree.delete("/a", version=0)
    tree.delete("/a", version=1)
    assert not tree.exists("/a")


def test_ephemeral_requires_session_and_cannot_have_children():
    tree = ZNodeTree()
    with pytest.raises(CoordError):
        tree.create("/e", ephemeral=True)
    tree.create("/e", ephemeral=True, session=7)
    with pytest.raises(EphemeralError):
        tree.create("/e/child")


def test_expire_session_deletes_only_that_sessions_ephemerals():
    tree = ZNodeTree()
    tree.create("/grp")
    tree.create("/grp/a", ephemeral=True, session=1)
    tree.create("/grp/b", ephemeral=True, session=2)
    tree.create("/grp/c")  # persistent
    tree.expire_session(1)
    assert tree.children("/grp") == ["b", "c"]


def test_data_watch_fires_once_on_change():
    tree = ZNodeTree()
    tree.create("/a", b"x")
    tree.add_data_watch("/a", ("client", 1))
    _, fired = tree.set_data("/a", b"y")
    assert [(o, e.kind) for o, e in fired] == [(("client", 1), "changed")]
    _, fired_again = tree.set_data("/a", b"z")
    assert fired_again == []  # one-shot


def test_data_watch_fires_on_delete():
    tree = ZNodeTree()
    tree.create("/a")
    tree.add_data_watch("/a", ("c", 1))
    fired = tree.delete("/a")
    assert fired[0][1].kind == "deleted"


def test_exists_watch_fires_on_create():
    tree = ZNodeTree()
    tree.add_data_watch("/a", ("c", 1))
    _, fired = tree.create("/a")
    assert fired[0][1].kind == "created"


def test_child_watch_fires_on_child_create_and_delete():
    tree = ZNodeTree()
    tree.create("/grp")
    tree.add_child_watch("/grp", ("c", 1))
    _, fired = tree.create("/grp/x")
    assert fired[0][1] .kind == "children"
    tree.add_child_watch("/grp", ("c", 2))
    fired = tree.delete("/grp/x")
    assert any(e.kind == "children" for _, e in fired)


def test_expire_session_fires_watches():
    tree = ZNodeTree()
    tree.create("/r")
    tree.create("/r/leader", ephemeral=True, session=9)
    tree.add_data_watch("/r/leader", ("follower", 4))
    fired = tree.expire_session(9)
    assert (("follower", 4), ) and fired[0][1].kind == "deleted"


def test_relative_path_rejected():
    tree = ZNodeTree()
    with pytest.raises(CoordError):
        tree.create("a")
    with pytest.raises(CoordError):
        tree.create("//a")
