"""Model-based property test: the znode tree vs a reference dict model."""

from hypothesis import given, settings, strategies as st

from repro.coord.znode import CoordError, ZNodeTree

# Operations over a tiny path universe so collisions actually happen.
PATHS = ["/a", "/b", "/a/x", "/a/y", "/b/z"]

ops = st.lists(st.tuples(
    st.sampled_from(["create", "delete", "set", "create-eph"]),
    st.sampled_from(PATHS),
    st.binary(max_size=4),
    st.integers(min_value=1, max_value=3),   # session id for ephemerals
), max_size=60)


def parent(path):
    head = path.rsplit("/", 1)[0]
    return head if head else "/"


@given(ops)
@settings(max_examples=200)
def test_tree_matches_reference_model(operations):
    tree = ZNodeTree()
    model = {}          # path -> (data, ephemeral_session)

    for op, path, data, session in operations:
        # Compute what the model says should happen.
        parent_ok = parent(path) == "/" or parent(path) in model
        parent_eph = (parent(path) in model
                      and model.get(parent(path), (b"", None))[1]
                      is not None)
        if op in ("create", "create-eph"):
            should_fail = (path in model or not parent_ok or parent_eph)
            try:
                tree.create(path, data,
                            ephemeral=(op == "create-eph"),
                            session=session if op == "create-eph"
                            else None)
                assert not should_fail, f"create {path} should have failed"
                model[path] = (data, session if op == "create-eph"
                               else None)
            except CoordError:
                assert should_fail, f"create {path} should have succeeded"
        elif op == "delete":
            has_children = any(parent(other) == path for other in model
                               if other != path)
            should_fail = path not in model or has_children
            try:
                tree.delete(path)
                assert not should_fail
                del model[path]
            except CoordError:
                assert should_fail
        elif op == "set":
            should_fail = path not in model
            try:
                tree.set_data(path, data)
                assert not should_fail
                model[path] = (data, model[path][1])
            except CoordError:
                assert should_fail

    # Final states agree.
    for path, (data, _session) in model.items():
        assert tree.exists(path)
        assert tree.get(path)[0] == data
    for path in PATHS:
        if path not in model:
            assert not tree.exists(path)


@given(ops, st.integers(min_value=1, max_value=3))
@settings(max_examples=100)
def test_session_expiry_removes_exactly_that_sessions_ephemerals(
        operations, victim):
    tree = ZNodeTree()
    model = {}

    for op, path, data, session in operations:
        try:
            if op in ("create", "create-eph"):
                tree.create(path, data, ephemeral=(op == "create-eph"),
                            session=session if op == "create-eph"
                            else None)
                model[path] = session if op == "create-eph" else None
            elif op == "delete":
                tree.delete(path)
                model.pop(path, None)
            elif op == "set":
                tree.set_data(path, data)
        except CoordError:
            pass

    tree.expire_session(victim)
    for path, owner in model.items():
        if owner == victim:
            # Deleted unless it had children (then deletion is skipped —
            # but ephemerals cannot have children, so any children were
            # persistent... which create() forbids; so always gone).
            assert not tree.exists(path)
        else:
            assert tree.exists(path)
