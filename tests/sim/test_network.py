"""Tests for the simulated network: ordering, RPC, crashes, partitions."""

import pytest

from repro.sim.events import Simulator
from repro.sim.network import LatencyModel, Network, RpcTimeout
from repro.sim.process import spawn, timeout
from repro.sim.rng import RngRegistry


def make_net(jitter=30e-6):
    sim = Simulator()
    net = Network(sim, RngRegistry(7), LatencyModel(jitter=jitter))
    return sim, net


def test_one_way_message_is_delivered_with_latency():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append((req.src, req.payload, sim.now)))
    a.send("b", "hello", size=4096)
    sim.run()
    assert len(got) == 1
    src, payload, when = got[0]
    assert (src, payload) == ("a", "hello")
    assert when > 0.0


def test_fifo_per_pair_even_with_jitter():
    sim, net = make_net(jitter=5e-3)  # huge jitter to tempt reordering
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    for i in range(50):
        a.send("b", i)
    sim.run()
    assert got == list(range(50))


def test_request_reply_round_trip():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on_request(lambda req: req.respond(req.payload * 2))
    results = []

    def client():
        value = yield a.request("b", 21)
        results.append((value, sim.now))

    spawn(sim, client())
    sim.run()
    assert results[0][0] == 42
    assert results[0][1] > 0.0


def test_request_timeout_fires_when_dest_dead():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on_request(lambda req: None)  # never responds
    outcomes = []

    def client():
        try:
            yield a.request("b", "ping", timeout=0.5)
            outcomes.append("replied")
        except RpcTimeout:
            outcomes.append("timeout")

    spawn(sim, client())
    sim.run()
    assert outcomes == ["timeout"]
    assert sim.now == pytest.approx(0.5)


def test_message_to_crashed_endpoint_is_dropped():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    b.crash()
    a.send("b", "lost")
    sim.run()
    assert got == []
    assert net.messages_dropped == 1


def test_crashed_endpoint_cannot_send():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    a.crash()
    a.send("b", "ghost")
    sim.run()
    assert got == []


def test_restart_resumes_delivery():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    b.crash()
    a.send("b", "lost")
    sim.run()
    b.restart()
    a.send("b", "found")
    sim.run()
    assert got == ["found"]


def test_partition_blocks_both_directions_until_heal():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got_a, got_b = [], []
    a.on_request(lambda req: got_a.append(req.payload))
    b.on_request(lambda req: got_b.append(req.payload))
    net.block("a", "b")
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert got_a == [] and got_b == []
    net.heal()
    a.send("b", 3)
    sim.run()
    assert got_b == [3]


def test_reply_lost_if_requester_crashes_before_delivery():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on_request(lambda req: req.respond("pong"))
    ev = a.request("b", "ping")
    # Crash the requester while the request is in flight.
    sim.schedule(1e-5, a.crash)
    sim.run()
    assert not ev.triggered


def test_larger_messages_take_longer():
    sim, net = make_net(jitter=0.0)
    a, b = net.endpoint("a"), net.endpoint("b")
    arrivals = {}
    b.on_request(lambda req: arrivals.setdefault(req.payload, sim.now))
    c = net.endpoint("c")
    c.on_request(lambda req: arrivals.setdefault(req.payload, sim.now))
    a.send("b", "small", size=64)
    a.send("c", "big", size=4 * 1024 * 1024)
    sim.run()
    assert arrivals["big"] > arrivals["small"]


def test_unknown_endpoint_lookup_raises():
    sim, net = make_net()
    with pytest.raises(Exception):
        net.get("nope")


# -- link faults: one-way blocks, lossy links, per-pair delays ----------------

def test_one_way_block_only_stops_one_direction():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got_a, got_b = [], []
    a.on_request(lambda req: got_a.append(req.payload))
    b.on_request(lambda req: got_b.append(req.payload))
    net.block("a", "b", symmetric=False)
    a.send("b", "a->b")      # blocked
    b.send("a", "b->a")      # still flows
    sim.run()
    assert got_b == [] and got_a == ["b->a"]
    assert net.is_blocked("a", "b") and not net.is_blocked("b", "a")
    net.heal("a", "b")
    a.send("b", "after")
    sim.run()
    assert got_b == ["after"]


def test_directional_heal_leaves_the_reverse_block_in_place():
    # Two independent one-way blocks; a directional heal of (a, b) must
    # not discard the (b, a) block the way a symmetric heal would.
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got_a, got_b = [], []
    a.on_request(lambda req: got_a.append(req.payload))
    b.on_request(lambda req: got_b.append(req.payload))
    net.block("a", "b", symmetric=False)
    net.block("b", "a", symmetric=False)
    net.heal("a", "b", symmetric=False)
    assert not net.is_blocked("a", "b")
    assert net.is_blocked("b", "a")
    a.send("b", "a->b")      # healed direction flows
    b.send("a", "b->a")      # reverse stays blocked
    sim.run()
    assert got_b == ["a->b"] and got_a == []


def test_symmetric_heal_still_clears_both_one_way_directions():
    sim, net = make_net()
    net.endpoint("a")
    net.endpoint("b")
    net.block("a", "b", symmetric=False)
    net.block("b", "a", symmetric=False)
    net.heal("a", "b")
    assert not net.is_blocked("a", "b")
    assert not net.is_blocked("b", "a")


def test_heal_all_clears_one_way_blocks():
    sim, net = make_net()
    net.endpoint("a")
    net.endpoint("b")
    net.block("a", "b", symmetric=False)
    net.heal()
    assert not net.is_blocked("a", "b")


def test_drop_rate_one_loses_everything_and_zero_restores():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    net.set_drop_rate("a", "b", 1.0, symmetric=False)
    for i in range(10):
        a.send("b", i)
    sim.run()
    assert got == []
    assert net.messages_dropped == 10
    net.set_drop_rate("a", "b", 0.0)
    a.send("b", "through")
    sim.run()
    assert got == ["through"]


def test_symmetric_drop_rate_applies_both_ways():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got_a, got_b = [], []
    a.on_request(lambda req: got_a.append(req.payload))
    b.on_request(lambda req: got_b.append(req.payload))
    net.set_drop_rate("a", "b", 1.0)
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert got_a == [] and got_b == []


def test_per_pair_extra_delay_slows_only_that_link():
    sim, net = make_net(jitter=0.0)
    a, b, c = net.endpoint("a"), net.endpoint("b"), net.endpoint("c")
    arrivals = {}
    b.on_request(lambda req: arrivals.setdefault("b", sim.now))
    c.on_request(lambda req: arrivals.setdefault("c", sim.now))
    net.set_extra_delay("a", "b", 0.05)
    a.send("b", "slow", size=64)
    a.send("c", "fast", size=64)
    sim.run()
    assert arrivals["b"] >= arrivals["c"] + 0.05


def test_clear_link_faults_resets_drops_and_delays():
    """clear_link_faults removes lossy/slow links; blocks are heal()'s
    job, so the two compose without stepping on each other."""
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    got = []
    b.on_request(lambda req: got.append(req.payload))
    net.set_drop_rate("a", "b", 1.0)
    net.set_extra_delay("a", "b", 1.0)
    net.extra_delay = 0.5
    net.clear_link_faults()
    a.send("b", "ok")
    sim.run(until=0.5)
    assert got == ["ok"]
    assert net.extra_delay == 0.0


# -- late replies after an RPC timeout ---------------------------------------

def test_late_reply_after_timeout_is_discarded():
    """A reply landing after RpcTimeout must not resume the requester
    twice (or at all) — it is counted and dropped."""
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")

    def slow_handler(req):
        def _later():
            yield timeout(sim, 0.2)     # reply well past the timeout
            req.respond("too-late")
        spawn(sim, _later())

    b.on_request(slow_handler)
    outcomes = []

    def client():
        try:
            value = yield a.request("b", "ping", timeout=0.05)
            outcomes.append(value)
        except RpcTimeout:
            outcomes.append("timeout")

    spawn(sim, client())
    sim.run()
    assert outcomes == ["timeout"]      # resumed exactly once
    assert a.stale_replies == 1


def test_reply_before_timeout_cancels_it():
    sim, net = make_net()
    a, b = net.endpoint("a"), net.endpoint("b")
    b.on_request(lambda req: req.respond("pong"))
    outcomes = []

    def client():
        value = yield a.request("b", "ping", timeout=5.0)
        outcomes.append(value)

    spawn(sim, client())
    sim.run()
    assert outcomes == ["pong"]
    assert a.stale_replies == 0
    assert sim.now < 1.0                # did not sit out the timeout
