"""Tests for metrics collection and deterministic RNG streams."""

import math

from repro.sim.metrics import Histogram, LatencyRecorder, summarize
from repro.sim.rng import RngRegistry


def test_histogram_basic_stats():
    hist = Histogram()
    for x in [1.0, 2.0, 3.0, 4.0]:
        hist.add(x)
    assert hist.mean() == 2.5
    assert hist.min() == 1.0
    assert hist.max() == 4.0
    assert hist.percentile(50) == 2.5
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 4.0


def test_histogram_empty_is_nan():
    hist = Histogram()
    assert math.isnan(hist.mean())
    assert math.isnan(hist.percentile(50))


def test_recorder_warmup_exclusion():
    rec = LatencyRecorder(warmup=10.0)
    rec.record("read", 0.001, completed_at=5.0)   # dropped
    rec.record("read", 0.002, completed_at=15.0)  # kept
    assert rec.count("read") == 1
    assert rec.dropped_warmup == 1
    assert rec.mean_latency("read") == 0.002


def test_recorder_throughput_over_window():
    rec = LatencyRecorder()
    for i in range(11):
        rec.record("op", 0.001, completed_at=float(i))
    assert rec.throughput() == 11 / 10.0


def test_recorder_mean_across_ops_weighted():
    rec = LatencyRecorder()
    rec.record("read", 0.001, completed_at=1.0)
    rec.record("read", 0.001, completed_at=2.0)
    rec.record("write", 0.004, completed_at=3.0)
    assert rec.mean_latency() == (0.001 * 2 + 0.004) / 3


def test_summarize_shapes():
    rec = LatencyRecorder()
    rec.record("read", 0.002, completed_at=1.0)
    out = summarize(rec)
    assert out["read"]["count"] == 1
    assert out["read"]["mean_ms"] == 2.0


def test_rng_streams_are_deterministic():
    a = RngRegistry(42).stream("network")
    b = RngRegistry(42).stream("network")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_are_independent_by_name():
    reg = RngRegistry(42)
    net = reg.stream("network")
    first_disk_draw = reg.stream("disk").random()
    # Drawing from "network" must not change "disk"'s sequence.
    reg2 = RngRegistry(42)
    reg2.stream("network").random()
    assert reg2.stream("disk").random() == first_disk_draw


def test_rng_same_stream_object_returned():
    reg = RngRegistry(1)
    assert reg.stream("x") is reg.stream("x")


def test_rng_fork_changes_streams():
    reg = RngRegistry(1)
    forked = reg.fork("replica")
    assert reg.stream("x").random() != forked.stream("x").random()


def test_rng_fork_salt_does_not_collide_with_stream_names():
    # fork("x") must not derive the same seed as a stream literally
    # named "fork:x" — the digest inputs are namespaced differently.
    reg = RngRegistry(7)
    forked_seed = reg.fork("x").seed
    stream_draw = RngRegistry(7).stream("fork:x").random()
    import random as _random  # lint: allow(nondet-import) — seeded below
    assert _random.Random(forked_seed).random() != stream_draw


def test_rng_fork_is_deterministic():
    assert RngRegistry(3).fork("a").seed == RngRegistry(3).fork("a").seed
    assert RngRegistry(3).fork("a").seed != RngRegistry(3).fork("b").seed
