"""Tests for the logging-device model (group commit, profiles, crashes)."""

import pytest

from repro.sim.disk import DataDisk, DiskProfile, LogDevice
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry


def make_disk(profile=None, group_commit=True):
    sim = Simulator()
    disk = LogDevice(sim, RngRegistry(3), "log0", profile=profile,
                     group_commit=group_commit)
    return sim, disk


def test_force_completes_within_profile_bounds():
    profile = DiskProfile("flat", 1e-3, 1e-3, transfer_rate=0)
    sim, disk = make_disk(profile)
    ev = disk.force(512)
    sim.run()
    assert ev.ok
    assert sim.now == pytest.approx(1e-3)


def test_group_commit_batches_concurrent_forces():
    profile = DiskProfile("flat", 1e-3, 1e-3, transfer_rate=0)
    sim, disk = make_disk(profile)
    first = disk.force(512)
    # These arrive while op 1 is in flight and must share op 2.
    rest = [disk.force(512) for _ in range(9)]
    sim.run()
    assert first.ok and all(ev.ok for ev in rest)
    assert disk.ops_performed == 2
    assert disk.forces_completed == 10
    assert sim.now == pytest.approx(2e-3)


def test_without_group_commit_forces_serialize():
    profile = DiskProfile("flat", 1e-3, 1e-3, transfer_rate=0)
    sim, disk = make_disk(profile, group_commit=False)
    for _ in range(5):
        disk.force(512)
    sim.run()
    assert disk.ops_performed == 5
    assert sim.now == pytest.approx(5e-3)


def test_transfer_time_scales_with_batch_bytes():
    profile = DiskProfile("flat", 0.0, 0.0, transfer_rate=1e6)
    sim, disk = make_disk(profile)
    disk.force(1_000_000)  # 1 second of transfer
    sim.run()
    assert sim.now == pytest.approx(1.0)


def test_seek_penalty_applies_on_file_growth_boundary():
    profile = DiskProfile("seeky", 0.0, 0.0, transfer_rate=0,
                          seek_penalty=10e-3, seek_interval=1024)
    sim, disk = make_disk(profile)
    disk.force(512)   # below the boundary: no seek
    sim.run()
    t1 = sim.now
    disk.force(600)   # crosses 1024: seek penalty
    sim.run()
    assert t1 == pytest.approx(0.0)
    assert sim.now == pytest.approx(10e-3)


def test_crash_drops_inflight_forces():
    profile = DiskProfile("flat", 1e-3, 1e-3, transfer_rate=0)
    sim, disk = make_disk(profile)
    ev = disk.force(512)
    sim.schedule(0.5e-3, disk.crash)
    sim.run()
    assert not ev.triggered


def test_force_after_crash_never_fires_until_restart():
    profile = DiskProfile("flat", 1e-3, 1e-3, transfer_rate=0)
    sim, disk = make_disk(profile)
    disk.crash()
    dead = disk.force(512)
    sim.run()
    assert not dead.triggered
    disk.restart()
    alive = disk.force(512)
    sim.run()
    assert alive.ok


def test_ssd_profile_is_much_faster_than_sata():
    sim1, sata = make_disk(DiskProfile.sata_log())
    sata.force(4096)
    sim1.run()
    sim2, ssd = make_disk(DiskProfile.ssd_log())
    ssd.force(4096)
    sim2.run()
    assert sim2.now < sim1.now / 4


def test_memory_profile_is_microseconds():
    sim, mem = make_disk(DiskProfile.memory_log())
    mem.force(4096)
    sim.run()
    assert sim.now < 1e-4


def test_append_noforce_tracks_growth_without_latency():
    profile = DiskProfile("seeky", 0.0, 0.0, transfer_rate=0,
                          seek_penalty=5e-3, seek_interval=1024)
    sim, disk = make_disk(profile)
    disk.append_noforce(2000)  # grows the file past a boundary, free now
    assert sim.now == 0.0
    disk.force(10)  # next force pays the boundary seek
    sim.run()
    assert sim.now == pytest.approx(5e-3)


def test_data_disk_read_charges_latency():
    sim = Simulator()
    disk = DataDisk(sim, RngRegistry(1), "data0")
    ev = disk.read(64 * 1024)
    sim.run()
    assert ev.ok
    assert sim.now > 1e-3
    assert disk.reads == 1
