"""Tests for generator-based processes and composite events."""

import pytest

from repro.sim.events import Event, SimulationError, Simulator
from repro.sim.process import (Interrupt, all_of, any_of, quorum, spawn,
                               timeout)


def test_process_sleeps_and_returns_value():
    sim = Simulator()

    def worker():
        yield timeout(sim, 1.5)
        return "done"

    proc = spawn(sim, worker())
    sim.run()
    assert proc.ok
    assert proc.result() == "done"
    assert sim.now == 1.5


def test_yield_delivers_event_value():
    sim = Simulator()
    ev = Event(sim)
    got = []

    def worker():
        value = yield ev
        got.append(value)

    spawn(sim, worker())
    sim.schedule(1.0, lambda: ev.succeed(99))
    sim.run()
    assert got == [99]


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = Event(sim)
    caught = []

    def worker():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    spawn(sim, worker())
    sim.schedule(1.0, lambda: ev.fail(ValueError("bad")))
    sim.run()
    assert caught == ["bad"]


def test_process_exception_fails_the_process_event():
    sim = Simulator()

    def worker():
        yield timeout(sim, 1.0)
        raise RuntimeError("exploded")

    proc = spawn(sim, worker())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, RuntimeError)


def test_processes_compose():
    sim = Simulator()

    def inner():
        yield timeout(sim, 2.0)
        return 7

    def outer():
        value = yield spawn(sim, inner())
        return value * 2

    proc = spawn(sim, outer())
    sim.run()
    assert proc.result() == 14


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield timeout(sim, 100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    proc = spawn(sim, sleeper())
    sim.schedule(1.0, lambda: proc.interrupt("wake"))
    sim.run()
    assert log == [("interrupted", "wake", 1.0)]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def fast():
        yield timeout(sim, 0.1)

    proc = spawn(sim, fast())
    sim.run()
    proc.interrupt("late")  # must not raise
    sim.run()
    assert proc.ok


def test_unhandled_interrupt_fails_process():
    sim = Simulator()

    def sleeper():
        yield timeout(sim, 100.0)

    proc = spawn(sim, sleeper())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run()
    assert proc.triggered and not proc.ok


def test_stale_event_after_interrupt_is_ignored():
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield timeout(sim, 5.0)
            resumed.append("timer")
        except Interrupt:
            yield timeout(sim, 10.0)
            resumed.append("post-interrupt")

    spawn(sim, sleeper())
    sim.schedule(1.0, lambda: None)  # noop marker

    def interrupter():
        yield timeout(sim, 1.0)
        # interrupt while the 5s timeout is pending; the timeout still
        # fires at t=5 but must not resume the process a second time.
        proc.interrupt()

    proc = None
    proc = spawn(sim, sleeper())
    spawn(sim, interrupter())
    sim.run()
    assert resumed.count("post-interrupt") == 1


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = spawn(sim, bad())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, SimulationError)


def test_all_of_collects_every_value():
    sim = Simulator()
    cond = all_of(sim, [timeout(sim, 1.0, "a"), timeout(sim, 3.0, "b"),
                        timeout(sim, 2.0, "c")])
    sim.run()
    assert cond.result() == ["a", "b", "c"]
    assert sim.now == 3.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    cond = all_of(sim, [])
    assert cond.ok


def test_any_of_returns_first():
    sim = Simulator()
    cond = any_of(sim, [timeout(sim, 5.0, "slow"), timeout(sim, 1.0, "fast")])
    sim.run_until_complete(cond)
    assert cond.result() == (1, "fast")


def test_quorum_waits_for_k_of_n():
    sim = Simulator()
    q = quorum(sim, [timeout(sim, 1.0, "a"), timeout(sim, 2.0, "b"),
                     timeout(sim, 9.0, "c")], need=2)
    sim.run_until_complete(q)
    assert sim.now == 2.0
    assert sorted(q.result()) == ["a", "b"]


def test_quorum_fails_when_unreachable():
    sim = Simulator()
    evs = [Event(sim), Event(sim), Event(sim)]
    q = quorum(sim, evs, need=2)
    evs[0].fail(RuntimeError("x"))
    evs[1].fail(RuntimeError("y"))
    assert q.triggered and not q.ok


def test_quorum_more_than_population_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        quorum(sim, [Event(sim)], need=2)
