"""Tests for Resource (CPU model) and Store (queues)."""

import pytest

from repro.sim.events import SimulationError, Simulator
from repro.sim.resources import Resource, Store, serve
from repro.sim.process import spawn, timeout


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    res.release()
    assert r3.triggered


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    waiters = [res.request() for _ in range(3)]
    res.release()
    assert waiters[0].triggered and not waiters[1].triggered
    res.release()
    assert waiters[1].triggered and not waiters[2].triggered


def test_release_without_request_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_serve_charges_service_time_and_queues():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    done = []

    def job(name):
        yield from serve(cpu, 1.0)
        done.append((name, sim.now))

    spawn(sim, job("a"))
    spawn(sim, job("b"))
    sim.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_serve_parallel_with_multiple_cores():
    sim = Simulator()
    cpu = Resource(sim, capacity=4)
    done = []

    def job(name):
        yield from serve(cpu, 1.0)
        done.append((name, sim.now))

    for i in range(4):
        spawn(sim, job(i))
    sim.run()
    assert [t for _, t in done] == [1.0] * 4


def test_serve_releases_even_if_interrupted():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)

    def job():
        yield from serve(cpu, 10.0)

    proc = spawn(sim, job())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run()
    assert not proc.ok  # unhandled interrupt
    assert cpu.in_use == 0  # but the core was released


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    ev = store.get()
    assert ev.triggered and ev.result() == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    spawn(sim, consumer())

    def producer():
        yield timeout(sim, 2.0)
        store.put("y")

    spawn(sim, producer())
    sim.run()
    assert got == [("y", 2.0)]


def test_store_fifo_and_drain():
    sim = Simulator()
    store = Store(sim)
    for i in range(3):
        store.put(i)
    assert len(store) == 3
    assert store.drain() == [0, 1, 2]
    assert len(store) == 0
