"""Edge cases of the simulation kernel: priorities, deep chains,
process interplay with resources and the network."""

import pytest

from repro.sim.events import Event, Simulator, NORMAL, URGENT
from repro.sim.process import (ProcessKilled, all_of, any_of, spawn,
                               timeout)
from repro.sim.resources import Resource, serve


def test_urgent_runs_before_normal_at_same_time():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("normal"), priority=NORMAL)
    sim.schedule(1.0, lambda: order.append("urgent"), priority=URGENT)
    sim.run()
    assert order == ["urgent", "normal"]


def test_event_triggered_during_callback_cascade():
    sim = Simulator()
    chain = []
    events = [Event(sim) for _ in range(5)]
    for i, ev in enumerate(events[:-1]):
        nxt = events[i + 1]
        ev.add_callback(lambda _e, n=nxt, i=i: (chain.append(i),
                                                n.succeed()))
    events[0].succeed()
    assert chain == [0, 1, 2, 3]


def test_process_chain_of_immediate_events():
    """Yielding many already-triggered events must not blow the stack."""
    sim = Simulator()

    def worker():
        total = 0
        for _ in range(150):
            ev = Event(sim)
            ev.succeed(1)
            total += yield ev
        return total

    proc = spawn(sim, worker())
    sim.run()
    assert proc.result() == 150


def test_process_returning_immediately():
    sim = Simulator()

    def instant():
        return 42
        yield  # pragma: no cover - makes it a generator

    proc = spawn(sim, instant())
    sim.run()
    assert proc.result() == 42


def test_all_of_with_one_failure_fails():
    sim = Simulator()
    good = timeout(sim, 1.0, "ok")
    bad = Event(sim)
    cond = all_of(sim, [good, bad])
    sim.schedule(0.5, lambda: bad.fail(RuntimeError("boom")))
    sim.run()
    assert cond.triggered and not cond.ok


def test_any_of_ignores_late_failures():
    sim = Simulator()
    fast = timeout(sim, 0.5, "fast")
    slow = Event(sim)
    cond = any_of(sim, [fast, slow])
    sim.schedule(1.0, lambda: slow.fail(RuntimeError("late")))
    sim.run()
    assert cond.ok
    assert cond.result() == (0, "fast")


def test_killed_process_releases_resource_exactly_once():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    finished = []

    def holder():
        yield from serve(cpu, 10.0)

    def waiter():
        yield from serve(cpu, 0.5)
        finished.append(sim.now)

    proc = spawn(sim, holder())
    spawn(sim, waiter())
    sim.schedule(1.0, lambda: proc.interrupt("kill"))
    sim.run()
    assert isinstance(proc.exception, ProcessKilled)
    assert finished == [1.5]
    assert cpu.in_use == 0


def test_interrupt_race_with_completion_same_instant():
    sim = Simulator()

    def quick():
        yield timeout(sim, 1.0)
        return "done"

    proc = spawn(sim, quick())
    # Schedule the interrupt at exactly the completion time; either the
    # process finished first (ok) or it was killed — but never both, and
    # never a crash.
    sim.schedule(1.0, lambda: proc.interrupt("race"))
    sim.run()
    assert proc.triggered
    assert proc.ok or isinstance(proc.exception, ProcessKilled)


def test_timeout_value_passthrough():
    sim = Simulator()

    def worker():
        value = yield timeout(sim, 0.5, value={"payload": 1})
        return value

    proc = spawn(sim, worker())
    sim.run()
    assert proc.result() == {"payload": 1}


def test_run_until_does_not_overshoot_past_cancelled_head():
    """A cancelled entry at the top of the heap must not let run(until)
    execute an event scheduled *beyond* the bound (regression: the old
    loop peeked only the head's time, then popped past the cancelled
    entry and ran whatever came next, ending with now > until)."""
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.5, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.cancel(handle)
    sim.run(until=1.0)
    assert fired == []
    assert sim.now == 1.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 2.0


def test_cancelled_entries_are_skipped_lazily():
    """Cancellation nulls the callback in place; a later run() skips the
    dead entries without disturbing the order of live ones."""
    sim = Simulator()
    order = []
    handles = [sim.schedule(float(i), lambda i=i: order.append(i))
               for i in range(6)]
    for i in (0, 2, 4):
        sim.cancel(handles[i])
    sim.cancel(handles[2])  # double-cancel is a no-op
    sim.run()
    assert order == [1, 3, 5]
