"""Tests for the hierarchical topology: placement, link classes,
asymmetric WAN delays, and RNG-draw parity with the flat network."""

from repro.sim.events import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Placement, Topology


class CountingRng:
    """Wraps an RNG stream, counting expovariate draws."""

    def __init__(self, rng):
        self.rng = rng
        self.draws = 0

    def expovariate(self, lam):
        self.draws += 1
        return self.rng.expovariate(lam)


def three_dc():
    topo = Topology(wan_one_way=0.02,
                    wan_delays={("dc0", "dc1"): 0.02,
                                ("dc1", "dc0"): 0.03},
                    preferred_dc="dc0")
    topo.place("a", "dc0")
    topo.place("b", "dc1")
    topo.place("c", "dc0", rack="dc0-rack1")
    topo.place("d", "dc2")
    return topo


def test_unplaced_endpoints_share_the_default_placement():
    topo = Topology()
    assert topo.placement_of("ghost") == Placement("dc0", "rack0")
    assert topo.link_class("ghost", "phantom") == "intra-rack"
    assert topo.same_dc("ghost", "phantom")


def test_link_classification():
    topo = three_dc()
    assert topo.link_class("a", "c") == "intra-dc"    # same DC, racks
    assert topo.link_class("a", "b") == "wan"
    assert topo.link_class("a", "a") == "intra-rack"
    assert not topo.same_dc("a", "b")
    assert topo.dcs() == ["dc0", "dc1", "dc2"]
    assert topo.placed_in_dc("dc0") == ["a", "c"]


def test_wan_delay_is_asymmetric_per_direction():
    topo = three_dc()
    assert topo.wan_delay("dc0", "dc1") == 0.02
    assert topo.wan_delay("dc1", "dc0") == 0.03
    # pairs not in the map fall back to the symmetric default
    assert topo.wan_delay("dc0", "dc2") == 0.02
    fwd = topo.nominal("a", "b", jitter_mult=0.0)
    back = topo.nominal("b", "a", jitter_mult=0.0)
    assert abs((back - fwd) - 0.01) < 1e-12


def test_delay_draws_exactly_one_jitter_sample_per_link_class():
    topo = three_dc()
    for src, dst in (("a", "a2"), ("a", "c"), ("a", "b")):
        rng = CountingRng(RngRegistry(3).stream("network"))
        topo.delay(src, dst, 4096, rng)
        assert rng.draws == 1, (src, dst)


def test_wan_rtt_sums_both_directions():
    topo = three_dc()
    transfer = 256 / topo.wan.bandwidth
    expect = 2 * (topo.wan.base + transfer) + 0.02 + 0.03
    assert abs(topo.wan_rtt("dc0", "dc1") - expect) < 1e-12
    assert topo.min_wan_rtt() <= topo.wan_rtt("dc0", "dc1")


def test_rtt_bound_covers_the_worst_wan_direction():
    topo = three_dc()
    transfer = 4096 / topo.wan.bandwidth
    worst_one_way = (topo.wan.base + transfer
                     + 3.0 * topo.wan.jitter + 0.03)
    assert topo.rtt_bound() >= 2.0 * worst_one_way


def test_flat_and_unplaced_topology_runs_are_bit_identical():
    """A topology where nobody is placed remotely must consume RNG state
    exactly like the flat path and deliver at identical times."""
    def deliveries(topology):
        sim = Simulator()
        net = Network(sim, RngRegistry(11), LatencyModel(),
                      topology=topology)
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_request(lambda req: got.append((req.payload, sim.now)))
        for i in range(20):
            a.send("b", i, size=512 * (1 + i % 3))
        sim.run()
        return got

    assert deliveries(None) == deliveries(Topology())


def test_network_applies_wan_delay_between_placed_endpoints():
    topo = three_dc()
    sim = Simulator()
    net = Network(sim, RngRegistry(5), topology=topo)
    a, b, c = net.endpoint("a"), net.endpoint("b"), net.endpoint("c")
    got = {}
    b.on_request(lambda req: got.setdefault("wan", sim.now))
    c.on_request(lambda req: got.setdefault("lan", sim.now))
    a.send("b", "x", size=256)
    a.send("c", "x", size=256)
    sim.run()
    assert got["wan"] >= 0.02          # pays the propagation delay
    assert got["lan"] < 0.02           # intra-DC stays far below it
    assert net.rtt_bound() == topo.rtt_bound()


def test_flat_network_rtt_bound_comes_from_the_latency_model():
    sim = Simulator()
    net = Network(sim, RngRegistry(5), LatencyModel())
    assert net.rtt_bound() == 2.0 * net.latency.nominal(4096)
    # flat default ~1 GbE: well under the client per-try floor
    assert net.rtt_bound() < 0.01
