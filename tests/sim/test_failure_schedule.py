"""Tests for the failure-injection scheduler."""

from repro.sim.events import Simulator
from repro.sim.failure import FailureSchedule
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


class FakeNode:
    def __init__(self, name):
        self.name = name
        self.alive = True
        self.disk_ok = True

    def crash(self):
        self.alive = False

    def restart(self):
        self.alive = True

    def lose_disk(self):
        self.alive = False
        self.disk_ok = False


def test_crash_and_restart_at_times():
    sim = Simulator()
    node = FakeNode("n1")
    sched = FailureSchedule(sim)
    sched.crash_at(5.0, node)
    sched.restart_at(8.0, node)
    sim.run(until=4.0)
    assert node.alive
    sim.run(until=6.0)
    assert not node.alive
    sim.run(until=9.0)
    assert node.alive
    assert [(t, label) for t, label in sched.log] == [
        (5.0, "crash n1"), (8.0, "restart n1")]


def test_crash_for_is_crash_plus_restart():
    sim = Simulator()
    node = FakeNode("n2")
    sched = FailureSchedule(sim)
    sched.crash_for(2.0, duration=3.0, target=node)
    sim.run(until=3.0)
    assert not node.alive
    sim.run(until=6.0)
    assert node.alive


def test_lose_disk_action():
    sim = Simulator()
    node = FakeNode("n3")
    sched = FailureSchedule(sim)
    sched.lose_disk_at(1.0, node)
    sim.run()
    assert not node.disk_ok
    assert sched.log[0][1] == "lose-disk n3"


def test_partition_and_heal_via_schedule():
    sim = Simulator()
    net = Network(sim, RngRegistry(4))
    net.endpoint("a")
    net.endpoint("b")
    sched = FailureSchedule(sim)
    sched.partition_at(1.0, net, "a", "b")
    sched.heal_at(3.0, net)
    sim.run(until=2.0)
    assert net.is_blocked("a", "b")
    sim.run(until=4.0)
    assert not net.is_blocked("a", "b")


def test_custom_labels_in_log():
    sim = Simulator()
    node = FakeNode("ugly-internal-name")
    sched = FailureSchedule(sim)
    sched.crash_at(1.0, node, label="the-leader")
    sim.run()
    assert sched.log == [(1.0, "crash the-leader")]


def _net_pair(seed=4):
    sim = Simulator()
    net = Network(sim, RngRegistry(seed))
    got = {"a": [], "b": []}
    for name in ("a", "b"):
        net.endpoint(name).on_request(
            lambda req, _n=name: got[_n].append(req.payload))
    return sim, net, got


def test_one_way_partition_via_schedule():
    sim, net, got = _net_pair()
    sched = FailureSchedule(sim)
    sched.partition_at(1.0, net, "a", "b", symmetric=False)
    sim.run(until=2.0)
    assert net.is_blocked("a", "b")
    assert not net.is_blocked("b", "a")
    assert sched.log == [(1.0, "partition a>b")]


def test_partition_for_heals_just_that_pair():
    sim, net, got = _net_pair()
    sched = FailureSchedule(sim)
    sched.partition_for(1.0, duration=2.0, network=net, a="a", b="b")
    sim.run(until=2.0)
    assert net.is_blocked("a", "b") and net.is_blocked("b", "a")
    sim.run(until=4.0)
    assert not net.is_blocked("a", "b")
    assert [label for _t, label in sched.log] == [
        "partition a|b", "heal a"]


def test_drop_burst_window():
    sim, net, got = _net_pair()
    sched = FailureSchedule(sim)
    sched.drop_burst(1.0, duration=1.0, network=net,
                     a="a", b="b", rate=1.0)
    a = net.get("a")
    sim.call_at(1.5, lambda: a.send("b", "during"))
    sim.call_at(2.5, lambda: a.send("b", "after"))
    sim.run()
    assert got["b"] == ["after"]
    assert net.messages_dropped == 1


def test_latency_spikes_compose_and_unwind():
    sim, net, got = _net_pair()
    sched = FailureSchedule(sim)
    sched.latency_spike(1.0, duration=2.0, network=net, extra=0.010)
    sched.latency_spike(2.0, duration=2.0, network=net, extra=0.005)
    checks = []
    for t, expect in [(1.5, 0.010), (2.5, 0.015), (3.5, 0.005),
                      (4.5, 0.0)]:
        sim.call_at(t, lambda e=expect: checks.append(
            abs(net.extra_delay - e) < 1e-12))
    sim.run()
    assert all(checks)
    a = net.get("a")
    # A message sent with no spike active arrives fast again.
    a.send("b", "calm")
    sim.run()
    assert got["b"] == ["calm"]
