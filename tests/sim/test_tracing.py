"""Tests for the tracing subsystem and its protocol integration."""

from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.sim.disk import DiskProfile
from repro.sim.events import Simulator
from repro.sim.tracing import NullTracer, TraceEvent, Tracer

import pytest


def test_tracer_collects_and_filters():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("election", "n1", "won", epoch=2)
    sim.schedule(1.0, lambda: tracer.emit("node", "n2", "crash"))
    sim.run()
    assert len(tracer) == 2
    elections = tracer.events(category="election")
    assert len(elections) == 1
    assert elections[0].fields == {"epoch": 2}
    assert tracer.events(node="n2")[0].time == 1.0
    assert tracer.events(since=0.5) == tracer.events(node="n2")


def test_tracer_category_allowlist():
    tracer = Tracer(categories={"node"})
    tracer.emit("node", "n1", "boot")
    tracer.emit("election", "n1", "won")
    assert len(tracer) == 1
    assert tracer.dropped == 1


def test_tracer_ring_buffer_bounds_memory():
    tracer = Tracer(max_events=10)
    for i in range(25):
        tracer.emit("node", "n", f"e{i}")
    assert len(tracer) == 10
    assert tracer.events()[0].message == "e15"


def test_tracer_subscribers_get_live_events():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit("node", "n1", "boot")
    assert len(seen) == 1 and seen[0].message == "boot"


def test_event_format_readable():
    event = TraceEvent(time=1.5, category="takeover", node="node3",
                       message="open", fields={"epoch": 2})
    text = event.format()
    assert "takeover" in text and "node3" in text and "epoch=2" in text


def test_null_tracer_is_silent():
    tracer = NullTracer()
    tracer.emit("x", "n", "whatever")
    assert tracer.events() == []
    with pytest.raises(RuntimeError):
        tracer.subscribe(lambda e: None)


def test_cluster_integration_traces_failover_story():
    tracer = Tracer()
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=9,
                               tracer=tracer)
    cluster.start()
    assert tracer.sim is cluster.sim
    boots = tracer.events(category="node")
    assert sum(1 for e in boots if e.message == "boot") == 3
    wins = [e for e in tracer.events(category="election")
            if e.message == "won election"]
    assert len(wins) == 3  # one per cohort
    opens = [e for e in tracer.events(category="takeover")
             if e.message == "cohort open for writes"]
    assert len(opens) == 3

    t_kill = cluster.sim.now
    cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="failover")
    crashes = [e for e in tracer.events(category="node", since=t_kill)
               if e.message == "crash"]
    assert len(crashes) == 1
    new_wins = [e for e in tracer.events(category="election",
                                         since=t_kill)
                if e.message == "won election" and e.fields["cohort"] == 0]
    assert len(new_wins) == 1
    assert new_wins[0].node == cluster.leader_of(0)
    # The human-readable dump mentions the whole story.
    dump = tracer.format(since=t_kill)
    assert "crash" in dump and "won election" in dump
