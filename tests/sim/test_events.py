"""Tests for the event-loop kernel."""

import pytest

from repro.sim.events import Event, SimulationError, Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_limit_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(True))
    sim.run(until=5.0)
    assert not fired
    assert sim.now == 5.0
    sim.run()
    assert fired


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    entry = sim.schedule(1.0, lambda: fired.append(True))
    sim.cancel(entry)
    sim.run()
    assert not fired


def test_nested_scheduling_from_callback():
    sim = Simulator()
    times = []

    def outer():
        times.append(sim.now)
        sim.schedule(0.5, lambda: times.append(sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert times == [1.0, 1.5]


def test_event_succeed_delivers_value_to_callbacks():
    sim = Simulator()
    ev = Event(sim)
    got = []
    ev.add_callback(lambda e: got.append(e.result()))
    ev.succeed(42)
    assert got == [42]
    assert ev.ok


def test_event_callback_added_after_trigger_runs_immediately():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed("x")
    got = []
    ev.add_callback(lambda e: got.append(e.result()))
    assert got == ["x"]


def test_event_fail_reraises_on_result():
    sim = Simulator()
    ev = Event(sim)
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError):
        ev.result()
    assert isinstance(ev.exception, ValueError)


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_result_before_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        ev.result()
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_fail_requires_exception():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_run_until_complete_returns_value():
    sim = Simulator()
    ev = Event(sim)
    sim.schedule(2.0, lambda: ev.succeed("done"))
    assert sim.run_until_complete(ev) == "done"
    assert sim.now == 2.0


def test_run_until_complete_raises_if_never_fires():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        sim.run_until_complete(ev, limit=1.0)
