"""Tier-1 gate: the full lint suite over ``src/repro`` must stay green.

This is the enforcement point for the determinism invariants listed in
DESIGN.md: any new nondeterminism hazard or protocol gap in the tree
fails CI here, exactly as ``python -m repro lint`` fails in the shell.
A second set of tests proves the gate actually fires by injecting a
hazard into a copy of a package and watching the exit code flip.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import run_lint
from repro.analysis.cli import main as lint_main

REPRO_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_tree_is_lint_clean():
    result = run_lint(REPRO_ROOT,
                      baseline_path=BASELINE if BASELINE.exists() else None)
    assert result.parse_errors == []
    assert result.findings == [], "\n".join(
        f.format() for f in result.findings)
    # Baseline hygiene is part of the gate: entries that no longer
    # match anything must be pruned, not left to rot.
    assert result.stale_baseline == [], result.stale_baseline
    assert result.files_checked > 50


def test_cli_exits_zero_on_clean_tree(capsys):
    rc = lint_main([str(REPRO_ROOT)]
                   + (["--baseline", str(BASELINE)]
                      if BASELINE.exists() else []))
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out


def _copy_tree_with_hazard(tmp_path: Path) -> Path:
    """A copy of the sim package plus one injected hazard module."""
    tree = tmp_path / "tree"
    shutil.copytree(REPRO_ROOT / "sim", tree / "sim")
    (tree / "sim" / "injected_hazard.py").write_text(
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n")
    return tree


def test_cli_exits_nonzero_on_injected_hazard(tmp_path, capsys):
    tree = _copy_tree_with_hazard(tmp_path)
    rc = lint_main([str(tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "sim/injected_hazard.py:1" in out
    assert "[nondet-import]" in out
    assert "FAIL" in out


def test_cli_json_output_reports_injected_hazard(tmp_path, capsys):
    tree = _copy_tree_with_hazard(tmp_path)
    rc = lint_main([str(tree), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["ok"] is False
    hazards = [f for f in payload["findings"]
               if f["path"] == "sim/injected_hazard.py"]
    assert hazards and hazards[0]["rule"] == "nondet-import"
    assert hazards[0]["line"] == 1


def _copy_tree_with_topology_hazard(tmp_path: Path) -> Path:
    """A copy of the sim package plus a module with the two dict-order
    hazards the topology layer must avoid: injecting link faults and
    placing endpoints while iterating an unsorted dict view."""
    tree = tmp_path / "topo-tree"
    shutil.copytree(REPRO_ROOT / "sim", tree / "sim")
    (tree / "sim" / "injected_topology_hazard.py").write_text(
        "def degrade_all(topo, net):\n"
        "    for (src, dst), extra in topo.wan_delays.items():\n"
        "        net.set_extra_delay(src, dst, extra)\n"
        "def place_all(topo, dcs):\n"
        "    for name, dc in dcs.items():\n"
        "        topo.place(name, dc)\n")
    return tree


def test_topology_dict_iteration_hazards_fire(tmp_path, capsys):
    tree = _copy_tree_with_topology_hazard(tmp_path)
    rc = lint_main([str(tree), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    hazards = [f for f in payload["findings"]
               if f["path"] == "sim/injected_topology_hazard.py"]
    assert {f["line"] for f in hazards} == {2, 5}
    assert all(f["rule"] == "dict-order" for f in hazards)


def test_topology_module_is_covered_and_clean():
    result = run_lint(REPRO_ROOT / "sim")
    assert result.findings == []
    checked = {p.name for p in (REPRO_ROOT / "sim").glob("*.py")}
    assert "topology.py" in checked
    assert result.files_checked == len(checked)


def test_rule_filter_restricts_findings(tmp_path, capsys):
    tree = _copy_tree_with_hazard(tmp_path)
    rc = lint_main([str(tree), "--no-baseline", "--rule", "set-iteration"])
    out = capsys.readouterr().out
    assert rc == 0, out  # the injected hazard is a nondet-import
    assert "OK" in out


def test_module_entrypoint_runs_lint():
    # `python -m repro lint` end to end, as CI invokes it.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(REPRO_ROOT),
         "--baseline", str(BASELINE)],
        capture_output=True, text=True, timeout=120,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout
