"""Runner/CLI matrix: exit codes × pragmas × baseline interactions.

Covers the 0/1/2 exit paths, pragma coverage of multi-line statements,
mixed baseline + new findings, stale-baseline failure, and
``--prune-baseline`` rewriting the file back to health.
"""

import ast
from pathlib import Path

from repro.analysis import Baseline, run_lint
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import parse_pragmas, statement_spans

HAZARD = ("import random\n"
          "def jitter():\n"
          "    return random.random()\n")


def make_tree(tmp_path: Path, files) -> Path:
    tree = tmp_path / "tree"
    tree.mkdir(exist_ok=True)
    for name, text in files.items():
        (tree / name).write_text(text)
    return tree


# ---------------------------------------------------------------------------
# exit codes
# ---------------------------------------------------------------------------

def test_exit_zero_on_clean_tree(tmp_path, capsys):
    tree = make_tree(tmp_path, {"mod.py": "X = 1\n"})
    assert lint_main([str(tree), "--no-baseline"]) == 0
    assert "OK" in capsys.readouterr().out


def test_exit_one_on_new_finding(tmp_path, capsys):
    tree = make_tree(tmp_path, {"mod.py": HAZARD})
    assert lint_main([str(tree), "--no-baseline"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_exit_two_on_prune_with_rule_filter(tmp_path, capsys):
    tree = make_tree(tmp_path, {"mod.py": "X = 1\n"})
    blpath = tmp_path / "bl.json"
    Baseline().dump(blpath)
    rc = lint_main([str(tree), "--baseline", str(blpath),
                    "--prune-baseline", "--rule", "nondet-import"])
    assert rc == 2
    assert "cannot be combined" in capsys.readouterr().err


def test_exit_two_on_prune_without_baseline(tmp_path, capsys):
    tree = make_tree(tmp_path, {"mod.py": "X = 1\n"})
    rc = lint_main([str(tree), "--no-baseline", "--prune-baseline"])
    assert rc == 2
    assert "no baseline file" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# pragmas on multi-line statements
# ---------------------------------------------------------------------------

def test_statement_spans_cover_multiline_simple_statements():
    src = "x = f(\n    1,\n    2,\n)\n"
    assert (1, 4) in statement_spans(ast.parse(src))


def test_statement_spans_keep_compound_headers_narrow():
    src = "if cond:\n    a = 1\n    b = 2\n"
    spans = statement_spans(ast.parse(src))
    assert (1, 1) in spans          # the if header only, not the block


def test_pragma_on_continuation_line_covers_whole_statement():
    src = "x = f(\n    1,\n    2,  # lint: allow(foo)\n)\n"
    pragmas = parse_pragmas(src, ast.parse(src))
    for line in (1, 2, 3, 4):
        assert "foo" in pragmas[line]


def test_pragma_inside_block_does_not_blanket_the_block():
    src = ("for item in items:\n"
           "    a = 1  # lint: allow(foo)\n"
           "    b = 2\n"
           "    c = 3\n")
    pragmas = parse_pragmas(src, ast.parse(src))
    assert 4 not in pragmas


def test_runner_suppresses_finding_via_trailing_pragma(tmp_path):
    # The stale use anchors at a continuation line; the pragma sits on
    # the closing line of the same statement — only the statement-span
    # expansion can connect the two.
    mod = ("def worker(self):\n"
           "    epoch = self.epoch\n"
           "    yield self.sim.timeout(0.1)\n"
           "    self.apply(\n"
           "        epoch,\n"
           "    )  # lint: allow(stale-guard-across-yield)\n"
           "\n"
           "def boot(sim, node):\n"
           "    spawn(sim, worker(node))\n"
           "\n"
           "def spawn(sim, gen):\n"
           "    return gen\n")
    tree = make_tree(tmp_path, {"mod.py": mod})
    result = run_lint(tree, protocols=())
    assert [f.rule for f in result.pragma_suppressed] \
        == ["stale-guard-across-yield"]
    assert result.findings == []


# ---------------------------------------------------------------------------
# baseline interactions
# ---------------------------------------------------------------------------

def test_baseline_plus_new_finding_mix(tmp_path, capsys):
    tree = make_tree(tmp_path, {"old.py": HAZARD})
    blpath = tmp_path / "bl.json"
    Baseline.from_findings(run_lint(tree, protocols=()).findings) \
        .dump(blpath)
    # The baselined hazard alone is green.
    assert lint_main([str(tree), "--baseline", str(blpath)]) == 0
    capsys.readouterr()
    # A new hazard still fails, while the old one stays baselined.
    (tree / "new.py").write_text(HAZARD)
    rc = lint_main([str(tree), "--baseline", str(blpath)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "new.py" in out and "old.py" not in out.split("baselined")[0]


def test_stale_baseline_fails_then_prune_recovers(tmp_path, capsys):
    tree = make_tree(tmp_path, {"mod.py": HAZARD})
    baseline = Baseline.from_findings(run_lint(tree,
                                               protocols=()).findings)
    baseline.entries[("nondet-import", "gone.py", "import os")] = 1
    blpath = tmp_path / "bl.json"
    baseline.dump(blpath)

    rc = lint_main([str(tree), "--baseline", str(blpath)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "stale baseline entry" in out and "gone.py" in out

    rc = lint_main([str(tree), "--baseline", str(blpath),
                    "--prune-baseline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pruned 1 stale entry" in out

    assert lint_main([str(tree), "--baseline", str(blpath)]) == 0
    entries = Baseline.load(blpath).entries
    assert ("nondet-import", "gone.py", "import os") not in entries
    assert entries      # the live findings were kept


def test_pragma_suppressed_finding_leaves_baseline_entry_stale(tmp_path):
    # A pragma'd finding no longer consumes its baseline budget: the
    # leftover entry must be reported as rot, not silently tolerated.
    tree = make_tree(tmp_path, {"mod.py": HAZARD})
    blpath = tmp_path / "bl.json"
    Baseline.from_findings(run_lint(tree, protocols=()).findings) \
        .dump(blpath)
    (tree / "mod.py").write_text(HAZARD.replace(
        "import random", "import random  # lint: allow(nondet-import)")
        .replace("return random.random()",
                 "return random.random()  "
                 "# lint: allow(nondet-import)"))
    result = run_lint(tree, baseline_path=blpath, protocols=())
    assert not result.findings
    assert result.stale_baseline
    assert not result.ok


def test_rule_filter_judges_only_selected_rules_stale(tmp_path):
    tree = make_tree(tmp_path, {"mod.py": "X = 1\n"})
    baseline = Baseline()
    baseline.entries[("set-iteration", "gone.py", "for x in s:")] = 1
    blpath = tmp_path / "bl.json"
    baseline.dump(blpath)
    # A run restricted to another rule cannot judge the entry stale...
    restricted = run_lint(tree, baseline_path=blpath, protocols=(),
                          rules={"nondet-import"})
    assert restricted.ok
    # ...but a full run can.
    full = run_lint(tree, baseline_path=blpath, protocols=())
    assert not full.ok and full.stale_baseline
