"""Exhaustiveness-checker tests: synthetic protocol + the real tree."""

from pathlib import Path

import repro
from repro.analysis import (DEFAULT_PROTOCOLS, ProtocolSpec,
                            check_protocol, check_protocols)
from repro.analysis.protocol import parse_catalog

FIXTURES = Path(__file__).parent / "fixtures"
REPRO_ROOT = Path(repro.__file__).resolve().parent

SYNTHETIC = ProtocolSpec(
    name="proto",
    messages="proto/messages.py",
    dispatchers=("proto/node.py",),
    senders=("proto/client.py",),
)


def findings_by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


# ---------------------------------------------------------------------------
# Synthetic protocol fixture
# ---------------------------------------------------------------------------

def test_checker_catches_deliberately_unhandled_type():
    by_rule = findings_by_rule(check_protocol(SYNTHETIC, FIXTURES))
    unhandled = by_rule.get("unhandled-message", [])
    assert [f for f in unhandled if "Orphan" in f.message]
    # Handled, reply-only, and component types must NOT be reported.
    text = " ".join(f.message for f in unhandled)
    for name in ("Ping", "Pong", "Part", "Epochal"):
        assert name not in text


def test_checker_catches_dead_type():
    by_rule = findings_by_rule(check_protocol(SYNTHETIC, FIXTURES))
    dead = by_rule.get("dead-message", [])
    assert len(dead) == 1
    assert "Unused" in dead[0].message
    assert dead[0].path == "proto/messages.py"


def test_checker_catches_epoch_unchecked_handler():
    by_rule = findings_by_rule(check_protocol(SYNTHETIC, FIXTURES))
    stale = by_rule.get("stale-epoch", [])
    assert len(stale) == 1
    assert "Epochal" in stale[0].message
    assert stale[0].path == "proto/node.py"


def test_checker_findings_carry_lines_into_catalog():
    catalog = parse_catalog(
        (FIXTURES / "proto/messages.py").read_text(), "proto/messages.py")
    assert set(catalog) == {"Part", "Ping", "Pong", "Orphan", "Unused",
                            "Epochal", "Sized"}
    assert catalog["Ping"].embeds == {"Part"}
    assert "epoch" in catalog["Epochal"].fields


def test_checker_catches_missing_size_calls():
    by_rule = findings_by_rule(check_protocol(SYNTHETIC, FIXTURES))
    missing = by_rule.get("missing-size", [])
    # Exactly two: the dispatcher's bare respond() and the client's
    # bare Sized send.
    assert len(missing) == 2, [f.format() for f in missing]
    assert any(f.path == "proto/node.py" and "respond()" in f.message
               for f in missing)
    assert any(f.path == "proto/client.py" and "Sized" in f.message
               for f in missing)


def test_missing_size_exemptions():
    # Size on a continuation line, positional size, **kwargs
    # forwarding, and non-endpoint .send() must all stay exempt.
    by_rule = findings_by_rule(check_protocol(SYNTHETIC, FIXTURES))
    flagged = {f.line for f in by_rule.get("missing-size", [])
               if f.path == "proto/client.py"}
    src = (FIXTURES / "proto/client.py").read_text().splitlines()
    exempt = [i for i, text in enumerate(src, start=1)
              if "size=96" in text or ", 32)" in text
              or "**opts" in text or "gen.send" in text]
    assert exempt and not flagged & set(exempt)


def test_fixing_the_dispatcher_clears_the_finding(tmp_path):
    # Copy the fixture protocol, add the missing Orphan branch, and the
    # unhandled-message finding disappears.
    proto = tmp_path / "proto"
    proto.mkdir()
    for name in ("__init__.py", "messages.py", "client.py"):
        (proto / name).write_text((FIXTURES / "proto" / name).read_text())
    node = (FIXTURES / "proto/node.py").read_text().replace(
        "elif isinstance(payload, Epochal):",
        "elif isinstance(payload, Orphan):\n"
        "            pass\n"
        "        elif isinstance(payload, Epochal):").replace(
        "from .messages import Epochal, Ping, Pong",
        "from .messages import Epochal, Orphan, Ping, Pong")
    (proto / "node.py").write_text(node)
    findings = check_protocol(SYNTHETIC, tmp_path)
    assert not [f for f in findings if f.rule == "unhandled-message"]


# ---------------------------------------------------------------------------
# The real tree (acceptance criterion: zero unhandled message types)
# ---------------------------------------------------------------------------

def test_core_and_baseline_dispatchers_are_exhaustive():
    findings = check_protocols(REPRO_ROOT, DEFAULT_PROTOCOLS)
    unhandled = [f for f in findings if f.rule == "unhandled-message"]
    assert unhandled == [], [f.format() for f in unhandled]


def test_real_tree_protocol_findings_all_carry_pragmas():
    # dead-message / stale-epoch findings on the real tree are allowed
    # only where a '# lint: allow' pragma documents the reason.
    from repro.analysis import parse_pragmas, suppressed

    findings = check_protocols(REPRO_ROOT, DEFAULT_PROTOCOLS)
    leftovers = []
    for f in findings:
        pragmas = parse_pragmas((REPRO_ROOT / f.path).read_text())
        if not suppressed(f, pragmas):
            leftovers.append(f.format())
    assert leftovers == []


def test_catalog_covers_chunked_catchup_messages():
    """The chunked catch-up protocol's messages are in the real catalog
    (and the retired one-shot reply is gone)."""
    catalog = parse_catalog(
        (REPRO_ROOT / "core" / "messages.py").read_text(),
        "core/messages.py")
    for name in ("CatchupRequest", "CatchupChunk", "CatchupFinal",
                 "TakeoverState"):
        assert name in catalog, name
    assert "CatchupReply" not in catalog
    for field in ("floor", "seen", "source", "max_bytes"):
        assert field in catalog["CatchupRequest"].fields
    for field in ("sstables", "snapshot_seen", "floor", "valid_after",
                  "valid_upto", "more"):
        assert field in catalog["CatchupChunk"].fields
    # Chunks carry an epoch the follower checks before ingesting.
    assert "epoch" in catalog["CatchupChunk"].fields
