"""Fixture: id()/hash() used as ordering keys."""


def order_by_id(procs):
    return sorted(procs, key=id)                      # id-hash-order


def order_by_hash(events):
    return sorted(events, key=lambda e: hash(e))      # id-hash-order


def min_by_id(procs):
    return min(procs, key=lambda p: (id(p), 0))       # id-hash-order


def order_by_name(procs):
    return sorted(procs, key=lambda p: p.name)        # fine
