"""Fixture: real-world I/O and concurrency inside sim code."""

import threading                  # real-io


def persist(data):
    with open("/tmp/out", "w") as fh:     # real-io
        fh.write(data)


def debug(msg):
    print(msg)                            # real-io


def fan_out(work):
    return threading.Thread(target=work)
