"""Fixture: stale-guard-across-yield — guard snapshots crossing yields.

``handler``, ``loop_stale``, and ``param_guard`` act on pre-yield
snapshots; ``revalidated``, ``fresh_reader``, ``commit_loop``, and
``param_revalidated`` show the blessed re-check idioms and must stay
green; ``suppressed_handler`` carries a pragma.
"""


def handler(self):
    epoch = self.epoch                    # snapshot
    yield self.sim.timeout(0.1)
    self.commits.append(epoch)            # stale-guard-across-yield


def revalidated(self):
    epoch = self.epoch
    yield self.sim.timeout(0.1)
    if self.epoch != epoch:               # re-read refreshes the snapshot
        return
    self.commits.append(epoch)            # fine


def fresh_reader(self):
    yield self.sim.timeout(0.1)
    self.commits.append(self.epoch)       # fine: live read, no snapshot


def commit_loop(self):
    epoch = self.epoch
    while self.is_leader and self.epoch == epoch:   # fine: test re-reads
        yield self.force()


def loop_stale(self):
    gen = self.batch_gen                  # snapshot
    while self.alive:
        yield self.sim.timeout(0.1)
        self.restart(gen)                 # stale-guard-across-yield


def param_guard(self, epoch):
    yield self.sim.timeout(0.1)
    self.seal(epoch)                      # stale-guard-across-yield


def param_revalidated(self, epoch):
    yield self.sim.timeout(0.1)
    if self.epoch != epoch:               # re-read matches the param name
        return
    self.seal(epoch)                      # fine


def suppressed_handler(self):
    term = self.term
    yield self.sim.timeout(0.1)
    # lint: allow(stale-guard-across-yield)
    self.commits.append(term)


def boot(sim, node):
    spawn(sim, handler(node))
    spawn(sim, revalidated(node))
    spawn(sim, fresh_reader(node))
    spawn(sim, commit_loop(node))
    spawn(sim, loop_stale(node))
    spawn(sim, param_guard(node, 3))
    spawn(sim, param_revalidated(node, 3))
    spawn(sim, suppressed_handler(node))


def spawn(sim, gen):
    return gen
