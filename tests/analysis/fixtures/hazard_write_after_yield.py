"""Fixture: write-after-yield-unguarded — protocol-state writes whose
dominating guards pre-date the last scheduling point.

``promote`` is the hazard; ``guarded_promote`` re-checks after the
yield, ``monotonic`` re-reads the written attribute in its own merge,
and ``counter`` is a read-modify-write — all three must stay green.
"""


def promote(self):
    if self.is_leader:                    # guard established pre-yield
        yield self.sim.timeout(0.1)
        self.open_for_writes = True       # write-after-yield-unguarded


def guarded_promote(self):
    yield self.sim.timeout(0.1)
    if self.is_leader:                    # re-checked post-yield
        self.open_for_writes = True       # fine


def monotonic(self):
    yield self.sim.timeout(0.1)
    self.committed_lsn = max(self.committed_lsn, 7)   # fine: merge


def counter(self):
    yield self.sim.timeout(0.1)
    self.epoch += 1                       # fine: read-modify-write


def suppressed_promote(self):
    yield self.sim.timeout(0.1)
    # lint: allow(write-after-yield-unguarded)
    self.open_for_writes = True


def boot(sim, node):
    spawn(sim, promote(node))
    spawn(sim, guarded_promote(node))
    spawn(sim, monotonic(node))
    spawn(sim, counter(node))
    spawn(sim, suppressed_promote(node))


def spawn(sim, gen):
    return gen
