"""Fixture: order-escaping set iteration, three shapes."""

from typing import Set

waiting: Set[str] = set()


class Tracker:
    def __init__(self):
        self._procs = set()

    def names(self):
        return [p for p in self._procs]          # set-iteration (comp)

    def snapshot(self):
        return list(self._procs)                  # set-iteration (list)

    def drain(self):
        out = []
        for proc in self._procs:                  # set-iteration (for)
            out.append(proc)
        return out

    def sorted_ok(self):
        return [p for p in sorted(self._procs)]   # fine


def flush():
    for name in waiting:                          # set-iteration (for)
        yield name
