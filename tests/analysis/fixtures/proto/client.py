"""Synthetic sender for the exhaustiveness-checker tests."""

from .messages import Epochal, Orphan, Part, Ping


def send_all(endpoint):
    endpoint.send("node0", Ping(cohort_id=0,
                                parts=(Part(key=b"k", value=b"v"),)))
    endpoint.send("node0", Orphan(cohort_id=0))
    endpoint.send("node0", Epochal(cohort_id=0, epoch=3))
