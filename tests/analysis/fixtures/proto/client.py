"""Synthetic sender for the exhaustiveness-checker tests."""

from .messages import Epochal, Orphan, Part, Ping
from .messages import Sized


def send_all(endpoint):
    endpoint.send("node0", Ping(cohort_id=0,
                                parts=(Part(key=b"k", value=b"v"),)),
                  size=96)  # size on a continuation line: not a finding
    endpoint.send("node0", Orphan(cohort_id=0), size=48)
    endpoint.send("node0", Epochal(cohort_id=0, epoch=3), size=48)


def send_sized(endpoint, gen, opts):
    # True positive: endpoint send with no size anywhere.
    endpoint.send("node0", Sized(cohort_id=0, blob=b"x"))
    # Exempt: size passed positionally.
    endpoint.send("node0", Sized(cohort_id=0, blob=b"y"), 32)
    # Exempt: **kwargs may forward size.
    endpoint.request("node0", Sized(cohort_id=0, blob=b"z"), **opts)
    # Exempt: generator .send() is not a wire call.
    gen.send(None)
