"""Synthetic dispatcher for the exhaustiveness-checker tests."""

from .messages import Epochal, Ping, Pong
from .messages import Sized


class Node:
    def dispatch(self, req):
        payload = req.payload
        if isinstance(payload, Ping):
            req.respond(self.handle_ping(payload))
        elif isinstance(payload, Epochal):
            self.handle_epochal(payload)
        elif isinstance(payload, Sized):
            self.blob = payload.blob

    def handle_ping(self, msg: Ping) -> Pong:
        return Pong(cohort_id=msg.cohort_id, ok=True)

    def handle_epochal(self, msg) -> None:
        self.last = msg.cohort_id    # note: never reads msg.epoch
