"""Synthetic protocol catalog for the exhaustiveness-checker tests."""

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Part:
    """Component type: only ever embedded inside Ping."""

    key: bytes
    value: Optional[bytes]


@dataclass(frozen=True)
class Ping:
    cohort_id: int
    parts: Tuple[Part, ...]


@dataclass(frozen=True)
class Pong:
    """Reply-only: returned by the node, never dispatched."""

    cohort_id: int
    ok: bool


@dataclass(frozen=True)
class Orphan:
    """Deliberately unhandled: sent by the client, no dispatcher branch."""

    cohort_id: int


@dataclass(frozen=True)
class Unused:
    """Deliberately dead: never constructed anywhere."""

    cohort_id: int


@dataclass(frozen=True)
class Epochal:
    """Handled, but its handler never reads .epoch."""

    cohort_id: int
    epoch: int


@dataclass(frozen=True)
class Sized:
    """Handled and sent; used by the missing-size fixture cases."""

    cohort_id: int
    blob: bytes
