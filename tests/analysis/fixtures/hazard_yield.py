"""Fixture: yield-discipline — process bodies yielding non-Events.

``worker`` is spawned, so it is a process; ``helper`` is reached from a
process via ``yield from``; ``plain_iterator`` is never spawned and may
yield whatever it likes.
"""


def worker(sim):
    yield                                  # yield-discipline (bare)
    yield 0.5                              # yield-discipline (constant)
    yield from helper(sim)
    yield sim.timeout(1.0)                 # fine: event-shaped call


def helper(sim):
    yield (1, 2)                           # yield-discipline (literal)
    yield sim.timeout(0.1)                 # fine


def plain_iterator(records):
    for record in records:
        yield (record.lsn, record)         # fine: not a process body


def boot(sim):
    proc = spawn(sim, worker(sim))
    return proc


def spawn(sim, gen):
    return gen
