"""Fixture: mutate-while-iterating — live collections mutated across a
yield inside a loop over themselves.

``drain`` and ``view_loop`` are the hazards; ``snapshot_drain``
iterates a copy and ``mutate_after`` mutates only once the loop is
done — both must stay green.
"""


def drain(self):
    for record in self.queue:             # live iteration
        yield self.sim.timeout(0.01)
        self.queue.remove(record)         # mutate-while-iterating


def snapshot_drain(self):
    for record in list(self.queue):       # snapshot: fine
        yield self.sim.timeout(0.01)
        self.queue.remove(record)


def view_loop(self):
    # lint: allow(dict-order) -- fixture exercises the atomicity rule
    for name in self.members.keys():      # dict view is live
        yield self.sim.timeout(0.01)
        self.members.pop(name)            # mutate-while-iterating


def mutate_after(self):
    for record in self.queue:
        yield self.sim.timeout(0.01)
    self.queue.clear()                    # fine: the loop has ended


def suppressed_drain(self):
    for record in self.queue:
        yield self.sim.timeout(0.01)
        # lint: allow(mutate-while-iterating)
        self.queue.remove(record)


def boot(sim, node):
    spawn(sim, drain(node))
    spawn(sim, snapshot_drain(node))
    spawn(sim, view_loop(node))
    spawn(sim, mutate_after(node))
    spawn(sim, suppressed_drain(node))


def spawn(sim, gen):
    return gen
