"""Fixture: the same hazards, each silenced by a pragma."""

import random  # lint: allow(nondet-import)

# lint: allow(nondet-import)
from datetime import datetime

procs = {object(), object()}

# lint: allow(set-iteration)
ordered = list(procs)


def stamp():
    return datetime.now()  # lint: allow(nondet-import)


def jitter():
    return random.random()
