"""Fixture: code every rule should accept."""

from typing import Dict, Set


def deterministic(rng_registry, items: Set[str],
                  table: Dict[str, int]) -> list:
    rng = rng_registry.stream("fixture")
    out = [rng.random()]
    for name in sorted(items):          # sorted set iteration is fine
        out.append(name)
    for key in sorted(table.keys()):    # sorted dict view is fine
        out.append(table[key])
    total = sum(1 for _ in items)       # order-insensitive reduction
    return out + [total]


def formatting(table: Dict[str, int]) -> str:
    # dict-view loop with no scheduling-visible effects: allowed
    parts = []
    for key, value in table.items():
        parts = parts + [f"{key}={value}"]
    return " ".join(parts)
