"""Fixture: every flavour of ambient-entropy hazard, unsuppressed."""

import random                     # nondet-import (line 3)
from datetime import datetime     # nondet-import (line 4)

import os
import uuid


def jitter():
    return random.random()


def stamp():
    return datetime.now()


def token():
    return os.urandom(8) + uuid.uuid4().bytes
