"""Fixture: dict iteration whose order feeds scheduling."""

from typing import Dict

nodes: Dict[str, object] = {}


def crash_all(sim):
    for name, node in nodes.items():         # dict-order: interrupts
        node.interrupt("crash")


def rebalance(sim):
    for node in nodes.values():              # dict-order: spawns
        spawn(sim, node.rejoin())


def report() -> str:
    out = []
    for name in nodes.keys():                # no effects: allowed
        out = out + [name]
    return ",".join(out)


def sorted_crash(sim):
    for name in sorted(nodes.keys()):        # sorted: allowed
        nodes[name].interrupt("crash")


def spawn(sim, gen):
    return gen
