"""Unit tests for the cross-yield atomicity rules, over fixtures.

Each fixture exercises one rule three ways: positive (the hazard is
flagged), clean (the blessed re-check idioms stay green), and
suppressed (a pragma silences it through the normal machinery).
"""

from pathlib import Path

from repro.analysis import lint_atomicity, parse_pragmas, suppressed

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, **kwargs):
    path = FIXTURES / name
    return lint_atomicity(path.read_text(), name, **kwargs)


def processes_of(findings):
    out = set()
    for f in findings:
        out.add(f.message.split("'")[1])   # "in process 'name': ..."
    return out


# ---------------------------------------------------------------------------
# stale-guard-across-yield
# ---------------------------------------------------------------------------

def test_stale_guard_flags_snapshots_and_params():
    findings = lint_fixture("hazard_stale_guard.py")
    stale = [f for f in findings if f.rule == "stale-guard-across-yield"]
    assert processes_of(stale) == {"handler", "loop_stale", "param_guard",
                                   "suppressed_handler"}


def test_stale_guard_blessed_idioms_stay_green():
    findings = lint_fixture("hazard_stale_guard.py")
    clean = {"revalidated", "fresh_reader", "commit_loop",
             "param_revalidated"}
    assert not processes_of(findings) & clean


def test_stale_guard_names_the_snapshot_site():
    findings = lint_fixture("hazard_stale_guard.py")
    handler = [f for f in findings if "'handler'" in f.message][0]
    assert "'self.epoch'" in handler.message
    assert "used after a yield" in handler.message
    param = [f for f in findings if "'param_guard'" in f.message][0]
    assert "parameter 'epoch'" in param.message


# ---------------------------------------------------------------------------
# write-after-yield-unguarded
# ---------------------------------------------------------------------------

def test_write_after_yield_flags_pre_yield_guards_only():
    findings = lint_fixture("hazard_write_after_yield.py")
    writes = [f for f in findings
              if f.rule == "write-after-yield-unguarded"]
    assert processes_of(writes) == {"promote", "suppressed_promote"}


def test_write_after_yield_recheck_merge_and_counter_stay_green():
    findings = lint_fixture("hazard_write_after_yield.py")
    clean = {"guarded_promote", "monotonic", "counter"}
    assert not processes_of(findings) & clean


# ---------------------------------------------------------------------------
# mutate-while-iterating
# ---------------------------------------------------------------------------

def test_mutate_while_iterating_flags_live_loops():
    findings = lint_fixture("hazard_mutate_iter.py")
    mut = [f for f in findings if f.rule == "mutate-while-iterating"]
    assert processes_of(mut) == {"drain", "view_loop", "suppressed_drain"}
    messages = " ".join(f.message for f in mut)
    assert "list(self.queue)" in messages    # the suggested snapshot
    assert "self.members" in messages


def test_mutate_while_iterating_snapshot_and_post_loop_stay_green():
    findings = lint_fixture("hazard_mutate_iter.py")
    clean = {"snapshot_drain", "mutate_after"}
    assert not processes_of(findings) & clean


# ---------------------------------------------------------------------------
# pragmas, cross-module closure, configurable guards
# ---------------------------------------------------------------------------

def test_pragmas_silence_each_atomicity_rule():
    for name in ("hazard_stale_guard.py", "hazard_write_after_yield.py",
                 "hazard_mutate_iter.py"):
        findings = lint_fixture(name)
        pragmas = parse_pragmas((FIXTURES / name).read_text())
        flagged = [f for f in findings if "suppressed" in f.message]
        assert flagged, name
        assert all(suppressed(f, pragmas) for f in flagged), name
        survivors = [f for f in findings if not suppressed(f, pragmas)]
        assert not [f for f in survivors if "suppressed" in f.message]


def test_atomicity_uses_cross_module_spawn_names():
    source = ("def ticker(node):\n"
              "    epoch = node.epoch\n"
              "    yield node.sim.timeout(1.0)\n"
              "    node.seal(epoch)\n")
    assert not lint_atomicity(source, "mod.py")
    flagged = lint_atomicity(source, "mod.py", spawned={"ticker"})
    assert [f.rule for f in flagged] == ["stale-guard-across-yield"]


def test_guard_attr_list_is_configurable():
    source = ("def worker(self):\n"
              "    owner = self.shard_owner\n"
              "    yield self.sim.timeout(1.0)\n"
              "    self.apply(owner)\n")
    assert not lint_atomicity(source, "mod.py", spawned={"worker"})
    flagged = lint_atomicity(source, "mod.py", spawned={"worker"},
                             guard_attrs={"shard_owner"})
    assert [f.rule for f in flagged] == ["stale-guard-across-yield"]
