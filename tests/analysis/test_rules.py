"""Unit tests for the determinism linter rules, over fixture snippets.

Each fixture file exercises one rule three ways: positive (the hazard
is flagged), suppressed (a pragma silences it), and clean (correct
idioms stay green).
"""

from pathlib import Path

from repro.analysis import lint_source, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, **kwargs):
    path = FIXTURES / name
    return lint_source(path.read_text(), name, **kwargs)


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# nondet-import
# ---------------------------------------------------------------------------

def test_nondet_import_flags_every_entropy_source():
    findings = lint_fixture("hazard_nondet_import.py")
    nondet = [f for f in findings if f.rule == "nondet-import"]
    messages = " ".join(f.message for f in nondet)
    assert len(nondet) == 6   # 3 imports + 3 hazardous calls
    assert "'random'" in messages
    assert "'uuid'" in messages
    assert "'datetime'" in messages
    assert "datetime.now()" in messages
    assert "os.urandom()" in messages
    assert "uuid.uuid4()" in messages


def test_nondet_import_reports_file_and_line():
    findings = lint_fixture("hazard_nondet_import.py")
    first = [f for f in findings if "'random'" in f.message][0]
    assert first.path == "hazard_nondet_import.py"
    assert first.line == 3
    assert first.code.startswith("import random")


# ---------------------------------------------------------------------------
# set-iteration
# ---------------------------------------------------------------------------

def test_set_iteration_flags_for_listcomp_and_materialization():
    findings = lint_fixture("hazard_set_iteration.py")
    flagged = [f for f in findings if f.rule == "set-iteration"]
    assert len(flagged) == 4  # comp, list(), for, module-level for


def test_set_iteration_allows_sorted():
    findings = lint_fixture("hazard_set_iteration.py")
    sorted_ok_line = [i for i, text in enumerate(
        (FIXTURES / "hazard_set_iteration.py").read_text().splitlines(),
        start=1) if "sorted_ok" in text][0]
    assert all(f.line < sorted_ok_line or f.line > sorted_ok_line + 1
               for f in findings)


# ---------------------------------------------------------------------------
# dict-order
# ---------------------------------------------------------------------------

def test_dict_order_flags_only_scheduling_visible_loops():
    findings = lint_fixture("hazard_dict_order.py")
    flagged = [f for f in findings if f.rule == "dict-order"]
    assert len(flagged) == 2       # crash_all + rebalance
    codes = " ".join(f.code for f in flagged)
    assert "nodes.items()" in codes
    assert "nodes.values()" in codes


def test_dict_order_ignores_pure_formatting_and_sorted():
    findings = lint_fixture("hazard_dict_order.py")
    for f in findings:
        assert "report" not in f.code
        assert "sorted" not in f.code


# ---------------------------------------------------------------------------
# id-hash-order / real-io
# ---------------------------------------------------------------------------

def test_id_hash_order_flags_sort_keys():
    findings = lint_fixture("hazard_id_hash.py")
    flagged = [f for f in findings if f.rule == "id-hash-order"]
    assert len(flagged) == 3


def test_real_io_flags_threading_open_print():
    findings = lint_fixture("hazard_real_io.py")
    flagged = [f for f in findings if f.rule == "real-io"]
    assert len(flagged) == 3


def test_real_io_not_applied_outside_sim_visible_code():
    findings = lint_fixture("hazard_real_io.py", sim_visible=False)
    assert not [f for f in findings if f.rule == "real-io"]


# ---------------------------------------------------------------------------
# yield-discipline
# ---------------------------------------------------------------------------

def test_yield_discipline_flags_literal_yields_in_process_bodies():
    findings = lint_fixture("hazard_yield.py")
    flagged = [f for f in findings if f.rule == "yield-discipline"]
    assert len(flagged) == 3
    messages = " ".join(f.message for f in flagged)
    assert "bare yield" in messages
    assert "'worker'" in messages
    assert "'helper'" in messages      # reached via yield-from closure


def test_yield_discipline_ignores_plain_iterators():
    findings = lint_fixture("hazard_yield.py")
    assert not [f for f in findings if "plain_iterator" in f.message]


def test_yield_discipline_uses_cross_module_spawn_names():
    # A generator spawned from *another* module is still a process.
    source = "def ticker(sim):\n    yield None\n"
    assert not lint_source(source, "mod.py")
    flagged = lint_source(source, "mod.py", spawned={"ticker"})
    assert [f.rule for f in flagged] == ["yield-discipline"]


# ---------------------------------------------------------------------------
# pragmas, clean file, whole-tree runner
# ---------------------------------------------------------------------------

def test_clean_fixture_is_clean():
    assert lint_fixture("clean.py") == []


def test_runner_applies_pragma_suppression(tmp_path):
    result = run_lint(FIXTURES, protocols=())
    suppressed_paths = {f.path for f in result.pragma_suppressed}
    assert "hazard_suppressed.py" in suppressed_paths
    new_paths = {f.path for f in result.findings}
    assert "hazard_suppressed.py" not in new_paths
    assert "clean.py" not in new_paths


def test_runner_baseline_roundtrip(tmp_path):
    from repro.analysis import Baseline

    first = run_lint(FIXTURES, protocols=())
    assert first.findings
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.all_raw()).dump(baseline_path)
    second = run_lint(FIXTURES, baseline_path=baseline_path, protocols=())
    assert second.ok
    assert len(second.baselined) == len(first.findings)


def test_baseline_matches_by_code_not_line(tmp_path):
    from repro.analysis import Baseline, Finding

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings([Finding(
        rule="nondet-import", path="mod.py", line=99,
        message="x", code="import random")]).dump(baseline_path)
    src_dir = tmp_path / "tree"
    src_dir.mkdir()
    (src_dir / "mod.py").write_text(
        "# a comment shifting the line number\nimport random\n")
    result = run_lint(src_dir, baseline_path=baseline_path, protocols=())
    assert result.ok
    assert len(result.baselined) == 1
