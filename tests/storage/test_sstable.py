"""Tests for SSTables, bloom filters, and compaction."""

from repro.storage.bloom import BloomFilter
from repro.storage.compaction import SizeTieredPolicy, compact
from repro.storage.lsn import LSN
from repro.storage.memtable import Memtable
from repro.storage.records import WriteRecord
from repro.storage.sstable import SSTable


def wrec(seq, key=b"k", col=b"c", value=b"v", tombstone=False):
    return WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=key, colname=col,
                       value=value if not tombstone else None,
                       version=seq, tombstone=tombstone)


def table_from(*records):
    mt = Memtable()
    for rec in records:
        mt.apply(rec)
    return SSTable.from_memtable(mt)


def test_from_memtable_preserves_cells_and_lsn_tags():
    table = table_from(wrec(3, key=b"a"), wrec(7, key=b"b"))
    assert table.get(b"a", b"c").version == 3
    assert table.min_lsn == LSN(1, 3)
    assert table.max_lsn == LSN(1, 7)


def test_get_missing_returns_none():
    table = table_from(wrec(1, key=b"a"))
    assert table.get(b"zzz", b"c") is None
    assert table.get(b"a", b"other") is None


def test_row_returns_all_columns():
    table = table_from(wrec(1, col=b"c1"), wrec(2, col=b"c2"))
    assert set(table.row(b"k")) == {b"c1", b"c2"}


def test_overlaps_lsn_range():
    table = table_from(wrec(5), wrec(9, key=b"b"))
    assert table.overlaps_lsn_range(LSN(1, 8))
    assert not table.overlaps_lsn_range(LSN(1, 9))


def test_keys_sorted_unique():
    table = table_from(wrec(1, key=b"b"), wrec(2, key=b"a"),
                       wrec(3, key=b"b", col=b"c2"))
    assert table.keys() == [b"a", b"b"]


def test_bloom_filter_no_false_negatives():
    bloom = BloomFilter(expected_items=100)
    items = [f"item-{i}".encode() for i in range(100)]
    for item in items:
        bloom.add(item)
    assert all(bloom.might_contain(item) for item in items)


def test_bloom_filter_rejects_most_absent_items():
    bloom = BloomFilter(expected_items=200, false_positive_rate=0.01)
    for i in range(200):
        bloom.add(f"present-{i}".encode())
    false_positives = sum(
        bloom.might_contain(f"absent-{i}".encode()) for i in range(1000))
    assert false_positives < 50  # generous bound on 1% target


def test_compact_newest_cell_wins():
    old = table_from(wrec(1, value=b"old"))
    new = table_from(wrec(2, value=b"new"))
    merged = compact([old, new])
    assert merged.get(b"k", b"c").value == b"new"
    assert merged.min_lsn == LSN(1, 1)
    assert merged.max_lsn == LSN(1, 2)


def test_compact_keeps_tombstones_on_partial_merge():
    t1 = table_from(wrec(1, value=b"x"))
    t2 = table_from(wrec(2, tombstone=True))
    merged = compact([t1, t2], drop_tombstones=False)
    assert merged.get(b"k", b"c").tombstone


def test_full_compaction_drops_tombstones():
    t1 = table_from(wrec(1, value=b"x"))
    t2 = table_from(wrec(2, tombstone=True))
    merged = compact([t1, t2], drop_tombstones=True)
    assert merged.get(b"k", b"c") is None
    assert len(merged) == 0


def test_size_tiered_policy_needs_fanin_tables():
    policy = SizeTieredPolicy(fanin=4)
    tables = [table_from(wrec(i, key=b"k%d" % i)) for i in range(1, 4)]
    assert policy.pick(tables) == []
    tables.append(table_from(wrec(4, key=b"k4")))
    assert len(policy.pick(tables)) == 4


def test_size_tiered_policy_groups_similar_sizes():
    policy = SizeTieredPolicy(fanin=2, bucket_ratio=2.0)
    small1 = table_from(wrec(1, value=b"x"))
    small2 = table_from(wrec(2, key=b"j", value=b"y"))
    huge = table_from(wrec(3, key=b"h", value=b"z" * 100_000))
    picked = policy.pick([huge, small1, small2])
    assert huge not in picked
    assert len(picked) == 2
