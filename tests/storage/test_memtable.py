"""Tests for the memtable."""

from repro.storage.lsn import LSN
from repro.storage.memtable import Memtable, lsn_order, timestamp_order
from repro.storage.records import WriteRecord


def wrec(seq, key=b"k", col=b"c", value=b"v", version=None, ts=0.0,
         tombstone=False):
    return WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=key, colname=col,
                       value=value, version=version if version else seq,
                       timestamp=ts, tombstone=tombstone)


def test_apply_and_get():
    mt = Memtable()
    mt.apply(wrec(1, value=b"hello"))
    cell = mt.get(b"k", b"c")
    assert cell.value == b"hello"
    assert cell.version == 1


def test_newer_lsn_wins():
    mt = Memtable()
    mt.apply(wrec(1, value=b"old"))
    mt.apply(wrec(2, value=b"new"))
    assert mt.get(b"k", b"c").value == b"new"


def test_reapply_older_is_idempotent():
    mt = Memtable()
    mt.apply(wrec(2, value=b"new"))
    assert not mt.apply(wrec(1, value=b"old"))  # local recovery re-apply
    assert mt.get(b"k", b"c").value == b"new"


def test_timestamp_order_for_baseline():
    mt = Memtable(order=timestamp_order)
    mt.apply(wrec(5, value=b"early", ts=1.0))
    mt.apply(wrec(2, value=b"late", ts=2.0))  # lower LSN, later timestamp
    assert mt.get(b"k", b"c").value == b"late"


def test_tombstone_is_stored():
    mt = Memtable()
    mt.apply(wrec(1, value=b"x"))
    mt.apply(wrec(2, value=None, tombstone=True))
    cell = mt.get(b"k", b"c")
    assert cell.tombstone


def test_lsn_bounds_track_min_and_max():
    mt = Memtable()
    mt.apply(wrec(5))
    mt.apply(wrec(3, key=b"other"))
    mt.apply(wrec(9, key=b"third"))
    assert mt.min_lsn == LSN(1, 3)
    assert mt.max_lsn == LSN(1, 9)


def test_bytes_used_accounts_for_replacement():
    mt = Memtable()
    mt.apply(wrec(1, value=b"x" * 100))
    after_first = mt.bytes_used
    mt.apply(wrec(2, value=b"y" * 200))
    assert mt.bytes_used == after_first + 100


def test_sorted_items_are_key_then_column_ordered():
    mt = Memtable()
    mt.apply(wrec(1, key=b"b", col=b"z"))
    mt.apply(wrec(2, key=b"a", col=b"y"))
    mt.apply(wrec(3, key=b"b", col=b"a"))
    items = [(k, c) for k, c, _ in mt.sorted_items()]
    assert items == [(b"a", b"y"), (b"b", b"a"), (b"b", b"z")]


def test_get_row_returns_all_columns():
    mt = Memtable()
    mt.apply(wrec(1, col=b"c1", value=b"v1"))
    mt.apply(wrec(2, col=b"c2", value=b"v2"))
    row = mt.get_row(b"k")
    assert set(row) == {b"c1", b"c2"}


def test_len_counts_cells():
    mt = Memtable()
    mt.apply(wrec(1, key=b"a"))
    mt.apply(wrec(2, key=b"b"))
    mt.apply(wrec(3, key=b"b", col=b"c2"))
    assert len(mt) == 3
    assert not mt.is_empty
