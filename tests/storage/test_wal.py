"""Tests for the shared write-ahead log: durability, skipped LSNs, GC."""

import pytest

from repro.sim.disk import DiskProfile, LogDevice
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.lsn import LSN
from repro.storage.records import (CatchupMarker, CheckpointRecord,
                                   CommitMarker, WriteRecord)
from repro.storage.wal import DuplicateLSN, SharedLog, StaleLSN


def wrec(epoch, seq, cohort=0, value=b"v"):
    return WriteRecord(lsn=LSN(epoch, seq), cohort_id=cohort, key=b"k",
                       colname=b"c", value=value, version=seq)


def make_wal_with_device():
    sim = Simulator()
    device = LogDevice(sim, RngRegistry(5), "log",
                       profile=DiskProfile("flat", 1e-3, 1e-3,
                                           transfer_rate=0))
    return sim, SharedLog(device)


def test_append_and_query_last_lsn():
    log = SharedLog()
    log.append(wrec(1, 1))
    log.append(wrec(1, 2))
    assert log.last_lsn(0) == LSN(1, 2)
    assert log.last_lsn(99) == LSN.zero()


def test_duplicate_lsn_rejected():
    log = SharedLog()
    log.append(wrec(1, 1))
    with pytest.raises(DuplicateLSN):
        log.append(wrec(1, 1))


def test_stale_lsn_rejected():
    log = SharedLog()
    log.append(wrec(1, 5))
    with pytest.raises(StaleLSN):
        log.append(wrec(1, 3))


def test_cohorts_have_independent_lsn_streams():
    log = SharedLog()
    log.append(wrec(1, 5, cohort=0))
    log.append(wrec(1, 1, cohort=1))  # fine: different logical stream
    assert log.last_lsn(0) == LSN(1, 5)
    assert log.last_lsn(1) == LSN(1, 1)


def test_commit_marker_advances_last_committed():
    log = SharedLog()
    log.append(wrec(1, 1))
    log.append(wrec(1, 2))
    log.append(CommitMarker(lsn=LSN(1, 2), cohort_id=0,
                            committed_lsn=LSN(1, 2)), force=False)
    assert log.last_committed_lsn(0) == LSN(1, 2)


def test_checkpoint_record_advances_checkpoint():
    log = SharedLog()
    log.append(CheckpointRecord(lsn=LSN(1, 9), cohort_id=0,
                                checkpoint_lsn=LSN(1, 7)), force=False)
    assert log.checkpoint_lsn(0) == LSN(1, 7)


def test_write_records_range_query():
    log = SharedLog()
    for seq in range(1, 6):
        log.append(wrec(1, seq))
    recs = log.write_records(0, after=LSN(1, 2), upto=LSN(1, 4))
    assert [r.lsn.seq for r in recs] == [3, 4]


def test_skipped_lsns_are_invisible_by_default():
    log = SharedLog()
    for seq in range(1, 4):
        log.append(wrec(1, seq))
    log.add_skipped(0, [LSN(1, 3)])
    assert log.last_lsn(0) == LSN(1, 2)
    assert [r.lsn.seq for r in log.write_records(0)] == [1, 2]
    assert [r.lsn.seq
            for r in log.write_records(0, include_skipped=True)] == [1, 2, 3]
    assert log.is_skipped(0, LSN(1, 3))


def test_append_after_logical_truncation_uses_new_epoch():
    # Appendix B, node C: 1.22 is skipped, then epoch-2 records arrive.
    log = SharedLog()
    for seq in range(1, 23):
        log.append(wrec(1, seq))
    log.add_skipped(0, [LSN(1, 22)])
    assert log.last_lsn(0) == LSN(1, 21)
    log.append(wrec(2, 22))
    assert log.last_lsn(0) == LSN(2, 22)


def test_crash_loses_volatile_records():
    sim, log = make_wal_with_device()
    ev1 = log.append(wrec(1, 1))
    sim.run()  # first record becomes durable
    assert ev1.ok
    log.append(wrec(1, 2))  # never forced to completion
    log.device.crash()
    log.crash()
    assert log.last_lsn(0) == LSN(1, 1)
    assert not log.contains(0, LSN(1, 2))


def test_nonforced_marker_becomes_durable_with_later_force():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 1))
    sim.run()
    log.append(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                            committed_lsn=LSN(1, 1)), force=False)
    log.append(wrec(1, 2))  # the force that carries the marker down
    sim.run()
    log.crash()
    assert log.last_committed_lsn(0) == LSN(1, 1)


def test_nonforced_marker_lost_without_later_force():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 1))
    sim.run()
    log.append(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                            committed_lsn=LSN(1, 1)), force=False)
    log.device.crash()
    log.crash()
    assert log.last_committed_lsn(0) == LSN.zero()


def test_crash_recomputes_committed_from_durable_prefix():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 1))
    log.append(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                            committed_lsn=LSN(1, 1)), force=False)
    log.append(wrec(1, 2))
    sim.run()  # everything durable now
    log.append(CommitMarker(lsn=LSN(1, 2), cohort_id=0,
                            committed_lsn=LSN(1, 2)), force=False)
    log.device.crash()
    log.crash()
    # The second marker was never carried down by a force.
    assert log.last_committed_lsn(0) == LSN(1, 1)
    assert log.last_lsn(0) == LSN(1, 2)


def test_gc_through_drops_records_and_skips():
    log = SharedLog()
    for seq in range(1, 6):
        log.append(wrec(1, seq))
    log.add_skipped(0, [LSN(1, 2), LSN(1, 5)])
    dropped = log.gc_through(0, LSN(1, 3))
    assert dropped == 3
    assert not log.can_serve_after(0, LSN(1, 2))
    assert log.can_serve_after(0, LSN(1, 3))
    assert log.skipped_lsns(0) == {LSN(1, 5)}
    assert [r.lsn.seq for r in log.write_records(0)] == [4]


def test_last_lsn_after_full_gc_is_horizon():
    log = SharedLog()
    for seq in range(1, 4):
        log.append(wrec(1, seq))
    log.gc_through(0, LSN(1, 3))
    assert log.last_lsn(0) == LSN(1, 3)


def test_wipe_clears_everything():
    log = SharedLog()
    log.append(wrec(1, 1))
    log.wipe()
    assert log.last_lsn(0) == LSN.zero()
    assert log.write_records(0) == []


def test_append_batch_all_or_nothing_durability():
    sim, log = make_wal_with_device()
    ev = log.append_batch([wrec(1, 1), wrec(1, 2), wrec(1, 3)])
    # Crash before the single batch force completes: nothing survives.
    sim.run(until=0.5e-3)
    log.device.crash()
    log.crash()
    assert not ev.triggered
    assert log.last_lsn(0) == LSN.zero()
    assert log.write_records(0) == []


def test_append_batch_durable_together():
    sim, log = make_wal_with_device()
    ev = log.append_batch([wrec(1, 1), wrec(1, 2)])
    sim.run()
    assert ev.ok
    log.crash()  # nothing volatile: both survived
    assert [r.lsn.seq for r in log.write_records(0)] == [1, 2]


def test_append_batch_validates_like_append():
    log = SharedLog()
    log.append(wrec(1, 5))
    with pytest.raises(StaleLSN):
        log.append_batch([wrec(1, 3)])
    with pytest.raises(DuplicateLSN):
        log.append_batch([wrec(1, 6), wrec(1, 6)])
    with pytest.raises(TypeError):
        log.append_batch([CommitMarker(lsn=LSN(1, 9), cohort_id=0,
                                       committed_lsn=LSN(1, 9))])


def test_append_batch_empty_is_noop():
    log = SharedLog()
    assert log.append_batch([]) is None


# ---------------------------------------------------------------------------
# Catch-up markers and marker GC (chunked catch-up, §6.1)
# ---------------------------------------------------------------------------

def test_catchup_marker_advances_floor_and_survives_crash():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 3))
    log.append(CatchupMarker(lsn=LSN(1, 3), cohort_id=0,
                             floor=LSN(1, 3)), force=True)
    sim.run()
    assert log.catchup_floor(0) == LSN(1, 3)
    log.device.crash()
    log.crash()
    # The forced marker is the durable resume point.
    assert log.catchup_floor(0) == LSN(1, 3)


def test_nonforced_catchup_marker_lost_without_later_force():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 1))
    sim.run()
    log.append(CatchupMarker(lsn=LSN(1, 1), cohort_id=0,
                             floor=LSN(1, 1)), force=False)
    log.device.crash()
    log.crash()
    assert log.catchup_floor(0) == LSN.zero()


def test_marker_gc_bounds_marker_count():
    # Marker growth is bounded by GC, not history: after every log roll
    # only the maximal durable marker per (cohort, kind) survives.
    log = SharedLog()
    for seq in range(1, 301):
        log.append(wrec(1, seq))
        lsn = LSN(1, seq)
        log.append(CommitMarker(lsn=lsn, cohort_id=0, committed_lsn=lsn),
                   force=False)
        log.append(CheckpointRecord(lsn=lsn, cohort_id=0,
                                    checkpoint_lsn=lsn), force=False)
        log.append(CatchupMarker(lsn=lsn, cohort_id=0, floor=lsn),
                   force=False)
        if seq % 25 == 0:
            log.gc_through(0, lsn)
    assert log.marker_count() <= 3 + 3 * 25
    log.gc_through(0, LSN(1, 300))
    assert log.marker_count() == 3      # one survivor per kind
    log.crash()                          # deviceless: all durable
    assert log.last_committed_lsn(0) == LSN(1, 300)
    assert log.checkpoint_lsn(0) == LSN(1, 300)
    assert log.catchup_floor(0) == LSN(1, 300)


def test_marker_gc_never_drops_durable_for_volatile_superseder():
    sim, log = make_wal_with_device()
    log.append(wrec(1, 1))
    log.append(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                            committed_lsn=LSN(1, 1)), force=True)
    sim.run()
    # A newer marker exists but is volatile: GC must keep the durable
    # one — dropping it would lose both states across a crash.
    log.append(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                            committed_lsn=LSN(1, 2)), force=False)
    log.gc_through(0, LSN(1, 1))
    log.device.crash()
    log.crash()
    assert log.last_committed_lsn(0) == LSN(1, 1)
