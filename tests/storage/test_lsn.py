"""Tests for epoch.seq LSNs."""

import pytest

from repro.storage.lsn import LSN, SEQ_BITS


def test_ordering_is_epoch_major():
    assert LSN(1, 22) < LSN(2, 22)
    assert LSN(1, 21) < LSN(1, 22)
    assert LSN(2, 1) > LSN(1, 999)


def test_next_increments_sequence():
    assert LSN(1, 20).next() == LSN(1, 21)


def test_next_epoch_keeps_sequence():
    # Appendix B: epoch 1 ends at 1.21, epoch 2 starts issuing at 2.22.
    lsn = LSN(1, 21)
    start = lsn.next_epoch()
    assert start == LSN(2, 21)
    assert start.next() == LSN(2, 22)


def test_int_packing_round_trip():
    lsn = LSN(3, 123456)
    assert LSN.from_int(lsn.to_int()) == lsn


def test_int_packing_preserves_order():
    a, b = LSN(1, (1 << SEQ_BITS) - 1), LSN(2, 0)
    assert a < b
    assert a.to_int() < b.to_int()


def test_zero_is_minimum():
    assert LSN.zero() < LSN(0, 1)
    assert LSN.zero() < LSN(1, 0)


def test_str_format():
    assert str(LSN(2, 30)) == "2.30"


def test_with_epoch_cannot_decrease():
    with pytest.raises(ValueError):
        LSN(5, 1).with_epoch(4)


def test_seq_overflow_detected():
    with pytest.raises(OverflowError):
        LSN(0, (1 << SEQ_BITS) - 1).next()
