"""Tests for the per-replica storage engine."""

import pytest

from repro.storage.engine import StorageEngine
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord
from repro.storage.memtable import Memtable
from repro.storage.sstable import SSTable


def wrec(seq, key=b"k", col=b"c", value=b"v", epoch=1, tombstone=False):
    return WriteRecord(lsn=LSN(epoch, seq), cohort_id=0, key=key,
                       colname=col, value=None if tombstone else value,
                       version=seq, tombstone=tombstone)


def test_apply_and_get():
    eng = StorageEngine(0)
    eng.apply(wrec(1, value=b"hello"))
    assert eng.get(b"k", b"c").value == b"hello"
    assert eng.applied_lsn == LSN(1, 1)


def test_wrong_cohort_rejected():
    eng = StorageEngine(0)
    bad = WriteRecord(lsn=LSN(1, 1), cohort_id=5, key=b"k", colname=b"c",
                      value=b"v", version=1)
    with pytest.raises(ValueError):
        eng.apply(bad)


def test_flush_moves_memtable_to_sstable_and_checkpoints():
    eng = StorageEngine(0)
    eng.apply(wrec(1))
    eng.apply(wrec(2, key=b"k2"))
    ckpt = eng.flush()
    assert ckpt == LSN(1, 2)
    assert eng.checkpoint_lsn == LSN(1, 2)
    assert eng.memtable.is_empty
    assert len(eng.sstables) == 1
    assert eng.get(b"k", b"c") is not None  # still readable post-flush


def test_flush_empty_returns_none():
    eng = StorageEngine(0)
    assert eng.flush() is None


def test_read_prefers_newest_across_tables_and_memtable():
    eng = StorageEngine(0)
    eng.apply(wrec(1, value=b"v1"))
    eng.flush()
    eng.apply(wrec(2, value=b"v2"))
    eng.flush()
    eng.apply(wrec(3, value=b"v3"))
    assert eng.get(b"k", b"c").value == b"v3"


def test_get_row_merges_columns():
    eng = StorageEngine(0)
    eng.apply(wrec(1, col=b"c1", value=b"a"))
    eng.flush()
    eng.apply(wrec(2, col=b"c2", value=b"b"))
    row = eng.get_row(b"k")
    assert row[b"c1"].value == b"a"
    assert row[b"c2"].value == b"b"


def test_version_of_missing_and_tombstoned_is_zero():
    eng = StorageEngine(0)
    assert eng.version_of(b"k", b"c") == 0
    eng.apply(wrec(1, value=b"x"))
    assert eng.version_of(b"k", b"c") == 1
    eng.apply(wrec(2, tombstone=True))
    assert eng.version_of(b"k", b"c") == 0


def test_needs_flush_threshold():
    eng = StorageEngine(0, flush_threshold_bytes=200)
    eng.apply(wrec(1, value=b"x" * 500))
    assert eng.needs_flush()


def test_crash_loses_memtable_keeps_sstables():
    eng = StorageEngine(0)
    eng.apply(wrec(1, value=b"flushed"))
    eng.flush()
    eng.apply(wrec(2, value=b"volatile", key=b"k2"))
    eng.crash()
    assert eng.get(b"k", b"c").value == b"flushed"
    assert eng.get(b"k2", b"c") is None
    assert eng.applied_lsn == eng.checkpoint_lsn == LSN(1, 1)


def test_wipe_loses_everything():
    eng = StorageEngine(0)
    eng.apply(wrec(1))
    eng.flush()
    eng.wipe()
    assert eng.get(b"k", b"c") is None
    assert eng.checkpoint_lsn == LSN.zero()


def test_sstables_with_writes_after_selects_by_max_lsn():
    eng = StorageEngine(0)
    eng.apply(wrec(1))
    eng.flush()                       # table with max 1.1
    eng.apply(wrec(5, key=b"k5"))
    eng.flush()                       # table with max 1.5
    needed = eng.sstables_with_writes_after(LSN(1, 1))
    assert len(needed) == 1
    assert needed[0].max_lsn == LSN(1, 5)


def test_ingest_sstable_advances_state():
    eng = StorageEngine(0)
    mt = Memtable()
    mt.apply(wrec(7, key=b"shipped"))
    eng.ingest_sstable(SSTable.from_memtable(mt))
    assert eng.get(b"shipped", b"c") is not None
    assert eng.applied_lsn == LSN(1, 7)
    assert eng.checkpoint_lsn == LSN(1, 7)


def test_compaction_triggers_with_enough_tables():
    eng = StorageEngine(0)
    for i in range(1, 6):
        eng.apply(wrec(i, key=b"key%d" % i))
        eng.flush()
    # size-tiered fanin=4 should have fired at least once
    assert eng.compactions >= 1
    assert len(eng.sstables) < 5
    for i in range(1, 6):
        assert eng.get(b"key%d" % i, b"c") is not None


def test_engine_compaction_preserves_tombstones():
    """Catch-up can ship SSTables to stale followers, so automatic
    compactions must never drop tombstones (see engine.maybe_compact)."""
    eng = StorageEngine(0)
    eng.apply(wrec(1, value=b"x"))
    eng.flush()
    eng.apply(wrec(2, tombstone=True))
    eng.flush()
    for i in range(3, 7):
        eng.apply(wrec(i, key=b"other%d" % i))
        eng.flush()
    assert eng.compactions >= 1
    cell = eng.get(b"k", b"c")
    assert cell is not None and cell.tombstone


def test_purge_tombstones_is_explicit():
    eng = StorageEngine(0)
    eng.apply(wrec(1, value=b"x"))
    eng.apply(wrec(2, tombstone=True))
    eng.flush()
    eng.purge_tombstones()
    assert eng.get(b"k", b"c") is None
    assert len(eng.sstables) == 1
