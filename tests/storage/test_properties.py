"""Property-based tests (hypothesis) on storage invariants."""

from hypothesis import given, settings, strategies as st

from repro.storage.bloom import BloomFilter
from repro.storage.compaction import compact
from repro.storage.engine import StorageEngine
from repro.storage.lsn import LSN, SEQ_BITS
from repro.storage.memtable import Memtable
from repro.storage.records import (CommitMarker, WriteRecord, decode_record,
                                   encode_record)
from repro.storage.sstable import SSTable
from repro.storage.wal import SharedLog

# -- strategies -------------------------------------------------------------

lsns = st.builds(LSN,
                 epoch=st.integers(min_value=0, max_value=100),
                 seq=st.integers(min_value=0, max_value=(1 << 32)))

small_bytes = st.binary(min_size=0, max_size=32)
nonempty_bytes = st.binary(min_size=1, max_size=16)

write_records = st.builds(
    WriteRecord,
    lsn=lsns,
    cohort_id=st.integers(min_value=0, max_value=20),
    key=nonempty_bytes,
    colname=nonempty_bytes,
    value=st.one_of(st.none(), small_bytes),
    version=st.integers(min_value=0, max_value=1 << 30),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    tombstone=st.booleans(),
)


# -- LSN --------------------------------------------------------------------

@given(lsns, lsns)
def test_lsn_int_packing_is_order_isomorphic(a, b):
    assert (a < b) == (a.to_int() < b.to_int())
    assert (a == b) == (a.to_int() == b.to_int())


@given(lsns)
def test_lsn_round_trip(lsn):
    assert LSN.from_int(lsn.to_int()) == lsn


@given(lsns)
def test_lsn_next_is_strictly_greater(lsn):
    assert lsn.next() > lsn
    assert lsn.next_epoch() > lsn or lsn.next_epoch().epoch > lsn.epoch


# -- record serialization ---------------------------------------------------

@given(write_records)
def test_write_record_serialization_round_trips(record):
    encoded = encode_record(record)
    assert decode_record(encoded) == record
    assert len(encoded) == record.encoded_size()


# -- memtable / engine -----------------------------------------------------

@given(st.lists(write_records.map(
    lambda r: WriteRecord(lsn=r.lsn, cohort_id=0, key=r.key,
                          colname=r.colname, value=r.value,
                          version=r.version, timestamp=r.timestamp,
                          tombstone=r.tombstone)),
    min_size=0, max_size=40))
def test_memtable_keeps_max_lsn_cell_per_column(records):
    mt = Memtable()
    for record in records:
        mt.apply(record)
    expected = {}
    for record in records:
        cur = expected.get((record.key, record.colname))
        if cur is None or (record.lsn, record.timestamp,
                           record.version) > (cur.lsn, cur.timestamp,
                                              cur.version):
            expected[(record.key, record.colname)] = record
    for (key, col), record in expected.items():
        cell = mt.get(key, col)
        assert cell is not None
        assert cell.lsn == record.lsn


@given(st.lists(write_records, min_size=0, max_size=40, unique_by=lambda
                r: r.lsn),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40)
def test_engine_reads_unaffected_by_flush_boundaries(records, flush_every):
    """Reads must be identical no matter where flushes happened.

    LSNs are unique (as the cohort protocol guarantees) and records are
    rebased to one cohort.
    """
    records = [WriteRecord(lsn=r.lsn, cohort_id=0, key=r.key,
                           colname=r.colname, value=r.value,
                           version=r.version, timestamp=r.timestamp,
                           tombstone=r.tombstone) for r in records]
    plain = StorageEngine(0)
    flushy = StorageEngine(0)
    for i, record in enumerate(records):
        plain.apply(record)
        flushy.apply(record)
        if i % flush_every == flush_every - 1:
            flushy.flush()
    for record in records:
        a = plain.get(record.key, record.colname)
        b = flushy.get(record.key, record.colname)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.lsn == b.lsn
            assert a.value == b.value
            assert a.tombstone == b.tombstone


@given(st.lists(st.tuples(nonempty_bytes, small_bytes),
                min_size=1, max_size=30))
def test_compaction_preserves_latest_values(items):
    """Split writes across several tables; the merge keeps the newest."""
    mt_all = Memtable()
    tables = []
    mt = Memtable()
    for seq, (key, value) in enumerate(items, start=1):
        record = WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=key,
                             colname=b"c", value=value, version=seq)
        mt_all.apply(record)
        mt.apply(record)
        if seq % 7 == 0:
            tables.append(SSTable.from_memtable(mt))
            mt = Memtable()
    if len(mt._rows):
        tables.append(SSTable.from_memtable(mt))
    merged = compact(tables)
    reference = SSTable.from_memtable(mt_all)
    for key, _value in items:
        a = merged.get(key, b"c")
        b = reference.get(key, b"c")
        assert a is not None and b is not None
        assert a.lsn == b.lsn and a.value == b.value


# -- bloom filter ----------------------------------------------------------

@given(st.sets(st.binary(min_size=1, max_size=24), min_size=1,
               max_size=200))
def test_bloom_never_false_negative(items):
    bloom = BloomFilter(expected_items=len(items))
    for item in items:
        bloom.add(item)
    assert all(bloom.might_contain(item) for item in items)


# -- WAL -----------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=60), min_size=1,
                max_size=30, unique=True),
       st.sets(st.integers(min_value=1, max_value=60), max_size=10))
def test_wal_skipped_lsns_never_returned(seqs, skipped):
    log = SharedLog()
    for seq in sorted(seqs):
        log.append(WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=b"k",
                               colname=b"c", value=b"v", version=seq))
    log.add_skipped(0, [LSN(1, s) for s in skipped])
    visible = {r.lsn.seq for r in log.write_records(0)}
    assert visible == set(seqs) - skipped
    last = log.last_lsn(0)
    assert last.seq in (set(seqs) - skipped) or last == LSN.zero()


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=100),
                          st.booleans()),
                min_size=1, max_size=40))
def test_wal_range_queries_are_consistent(entries):
    """write_records(after, upto) == filter of write_records()."""
    log = SharedLog()
    seen = set()
    appended = []
    for seq, _flag in entries:
        if seq in seen:
            continue
        seen.add(seq)
        appended.append(seq)
    for seq in sorted(appended):
        log.append(WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=b"k",
                               colname=b"c", value=b"v", version=seq))
    everything = log.write_records(0)
    lo, hi = LSN(1, 20), LSN(1, 80)
    ranged = log.write_records(0, after=lo, upto=hi)
    assert ranged == [r for r in everything if lo < r.lsn <= hi]
