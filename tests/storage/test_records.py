"""Tests for log-record serialization."""

import pytest

from repro.storage.lsn import LSN
from repro.storage.records import (CheckpointRecord, CommitMarker,
                                   WriteRecord, decode_record, encode_record)


def test_write_record_round_trip():
    rec = WriteRecord(lsn=LSN(2, 30), cohort_id=7, key=b"user:42",
                      colname=b"email", value=b"x@example.com",
                      version=3, timestamp=1.25, tombstone=False)
    decoded = decode_record(encode_record(rec))
    assert decoded == rec


def test_tombstone_round_trip():
    rec = WriteRecord(lsn=LSN(1, 5), cohort_id=0, key=b"k", colname=b"c",
                      value=None, version=9, timestamp=2.0, tombstone=True)
    decoded = decode_record(encode_record(rec))
    assert decoded.tombstone
    assert decoded.value is None


def test_empty_value_distinct_from_none():
    rec = WriteRecord(lsn=LSN(1, 1), cohort_id=0, key=b"k", colname=b"c",
                      value=b"", version=1, timestamp=0.0)
    decoded = decode_record(encode_record(rec))
    assert decoded.value == b""


def test_commit_marker_round_trip():
    rec = CommitMarker(lsn=LSN(1, 40), cohort_id=3, committed_lsn=LSN(1, 37))
    assert decode_record(encode_record(rec)) == rec


def test_checkpoint_round_trip():
    rec = CheckpointRecord(lsn=LSN(2, 9), cohort_id=1,
                           checkpoint_lsn=LSN(1, 100))
    assert decode_record(encode_record(rec)) == rec


def test_encoded_size_matches_actual_bytes():
    rec = WriteRecord(lsn=LSN(1, 1), cohort_id=0, key=b"key",
                      colname=b"col", value=b"v" * 4096, version=1,
                      timestamp=0.5)
    assert rec.encoded_size() == len(encode_record(rec))


def test_marker_sizes_match():
    cm = CommitMarker(lsn=LSN(1, 2), cohort_id=0, committed_lsn=LSN(1, 1))
    cp = CheckpointRecord(lsn=LSN(1, 3), cohort_id=0,
                          checkpoint_lsn=LSN(1, 1))
    assert cm.encoded_size() == len(encode_record(cm))
    assert cp.encoded_size() == len(encode_record(cp))


def test_write_record_size_includes_payload():
    small = WriteRecord(lsn=LSN(1, 1), cohort_id=0, key=b"k", colname=b"c",
                        value=b"x", version=1)
    big = WriteRecord(lsn=LSN(1, 2), cohort_id=0, key=b"k", colname=b"c",
                      value=b"x" * 4096, version=1)
    assert big.encoded_size() - small.encoded_size() == 4095


def test_decode_garbage_kind_raises():
    rec = encode_record(CommitMarker(lsn=LSN(1, 1), cohort_id=0,
                                     committed_lsn=LSN(1, 1)))
    with pytest.raises(ValueError):
        decode_record(b"\xff" + rec[1:])
