"""Tests for the benchmark harness and workload definitions."""

import pytest

from repro.bench.harness import (CassandraTarget, LoadPoint,
                                 SpinnakerTarget, run_load)
from repro.bench.workload import (Workload, conditional_put_workload,
                                  mixed_workload, read_workload,
                                  write_workload)
from repro.core.partition import key_of


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(name="bad", write_fraction=1.5).validate()
    with pytest.raises(ValueError):
        Workload(name="bad", value_size=-1).validate()


def test_workload_constructors():
    r = read_workload("strong")
    assert r.write_fraction == 0.0 and r.preload_rows > 0
    w = write_workload()
    assert w.write_fraction == 1.0 and w.preload_rows == 0
    m = mixed_workload(0.3, "timeline")
    assert m.write_fraction == 0.3
    c = conditional_put_workload()
    assert c.write_mode == "conditional"


def test_run_load_produces_sane_point_spinnaker():
    target = SpinnakerTarget(n_nodes=5, seed=3)
    point = run_load(target, write_workload(), threads=4,
                     ops_per_thread=10, warmup_ops=2)
    assert isinstance(point, LoadPoint)
    assert point.ops == 4 * 10
    assert point.errors == 0
    assert point.throughput > 0
    assert 0 < point.mean_ms < 1000
    assert point.p50_ms <= point.p95_ms <= point.p99_ms


def test_run_load_produces_sane_point_cassandra():
    target = CassandraTarget(n_nodes=5, seed=3)
    point = run_load(target, write_workload("weak"), threads=4,
                     ops_per_thread=10, warmup_ops=2)
    assert point.ops == 40
    assert point.errors == 0


def test_preload_makes_reads_hit():
    target = SpinnakerTarget(n_nodes=5, seed=3)
    point = run_load(target, read_workload("strong", preload_rows=50),
                     threads=2, ops_per_thread=15, warmup_ops=2)
    assert point.ops == 30
    assert point.errors == 0
    # Every read found a value: latency then reflects real service time.
    assert point.mean_ms > 1.0


def test_preload_seeds_all_replicas():
    target = SpinnakerTarget(n_nodes=5, seed=3)
    keys = [b"row-%06d" % i for i in range(20)]
    target.preload(keys, value_size=64)
    target.start()
    part = target.cluster.partitioner
    for key in keys:
        cohort = part.cohort_for_key(key_of(key))
        for member in cohort.members:
            replica = target.cluster.nodes[member].replicas[
                cohort.cohort_id]
            cell = replica.engine.get(key, b"v")
            assert cell is not None, (key, member)
            assert cell.version == 1


def test_conditional_workload_runs_clean():
    target = SpinnakerTarget(n_nodes=5, seed=3)
    point = run_load(target, conditional_put_workload(), threads=3,
                     ops_per_thread=12, warmup_ops=2)
    assert point.errors == 0
    assert point.version_conflicts == 0  # thread-private keys: no races
    assert point.ops == 36


def test_mixed_workload_latency_between_pure_modes():
    reads = run_load(SpinnakerTarget(5, seed=3),
                     read_workload("strong", preload_rows=100),
                     threads=2, ops_per_thread=20, warmup_ops=3)
    writes = run_load(SpinnakerTarget(5, seed=3), write_workload(),
                      threads=2, ops_per_thread=20, warmup_ops=3)
    mixed = run_load(SpinnakerTarget(5, seed=3),
                     mixed_workload(0.5, "strong"),
                     threads=2, ops_per_thread=20, warmup_ops=3)
    assert reads.mean_ms < mixed.mean_ms < writes.mean_ms
