"""Tests for the Zipfian sampler and key-distribution plumbing."""

import random

import pytest

from repro.bench.workload import Workload, ZipfSampler, read_workload


def test_zipf_probabilities_sum_to_one():
    sampler = ZipfSampler(100, theta=0.99)
    total = sum(sampler.probability(i) for i in range(100))
    assert abs(total - 1.0) < 1e-9


def test_zipf_is_monotonically_skewed():
    sampler = ZipfSampler(50, theta=0.99)
    probs = [sampler.probability(i) for i in range(50)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert probs[0] > 10 * probs[-1]


def test_zipf_theta_zero_is_uniform():
    sampler = ZipfSampler(10, theta=0.0)
    for i in range(10):
        assert sampler.probability(i) == pytest.approx(0.1)


def test_zipf_sampling_matches_distribution():
    rng = random.Random(7)
    sampler = ZipfSampler(20, theta=0.99)
    counts = [0] * 20
    n = 20_000
    for _ in range(n):
        counts[sampler.sample(rng)] += 1
    # The hottest key should dominate roughly per its probability.
    expected_hot = sampler.probability(0)
    assert counts[0] / n == pytest.approx(expected_hot, rel=0.1)
    assert counts[0] > counts[10] > 0


def test_zipf_rejects_bad_params():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(5, theta=-1.0)


def test_workload_key_chooser_uniform_and_zipf():
    rng = random.Random(3)
    keys = [b"k%d" % i for i in range(30)]
    uniform = read_workload("strong")
    chooser = uniform.key_chooser(keys, rng)
    assert all(chooser() in keys for _ in range(20))

    skewed = Workload(name="skew", key_distribution="zipfian").validate()
    chooser = skewed.key_chooser(keys, rng)
    draws = [chooser() for _ in range(3000)]
    assert draws.count(keys[0]) > draws.count(keys[-1])


def test_unknown_distribution_rejected():
    with pytest.raises(ValueError):
        Workload(name="bad", key_distribution="pareto").validate()
