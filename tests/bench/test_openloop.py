"""Open-loop load generation: arrival processes, user multiplexing,
and the determinism guarantees the scale experiments lean on."""

import math

import pytest

from repro.bench.harness import SpinnakerTarget
from repro.bench.openloop import (BurstyArrivals, DiurnalArrivals,
                                  MuxedUsers, PoissonArrivals,
                                  run_open_load)
from repro.bench.workload import mixed_workload
from repro.core import SpinnakerConfig
from repro.sim.disk import DiskProfile
from repro.sim.rng import RngRegistry


def _gaps(arrival, seed, n=200):
    rng = RngRegistry(seed).stream("arrivals")
    now, out = 0.0, []
    for _ in range(n):
        gap = arrival.next_gap(rng, now)
        now += gap
        out.append(gap)
    return out


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("make", [
    lambda: PoissonArrivals(50.0),
    lambda: BurstyArrivals(50.0),
    lambda: DiurnalArrivals(50.0, period=5.0),
])
def test_arrival_sequences_deterministic_per_seed(make):
    assert _gaps(make(), seed=7) == _gaps(make(), seed=7)
    assert _gaps(make(), seed=7) != _gaps(make(), seed=8)


def test_poisson_interarrival_mean_within_tolerance():
    rate = 200.0
    gaps = _gaps(PoissonArrivals(rate), seed=3, n=20_000)
    mean = sum(gaps) / len(gaps)
    assert abs(mean - 1.0 / rate) < 0.05 / rate  # within 5%


def test_bursty_long_run_mean_preserved_and_modulated():
    rate = 100.0
    arr = BurstyArrivals(rate, burst_factor=4.0, on_s=0.5, off_s=1.5)
    rng = RngRegistry(5).stream("arrivals")
    now, n = 0.0, 0
    burst_n = 0
    while now < 200.0:
        gap = arr.next_gap(rng, now)
        now += gap
        n += 1
        if now % 2.0 < 0.5:
            burst_n += 1
    long_run_rate = n / now
    assert abs(long_run_rate - rate) < 0.1 * rate
    # the on-phase is 25% of the cycle but carries most of the arrivals
    assert burst_n / n > 0.5


def test_diurnal_rate_tracks_the_cycle():
    arr = DiurnalArrivals(100.0, period=10.0, amplitude=0.8)
    rng = RngRegistry(5).stream("arrivals")
    # count arrivals landing near the peak (now ~ period/4) vs the
    # trough (now ~ 3*period/4) of the sinusoid over many cycles
    peak_n = trough_n = 0
    now = 0.0
    for _ in range(50_000):
        now += arr.next_gap(rng, now)
        phase = (now % 10.0) / 10.0
        if 0.15 < phase < 0.35:
            peak_n += 1
        elif 0.65 < phase < 0.85:
            trough_n += 1
    assert peak_n > 3 * trough_n


def test_arrival_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)
    with pytest.raises(ValueError):
        BurstyArrivals(10.0, burst_factor=0.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(10.0, amplitude=1.5)


# ---------------------------------------------------------------------------
# Multiplexed users
# ---------------------------------------------------------------------------

def test_muxed_user_state_is_bounded():
    """Per-user state is a flat 8 bytes regardless of operation count."""
    users = MuxedUsers(10_000, shards=8)
    before = users.state_bytes()
    assert before == 8 * 10_000
    rng = RngRegistry(1).stream("pick")
    for _ in range(50_000):
        uid = users.pick(3, rng)
        users.complete(uid)
    assert users.state_bytes() == before  # ops never grow the state
    assert sum(users.completed) == 50_000


def test_muxed_shards_partition_the_population():
    users = MuxedUsers(1000, shards=7)
    seen = []
    for s in range(7):
        bounds = users.shard_bounds(s)
        assert len(bounds) > 0
        seen.extend(bounds)
    assert seen == list(range(1000))  # disjoint, complete, ordered
    rng = RngRegistry(2).stream("pick")
    for _ in range(200):
        uid = users.pick(2, rng)
        assert uid in users.shard_bounds(2)


def test_muxed_users_validation():
    with pytest.raises(ValueError):
        MuxedUsers(0, shards=1)
    with pytest.raises(ValueError):
        MuxedUsers(4, shards=8)


# ---------------------------------------------------------------------------
# run_open_load end to end
# ---------------------------------------------------------------------------

def _small_open_run(seed=1, request_tracer=None):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log())
    target = SpinnakerTarget(5, config=cfg, seed=seed,
                             request_tracer=request_tracer)
    point = run_open_load(
        target, mixed_workload(0.2, "strong"), n_users=512,
        rate=100.0, duration=2.0, warmup=0.5, shards=4, seed=seed)
    return target, point


def test_open_load_reports_throughput_and_latency():
    _, point = _small_open_run()
    assert point.ops > 100
    assert point.errors == 0
    assert point.shed == 0
    # open loop at a fixed offered rate: completions track arrivals
    assert math.isclose(point.throughput, point.observed_offered,
                        rel_tol=0.15)
    assert 0.0 < point.p50_ms <= point.p95_ms <= point.p99_ms
    assert 0 < point.active_users <= point.n_users
    assert point.user_state_bytes == 8 * 512


def test_open_load_deterministic_per_seed():
    _, a = _small_open_run(seed=9)
    _, b = _small_open_run(seed=9)
    _, c = _small_open_run(seed=10)
    assert (a.ops, a.throughput, a.p99_ms) == (b.ops, b.throughput,
                                               b.p99_ms)
    assert (a.ops, a.p99_ms) != (c.ops, c.p99_ms)


def test_open_load_sim_time_identical_with_tracing_on():
    """Request tracing must not perturb the open loop: bit-identical
    simulated time and operation counts with the tracer on and off."""
    from repro.obs import RequestTracer
    target_off, off = _small_open_run(seed=4)
    target_on, on = _small_open_run(
        seed=4, request_tracer=RequestTracer(sample_every=1))
    assert target_on.sim.now == target_off.sim.now
    assert (on.ops, on.errors, on.shed) == (off.ops, off.errors, off.shed)
    assert on.throughput == off.throughput
    assert on.p99_ms == off.p99_ms


def test_open_load_sheds_at_the_inflight_cap():
    """Overload the cluster with a tiny in-flight cap: the generator
    must shed (bounded queue) rather than buffer arrivals forever."""
    cfg = SpinnakerConfig(log_profile=DiskProfile.sata_log())
    target = SpinnakerTarget(3, config=cfg, seed=2)
    point = run_open_load(
        target, mixed_workload(0.5, "strong"), n_users=64,
        rate=4000.0, duration=1.0, warmup=0.2, shards=2,
        max_inflight_per_shard=4, seed=2)
    assert point.shed > 0
    assert point.throughput < point.observed_offered
