"""Tiny-scale smoke tests of the experiment functions and the report
renderer (the benchmark suite runs them at full size)."""

from repro.bench.experiments import (ExperimentResult, fig9_write_latency,
                                     fig11_elastic, fig16_memory_log,
                                     table1_recovery)
from repro.bench.harness import LoadPoint
from repro.bench.report import render


def test_fig9_tiny_scale_runs_and_checks():
    result = fig9_write_latency(scale=0.12, seed=5, n_nodes=5)
    assert isinstance(result, ExperimentResult)
    assert set(result.series) == {"spinnaker-writes",
                                  "cassandra-quorum-writes"}
    for points in result.series.values():
        assert all(isinstance(p, LoadPoint) for p in points)
        assert all(p.ops > 0 for p in points)
    assert "mean_gap_roughly_5_to_10pct" in result.checks


def test_fig16_tiny_scale():
    result = fig16_memory_log(scale=0.1, seed=5, n_nodes=5)
    points = result.series["spinnaker-writes-memlog"]
    assert points[0].mean_ms < 5.0  # memory log is milliseconds
    assert result.passed


def test_table1_tiny_scale_is_linear_enough():
    result = table1_recovery(scale=0.4, seed=5)
    rows = result.series["recovery"]
    assert len(rows) >= 2
    assert rows[0]["recovery_time_s"] < rows[-1]["recovery_time_s"]
    assert result.checks["subsecond_at_1s_period"]


def test_fig11_elastic_tiny_scale():
    result = fig11_elastic(scale=0.05, seed=5)
    rows = result.series["elastic"]
    assert [r["phase"] for r in rows] == ["before", "during-move",
                                          "after"]
    assert rows[0]["throughput"] > 0 and rows[-1]["throughput"] > 0
    # The throughput-ratio check is gated on full scale; everything
    # else (convergence, routing, strong reads, chaos audit) must hold
    # even at smoke scale.
    assert "peak_ratio_geq_1_4" not in result.checks
    assert result.checks["converged"]
    assert result.checks["zero_failed_strong_reads"]
    assert result.checks["chaos_joiner_crash_clean"]
    assert result.checks["chaos_leader_crash_clean"]
    assert result.passed


def test_render_formats_points_and_rows():
    result = ExperimentResult("figX", "Demo")
    result.series["curve"] = [LoadPoint(
        threads=4, throughput=123.0, mean_ms=5.5, p50_ms=5.0,
        p95_ms=9.0, p99_ms=11.0, ops=100, errors=0)]
    result.series["table"] = [{"a": 1, "b": 2.5}]
    result.checks["looks_good"] = True
    text = render(result)
    assert "figX" in text and "Demo" in text
    assert "123" in text and "5.50" in text
    assert "PASS" in text and "SHAPE OK" in text


def test_render_flags_failures():
    result = ExperimentResult("figY", "Bad demo")
    result.checks["broken"] = False
    text = render(result)
    assert "FAIL" in text and "SHAPE MISMATCH" in text
    assert not result.passed
