"""The knob registry must match the real config dataclass exactly."""

import dataclasses

import pytest

from repro.core.config import SpinnakerConfig
from repro.tune.registry import (KNOBS, apply_values, config_values,
                                 get_knob, knob_names, searched_knobs,
                                 validate_registry, validate_values)


def test_registry_validates_against_config():
    validate_registry()


def test_every_knob_is_a_config_field_with_matching_default():
    fields = {f.name: f for f in dataclasses.fields(SpinnakerConfig)}
    for knob in KNOBS:
        assert knob.name in fields
        assert knob.default == fields[knob.name].default
        assert knob.contains(knob.default)


def test_knob_names_unique_and_lookup_round_trips():
    names = knob_names()
    assert len(names) == len(set(names))
    for name in names:
        assert get_knob(name).name == name
    with pytest.raises(KeyError):
        get_knob("no_such_knob")


def test_searched_knobs_have_in_range_candidates():
    searched = searched_knobs()
    assert searched, "the default search space must not be empty"
    for knob in searched:
        assert len(knob.candidates) >= 2
        for cand in knob.candidates:
            assert knob.contains(cand)


def test_apply_values_overlays_without_mutating_the_original():
    base = SpinnakerConfig()
    out = apply_values(base, {"commit_period": 0.5,
                              "propose_batching": False})
    assert out.commit_period == 0.5
    assert out.propose_batching is False
    assert base.commit_period == get_knob("commit_period").default
    assert base.propose_batching is True


def test_apply_values_rejects_bad_overlays():
    base = SpinnakerConfig()
    with pytest.raises(KeyError):
        apply_values(base, {"no_such_knob": 1})
    with pytest.raises(ValueError):
        apply_values(base, {"commit_period": -1.0})  # below lo
    with pytest.raises(ValueError):
        apply_values(base, {"propose_batch_max_records": 2.5})  # not int
    with pytest.raises(ValueError):
        apply_values(base, {"group_commit": 1})  # int is not bool


def test_validate_values_accepts_range_edges():
    knob = get_knob("commit_period")
    validate_values({"commit_period": knob.lo})
    validate_values({"commit_period": knob.hi})
    with pytest.raises(ValueError):
        validate_values({"commit_period": knob.hi * 2})


def test_config_values_reads_back_the_overlay():
    cfg = apply_values(SpinnakerConfig(), {"commit_period": 0.25})
    values = config_values(cfg, ["commit_period", "group_commit"])
    assert values == {"commit_period": 0.25, "group_commit": True}
    everything = config_values(cfg)
    assert set(everything) == set(knob_names())
