"""Profile and tuned-config tests, including the --tuned-profile hook."""

import pytest

from repro.bench.harness import SpinnakerTarget
from repro.tune.profiles import (PROFILES, activate_tuned_profile,
                                 active_overlay, clear_tuned_profile,
                                 get_profile, load_tuned_config,
                                 load_tuned_values, tuned_config_path,
                                 write_tuned_config)
from repro.tune.registry import get_knob, validate_values


@pytest.fixture(autouse=True)
def _no_overlay_leaks():
    clear_tuned_profile()
    yield
    clear_tuned_profile()


def test_profiles_cover_the_benchmark_matrix():
    assert set(PROFILES) == {"sata", "ssd", "mem", "wan"}
    for profile in PROFILES.values():
        assert profile.searched, profile.name
        for name in profile.searched:
            assert get_knob(name).candidates, (profile.name, name)
        profile.base_config().validate()
    assert PROFILES["wan"].topology is not None
    assert PROFILES["wan"].placement == "spread"


def test_get_profile_rejects_unknown_names():
    with pytest.raises(KeyError):
        get_profile("floppy")


def test_checked_in_tuned_configs_validate():
    # the committed configs/tuned-*.json must stay loadable and in range
    for name in PROFILES:
        assert tuned_config_path(name).exists(), name
        values = load_tuned_values(name)
        validate_values(values)
        cfg = load_tuned_config(name)
        for key, value in values.items():
            assert getattr(cfg, key) == value


def test_write_load_round_trip(tmp_path):
    values = {"commit_period": 0.25, "propose_batch_max_records": 16,
              "group_commit": False}
    write_tuned_config("sata", values, meta={"seed": 1},
                       config_dir=tmp_path)
    back = load_tuned_values("sata", config_dir=tmp_path)
    assert back == values
    # ints and floats survive the JSON round trip with their types
    assert isinstance(back["propose_batch_max_records"], int)
    assert isinstance(back["commit_period"], float)
    assert isinstance(back["group_commit"], bool)


def test_activate_overlay_reaches_every_new_target(tmp_path):
    values = {"commit_period": 0.25, "propose_batching": False}
    write_tuned_config("ssd", values, config_dir=tmp_path)
    activate_tuned_profile("ssd", config_dir=tmp_path)
    assert active_overlay() == values
    target = SpinnakerTarget(n_nodes=3, seed=1)
    assert target.cluster.config.commit_period == 0.25
    assert target.cluster.config.propose_batching is False
    clear_tuned_profile()
    assert active_overlay() is None
    untouched = SpinnakerTarget(n_nodes=3, seed=1)
    assert untouched.cluster.config.propose_batching is True


def test_overlay_lays_over_the_experiments_own_config(tmp_path):
    from repro.core.config import SpinnakerConfig
    write_tuned_config("mem", {"commit_period": 0.5},
                       config_dir=tmp_path)
    activate_tuned_profile("mem", config_dir=tmp_path)
    target = SpinnakerTarget(
        n_nodes=3, seed=1,
        config=SpinnakerConfig(session_timeout=4.0, commit_period=2.0))
    # untouched experiment knobs survive; overlaid ones win
    assert target.cluster.config.session_timeout == 4.0
    assert target.cluster.config.commit_period == 0.5


def test_evaluator_suspends_and_restores_the_overlay(tmp_path):
    from repro.core.config import SpinnakerConfig
    from repro.sim.disk import DiskProfile
    from repro.tune.evaluator import evaluate
    from repro.tune.objective import ObjectiveSpec
    from repro.tune.profiles import TuneProfile
    write_tuned_config("sata", {"commit_period": 0.25},
                       config_dir=tmp_path)
    activate_tuned_profile("sata", config_dir=tmp_path)
    tiny = TuneProfile(
        name="tiny",
        base_config=lambda: SpinnakerConfig(
            log_profile=DiskProfile.memory_log()),
        searched=("commit_period",),
        objective=ObjectiveSpec(focus_phases=("propose",)),
        n_nodes=3, threads=2, ops_per_thread=6, warmup_ops=2)
    ev = evaluate(tiny, {"commit_period": 1.0}, seed=1)
    assert ev.metrics["ops"] > 0
    assert active_overlay() == {"commit_period": 0.25}
