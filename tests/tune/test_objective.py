"""The objective must match the documented formula, hand-computed."""

import pytest

from repro.tune.objective import (ObjectiveSpec, focus_ms, focus_share,
                                  objective_from_report, objective_score)

PHASES = {
    "log_force": {"mean_ms": 6.0, "p95_ms": 9.0, "share": 0.6},
    "replicate_rtt": {"mean_ms": 2.0, "p95_ms": 3.0, "share": 0.2},
}


def test_score_matches_hand_computation():
    spec = ObjectiveSpec(focus_phases=("log_force",), phase_emphasis=0.25,
                         throughput_weight=0.5, error_penalty=1000.0)
    metrics = {"p50_ms": 10.0, "throughput": 2000.0,
               "errors": 0, "ops": 100}
    # 10 + 0.25*6 - 0.5*2000/1000 + 0 = 10.5
    assert objective_score(metrics, PHASES, spec) == pytest.approx(10.5)


def test_focus_terms_sum_over_named_phases_only():
    spec = ObjectiveSpec(focus_phases=("log_force", "replicate_rtt",
                                       "not_traced"))
    assert focus_ms(PHASES, spec) == pytest.approx(8.0)
    assert focus_share(PHASES, spec) == pytest.approx(0.8)


def test_errors_dominate_the_score():
    spec = ObjectiveSpec()
    clean = {"p50_ms": 10.0, "throughput": 1000.0,
             "errors": 0, "ops": 100}
    dirty = dict(clean, errors=2)
    # 2 errors over 100 ops adds 1000 * 0.02 = 20 ms-equivalent
    assert (objective_score(dirty, PHASES, spec)
            - objective_score(clean, PHASES, spec)) == pytest.approx(20.0)


def test_empty_phase_table_drops_the_focus_term():
    spec = ObjectiveSpec(phase_emphasis=0.25, throughput_weight=0.0,
                         error_penalty=0.0)
    metrics = {"p50_ms": 7.0, "throughput": 0.0, "errors": 0, "ops": 1}
    assert objective_score(metrics, {}, spec) == pytest.approx(7.0)


def test_adding_latency_outside_focus_never_lowers_the_score():
    # The regression the absolute-time form exists to prevent: a config
    # that adds non-focus latency (worse p50, same throughput) must
    # score strictly worse, even though the focus *share* shrinks.
    spec = ObjectiveSpec(focus_phases=("log_force",))
    before = {"p50_ms": 10.0, "throughput": 1000.0,
              "errors": 0, "ops": 100}
    after = dict(before, p50_ms=11.0)
    shifted = {"log_force": {"mean_ms": 6.0, "p95_ms": 9.0,
                             "share": 6.0 / 11.0}}
    assert (objective_score(after, shifted, spec)
            > objective_score(before, PHASES, spec))


def test_objective_from_report_entry():
    spec = ObjectiveSpec(focus_phases=("log_force",), phase_emphasis=0.25,
                         throughput_weight=0.5)
    experiment = {
        "series": {"spinnaker-writes": {"low_load_mean_ms": 8.0,
                                        "low_load_p95_ms": 12.0,
                                        "peak_throughput_rps": 1500.0,
                                        "points": 4}},
        "phases": {"write": {"count": 100, "total_mean_ms": 8.0,
                             "phases": {"log_force": {
                                 "mean_ms": 4.0, "p95_ms": 6.0,
                                 "share": 0.5}}}},
    }
    # 8 + 0.25*4 - 0.5*1.5 = 8.25
    score = objective_from_report(experiment, "spinnaker-writes", spec)
    assert score == pytest.approx(8.25)
