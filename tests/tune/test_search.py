"""Search-driver tests: determinism, budgets, ledger shape, CLI.

The real evaluator runs here at tiny scale (a few dozen simulated ops
per trial), so these stay unit-test fast while exercising the whole
tune() -> evaluate() -> bench harness -> sim stack.
"""

import json

from repro.sim.disk import DiskProfile
from repro.core.config import SpinnakerConfig
from repro.tune.objective import ObjectiveSpec
from repro.tune.profiles import DETUNED_START, TuneProfile
from repro.tune.search import tune

#: tiny injected profile: 3-node memory-log cluster, two searched knobs
TINY = TuneProfile(
    name="tiny",
    base_config=lambda: SpinnakerConfig(
        log_profile=DiskProfile.memory_log()),
    searched=("commit_period", "piggyback_commits"),
    objective=ObjectiveSpec(focus_phases=("propose",)),
    n_nodes=3, threads=2, ops_per_thread=6, warmup_ops=2)


def test_same_seed_gives_bit_identical_ledgers():
    a = tune("tiny", seed=7, max_trials=8, profile=TINY)
    b = tune("tiny", seed=7, max_trials=8, profile=TINY)
    assert json.dumps(a.to_json(), sort_keys=True) == \
        json.dumps(b.to_json(), sort_keys=True)
    assert a.best_values == b.best_values
    assert a.best_score == b.best_score


def test_different_seed_changes_the_measurements():
    a = tune("tiny", seed=1, max_trials=4, profile=TINY)
    b = tune("tiny", seed=2, max_trials=4, profile=TINY)
    assert (a.baseline.eval.metrics["p50_ms"]
            != b.baseline.eval.metrics["p50_ms"])


def test_budget_caps_trials_and_baseline_counts():
    res = tune("tiny", seed=1, max_trials=3, profile=TINY)
    assert 1 <= len(res.trials) <= 3
    assert res.trials[0].knob is None and res.trials[0].adopted
    assert not res.converged or len(res.trials) < 3


def test_ledger_shape_and_monotone_best():
    res = tune("tiny", seed=1, max_trials=10, profile=TINY)
    assert [t.index for t in res.trials] == list(range(len(res.trials)))
    best = res.trials[0].best_so_far
    for trial in res.trials:
        assert trial.best_so_far <= best + 1e-12
        best = trial.best_so_far
    assert res.best_score <= res.baseline_score
    payload = res.to_json()
    assert payload["searched"] == list(TINY.searched)
    assert len(payload["trials"]) == len(res.trials)
    assert payload["evaluator"]["threads"] == TINY.threads


def test_no_configuration_is_evaluated_twice():
    # the memo serves later-pass re-probes; every ledger row is distinct
    res = tune("tiny", seed=1, max_trials=12, passes=3, profile=TINY)
    seen = [tuple(sorted(t.values.items())) for t in res.trials]
    assert len(seen) == len(set(seen))


def test_start_overlay_seeds_the_baseline():
    res = tune("tiny", seed=1, max_trials=2, profile=TINY,
               start={"commit_period": 10.0})
    assert res.trials[0].values == {"commit_period": 10.0}


def test_detuned_start_is_a_valid_overlay():
    from repro.tune.registry import validate_values
    validate_values(DETUNED_START)


def test_cli_writes_a_parsable_ledger(tmp_path, capsys):
    from repro.tune.cli import main
    ledger = tmp_path / "ledger.json"
    rc = main(["--profile", "mem", "--scale", "0.08",
               "--max-trials", "4", "--ledger", str(ledger)])
    assert rc == 0
    payload = json.loads(ledger.read_text())
    assert payload["profile"] == "mem"
    assert 1 <= len(payload["trials"]) <= 4
    assert payload["trials"][0]["knob"] is None
    out = capsys.readouterr().out
    assert "baseline score" in out


def test_cli_list_knobs(capsys):
    from repro.tune.cli import main
    assert main(["--profile", "sata", "--list-knobs"]) == 0
    out = capsys.readouterr().out
    assert "propose_batch_window" in out and "grid=" in out
