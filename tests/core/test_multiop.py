"""Tests for multi-operation transactions (§8.2 extension)."""

import pytest

from repro.core import (DatastoreError, SpinnakerCluster, SpinnakerConfig,
                        Transaction, VersionMismatch)
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


@pytest.fixture
def cluster():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cl = SpinnakerCluster(n_nodes=5, config=cfg, seed=13)
    cl.start()
    yield cl
    assert cl.all_failures() == []


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="txn")
    return proc.result()


def cohort_keys(cluster, cohort_id, count, prefix=b"tx"):
    keys, i = [], 0
    while len(keys) < count:
        key = prefix + b"-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def test_multi_row_transaction_commits_atomically(cluster):
    client = cluster.client()
    k1, k2 = cohort_keys(cluster, 0, 2)

    def scenario():
        txn = Transaction(client)
        txn.put(k1, b"balance", b"90")
        txn.put(k2, b"balance", b"110")
        yield from txn.commit()
        a = yield from client.get(k1, b"balance", consistent=True)
        b = yield from client.get(k2, b"balance", consistent=True)
        return a, b

    a, b = run(cluster, scenario())
    assert a.value == b"90" and b.value == b"110"


def test_transaction_conditional_abort_leaves_no_effects(cluster):
    client = cluster.client()
    k1, k2 = cohort_keys(cluster, 1, 2)

    def scenario():
        yield from client.put(k1, b"c", b"old")   # version 1
        txn = Transaction(client)
        txn.put(k2, b"c", b"side-effect")
        txn.conditional_put(k1, b"c", b"new", version=99)  # stale
        try:
            yield from txn.commit()
        except VersionMismatch:
            pass
        else:
            raise AssertionError("stale conditional committed")
        untouched = yield from client.get(k2, b"c", consistent=True)
        original = yield from client.get(k1, b"c", consistent=True)
        return untouched, original

    untouched, original = run(cluster, scenario())
    assert not untouched.found          # nothing leaked
    assert original.value == b"old"


def test_cross_cohort_transaction_rejected_client_side(cluster):
    client = cluster.client()
    k_a = cohort_keys(cluster, 0, 1)[0]
    k_b = cohort_keys(cluster, 2, 1)[0]
    txn = Transaction(client)
    txn.put(k_a, b"c", b"x")
    with pytest.raises(DatastoreError):
        txn.put(k_b, b"c", b"y")


def test_empty_and_double_commit_rejected(cluster):
    client = cluster.client()
    k = cohort_keys(cluster, 0, 1)[0]
    empty = Transaction(client)
    with pytest.raises(DatastoreError):
        # Generators raise on first resume; drive it.
        list(empty.commit())

    def scenario():
        txn = Transaction(client)
        txn.put(k, b"c", b"v")
        yield from txn.commit()
        return txn

    txn = run(cluster, scenario())
    with pytest.raises(DatastoreError):
        txn.put(k, b"c", b"again")


def test_transaction_versions_advance_per_column(cluster):
    client = cluster.client()
    k = cohort_keys(cluster, 0, 1)[0]

    def scenario():
        txn = Transaction(client)
        txn.put(k, b"c", b"v1")
        txn.put(k, b"c", b"v2")   # same column twice: versions 1 then 2
        yield from txn.commit()
        return (yield from client.get(k, b"c", consistent=True))

    got = run(cluster, scenario())
    assert got.value == b"v2"
    assert got.version == 2


def test_transaction_survives_leader_failover(cluster):
    client = cluster.client()
    keys = cohort_keys(cluster, 0, 4)

    def write_txn():
        txn = Transaction(client)
        for i, key in enumerate(keys):
            txn.put(key, b"c", b"t%d" % i)
        yield from txn.commit()

    run(cluster, write_txn())
    cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="re-election")

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        return out

    results = run(cluster, read_all())
    # All or nothing: the committed transaction is fully visible.
    assert all(r.found for r in results)


def test_atomic_force_no_partial_batch_after_crash(cluster):
    """Crash every node right after the transaction is proposed; on
    recovery either the whole batch is present or none of it."""
    client = cluster.client()
    keys = cohort_keys(cluster, 0, 3)

    def write_txn():
        txn = Transaction(client)
        for i, key in enumerate(keys):
            txn.put(key, b"c", b"t%d" % i)
        yield from txn.commit()

    proc = spawn(cluster.sim, write_txn())
    cluster.run(0.0015)  # propose in flight, forces likely incomplete
    for name in list(cluster.nodes):
        cluster.crash_node(name)
    cluster.run(3.0)
    for name in list(cluster.nodes):
        cluster.restart_node(name)
    cluster.run_until(cluster.is_ready, limit=60.0, what="recovered")

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        return out

    results = run(cluster, read_all())
    presence = {r.found for r in results}
    assert len(presence) == 1, "partial transaction visible after crash"
