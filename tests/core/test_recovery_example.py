"""The Appendix B recovery example (Fig. 10), reproduced end to end.

A 3-node cluster is seeded by hand into state S0/S1:

* writes 1.1–1.20 are committed everywhere (cmt: A=1.20, B=C=1.10 — the
  followers have not yet seen a commit message past 1.10);
* 1.21 was proposed and logged by B and C but not yet by A (proposes run
  in parallel with the leader's own force, so followers can be ahead);
* 1.22 was logged only by C.

Then: all nodes go down (S1); A and B come back (S2) — B must win the
election with lst=1.21, re-propose and commit 1.11–1.21, discard nothing
it knows of, and start epoch 2; new writes land as 2.22–2.30 (S3);
finally C returns (S4) — catch-up must logically truncate 1.22 into C's
skipped-LSN list and deliver epochs 1 and 2 up to 2.30.
"""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN
from repro.storage.records import CommitMarker, WriteRecord

COHORT = 0


def seed_key(i):
    return b"seed-%02d" % i


@pytest.fixture
def world():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=3)
    # Do NOT start the cluster: seed logs by hand first.
    a, b, c = cluster.partitioner.cohort(COHORT).members
    seed = {
        a: (20, LSN(1, 20)),   # lst=1.20, cmt=1.20
        b: (21, LSN(1, 10)),   # lst=1.21, cmt=1.10
        c: (22, LSN(1, 10)),   # lst=1.22, cmt=1.10
    }
    for name, (last_seq, cmt) in seed.items():
        node = cluster.nodes[name]
        for seq in range(1, last_seq + 1):
            node.wal.append(WriteRecord(
                lsn=LSN(1, seq), cohort_id=COHORT, key=seed_key(seq),
                colname=b"c", value=b"v%d" % seq, version=1), force=True)
        node.wal.append(CommitMarker(lsn=cmt, cohort_id=COHORT,
                                     committed_lsn=cmt), force=False)
    cluster.run(1.0)  # let all forces land on the simulated disks
    # S1: all nodes down.  (They were never booted; take endpoints and
    # devices offline so the cluster behaves as fully crashed.)
    for name in (a, b, c):
        cluster.network.get(name).crash()
        cluster.nodes[name].device.crash()
        cluster.nodes[name].wal.crash()
    return cluster, a, b, c


def boot(cluster, *names):
    for name in names:
        cluster.nodes[name].boot()


def test_s2_b_wins_with_max_lst_and_discards_1_22(world):
    cluster, a, b, c = world
    boot(cluster, a, b)
    cluster.run_until(lambda: cluster.leader_of(COHORT) is not None,
                      limit=30.0, what="S2 leader")
    assert cluster.leader_of(COHORT) == b          # lst 1.21 > 1.20
    replica_b = cluster.replica(b, COHORT)
    replica_a = cluster.replica(a, COHORT)
    # Takeover re-proposed and committed 1.11..1.21 everywhere.
    cluster.run(1.0)
    assert replica_b.committed_lsn == LSN(1, 21)
    assert replica_a.committed_lsn == LSN(1, 21)
    assert cluster.nodes[a].wal.contains(COHORT, LSN(1, 21))
    # 1.22 is nowhere in the surviving majority.
    assert not cluster.nodes[a].wal.contains(COHORT, LSN(1, 22))
    assert not cluster.nodes[b].wal.contains(COHORT, LSN(1, 22))
    # Epoch was bumped before accepting new writes.
    assert replica_b.epoch == 2
    # Committed data is all readable.
    for seq in range(1, 22):
        cell = replica_b.engine.get(seed_key(seq), b"c")
        assert cell is not None and cell.value == b"v%d" % seq
    assert cluster.all_failures() == []


def new_writes(cluster, client, count):
    """Write ``count`` fresh values routed to cohort COHORT."""
    keys = []
    i = 0
    while len(keys) < count:
        key = b"new-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == COHORT:
            keys.append(key)
        i += 1

    def _go():
        for key in keys:
            yield from client.put(key, b"c", b"fresh")
        return keys

    proc = spawn(cluster.sim, _go())
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="new writes")
    return proc.result()


def test_s3_new_writes_use_epoch_2(world):
    cluster, a, b, c = world
    boot(cluster, a, b)
    cluster.run_until(lambda: cluster.leader_of(COHORT) == b,
                      limit=30.0, what="S2 leader")
    keys = new_writes(cluster, cluster.client(), 9)
    wal_b = cluster.nodes[b].wal
    # Epoch-2 LSNs continue the sequence: 2.22 .. 2.30 (Appendix B).
    for seq in range(22, 31):
        assert wal_b.contains(COHORT, LSN(2, seq))
    assert wal_b.last_lsn(COHORT) == LSN(2, 30)
    assert len(keys) == 9


def test_s4_c_rejoins_and_logically_truncates(world):
    cluster, a, b, c = world
    boot(cluster, a, b)
    cluster.run_until(lambda: cluster.leader_of(COHORT) == b,
                      limit=30.0, what="S2 leader")
    new_writes(cluster, cluster.client(), 9)   # S3: 2.22..2.30
    boot(cluster, c)
    replica_c = cluster.replica(c, COHORT)
    cluster.run_until(lambda: replica_c.role == Role.FOLLOWER,
                      limit=30.0, what="C recovered")
    wal_c = cluster.nodes[c].wal
    # 1.22 was logically truncated, not physically removed.
    assert wal_c.is_skipped(COHORT, LSN(1, 22))
    assert wal_c.contains(COHORT, LSN(1, 22))
    assert wal_c.last_lsn(COHORT) == LSN(2, 30)
    assert replica_c.committed_lsn == LSN(2, 30)
    # C's engine now reflects every committed write and not 1.22.
    for seq in range(1, 22):
        cell = replica_c.engine.get(seed_key(seq), b"c")
        assert cell is not None and cell.value == b"v%d" % seq
    orphan = replica_c.engine.get(seed_key(22), b"c")
    assert orphan is None
    assert cluster.all_failures() == []


def test_s4_c_survives_another_restart_without_reapplying_1_22(world):
    """Local recovery must honour the skipped-LSN list (§6.1.1)."""
    cluster, a, b, c = world
    boot(cluster, a, b)
    cluster.run_until(lambda: cluster.leader_of(COHORT) == b,
                      limit=30.0, what="S2 leader")
    new_writes(cluster, cluster.client(), 9)
    boot(cluster, c)
    replica_c = cluster.replica(c, COHORT)
    cluster.run_until(lambda: replica_c.role == Role.FOLLOWER,
                      limit=30.0, what="C recovered")
    cluster.run(1.0)
    # Crash and restart C once more: replay must skip 1.22.
    cluster.crash_node(c)
    cluster.run(3.0)
    cluster.restart_node(c)
    cluster.run_until(lambda: replica_c.role == Role.FOLLOWER,
                      limit=30.0, what="C re-recovered")
    assert replica_c.engine.get(seed_key(22), b"c") is None
    assert wal_skips(cluster, c)
    assert cluster.all_failures() == []


def wal_skips(cluster, c):
    return cluster.nodes[c].wal.is_skipped(COHORT, LSN(1, 22))
