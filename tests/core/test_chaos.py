"""Randomized failure injection: the §8.1 guarantees, adversarially.

A writer streams acknowledged writes into one cohort while a chaos
process crashes and restarts cohort members (including leaders, with and
without fast failure detection).  Invariants checked after the storm:

* **durability** — every write the client saw acknowledged is readable
  with its final value (a crash-restart storm must never lose committed
  data while no media is lost);
* **availability** — the cohort is writable again once a majority is up;
* **integrity** — no handler process died of an unexpected exception.

Three storms run with different seeds; the schedule keeps a majority
alive most of the time but deliberately includes windows with two nodes
down (writes stall, nothing may be lost).
"""

import pytest

from repro.core import (DatastoreError, Role, SpinnakerCluster,
                        SpinnakerConfig)
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn, timeout


def make_cluster(seed):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.3, client_op_timeout=6.0)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=seed)
    cluster.start()
    return cluster


def cohort_keys(cluster, cohort_id, count):
    keys, i = [], 0
    while len(keys) < count:
        key = b"chaos-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_no_acknowledged_write_lost_in_failure_storm(seed):
    cluster = make_cluster(seed)
    sim = cluster.sim
    rng = cluster.rng.stream("chaos")
    cohort_id = 0
    members = list(cluster.partitioner.cohort(cohort_id).members)
    keys = cohort_keys(cluster, cohort_id, 400)
    client = cluster.client()
    acknowledged = {}
    state = {"writer_done": False}

    def writer():
        for i, key in enumerate(keys):
            if sim.now > 36.0:
                break
            value = b"v%d" % i
            try:
                yield from client.put(key, b"c", value)
            except DatastoreError:
                continue  # timed out: no durability promise was made
            acknowledged[key] = value
        state["writer_done"] = True

    def chaos():
        down = []
        while sim.now < 30.0:
            yield timeout(sim, 0.8 + rng.random() * 1.5)
            action = rng.random()
            if down and (action < 0.45 or len(down) >= 2):
                name = down.pop(rng.randrange(len(down)))
                cluster.restart_node(name)
                continue
            victims = [m for m in members if m not in down]
            if not victims:
                continue
            name = rng.choice(victims)
            node = cluster.nodes[name]
            session = node.zk.session if node.zk else None
            cluster.crash_node(name)
            if session is not None and rng.random() < 0.7:
                # Usually skip detection (fast elections); sometimes pay
                # the full session timeout.
                cluster.coord.expire_session_now(session)
            down.append(name)
        for name in down:
            cluster.restart_node(name)

    spawn(sim, writer(), name="chaos-writer")
    spawn(sim, chaos(), name="chaos-injector")
    cluster.run_until(lambda: state["writer_done"] or sim.now > 40.0,
                      limit=120.0, what="writer finished")
    # Heal everything and let recovery settle.
    for name in members:
        if not cluster.nodes[name].alive:
            cluster.restart_node(name)
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=60.0, what="post-storm leader")
    cluster.run(2.0)

    assert len(acknowledged) > 50, "storm starved the writer entirely"

    def read_back():
        results = {}
        for key, value in acknowledged.items():
            got = yield from client.get(key, b"c", consistent=True)
            results[key] = (got.found, got.value, value)
        return results

    proc = spawn(sim, read_back())
    cluster.run_until(lambda: proc.triggered, limit=300.0,
                      what="post-storm reads")
    lost = {k: r for k, r in proc.result().items()
            if not r[0] or r[1] != r[2]}
    assert not lost, f"acknowledged writes lost: {sorted(lost)[:5]}"
    assert cluster.all_failures() == []


def test_writes_resume_after_every_member_cycled():
    """Roll through the whole cohort, one crash at a time."""
    cluster = make_cluster(seed=77)
    cohort_id = 1
    members = list(cluster.partitioner.cohort(cohort_id).members)
    keys = cohort_keys(cluster, cohort_id, len(members) + 1)
    client = cluster.client()

    def put_one(key):
        def _go():
            yield from client.put(key, b"c", b"alive")
        proc = spawn(cluster.sim, _go())
        cluster.run_until(lambda: proc.triggered, limit=60.0, what="put")
        assert proc.ok

    put_one(keys[0])
    for i, name in enumerate(members):
        node = cluster.nodes[name]
        session = node.zk.session if node.zk else None
        cluster.crash_node(name)
        if session is not None:
            cluster.coord.expire_session_now(session)
        cluster.run_until(
            lambda: cluster.leader_of(cohort_id) is not None
            and cluster.leader_of(cohort_id) != name,
            limit=60.0, what="leader without victim")
        put_one(keys[i + 1])
        cluster.restart_node(name)
        replica = cluster.replica(name, cohort_id)
        cluster.run_until(
            lambda: replica.role in (Role.FOLLOWER, Role.LEADER),
            limit=60.0, what="victim rejoined")
    assert cluster.all_failures() == []
