"""Tests for ordered range scans (order-preserving keys extension)."""

import pytest

from repro.core import (DatastoreError, SpinnakerCluster, SpinnakerConfig)
from repro.core.partition import ordered_key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.engine import StorageEngine
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord


# -- engine-level scan -------------------------------------------------------

def wrec(seq, key, col=b"c", value=b"v", tombstone=False):
    return WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=key, colname=col,
                       value=None if tombstone else value, version=seq,
                       tombstone=tombstone)


def test_engine_scan_orders_and_bounds():
    eng = StorageEngine(0)
    for i, key in enumerate([b"d", b"a", b"c", b"b", b"e"], start=1):
        eng.apply(wrec(i, key))
    rows = eng.scan(b"b", b"e")
    assert [k for k, _ in rows] == [b"b", b"c", b"d"]


def test_engine_scan_merges_memtable_and_sstables():
    eng = StorageEngine(0)
    eng.apply(wrec(1, b"a", value=b"old"))
    eng.apply(wrec(2, b"b"))
    eng.flush()
    eng.apply(wrec(3, b"a", value=b"new"))   # newer, in memtable
    eng.apply(wrec(4, b"c"))
    rows = dict(eng.scan(b"a", None, limit=10))
    assert set(rows) == {b"a", b"b", b"c"}
    assert rows[b"a"][b"c"].value == b"new"


def test_engine_scan_hides_tombstoned_rows():
    eng = StorageEngine(0)
    eng.apply(wrec(1, b"a"))
    eng.apply(wrec(2, b"b"))
    eng.apply(wrec(3, b"a", tombstone=True))
    rows = eng.scan(b"a", b"z")
    assert [k for k, _ in rows] == [b"b"]


def test_engine_scan_limit():
    eng = StorageEngine(0)
    for i in range(1, 9):
        eng.apply(wrec(i, b"k%d" % i))
    rows = eng.scan(b"k1", None, limit=3)
    assert len(rows) == 3
    assert [k for k, _ in rows] == [b"k1", b"k2", b"k3"]


# -- partitioner ordering -----------------------------------------------------

def test_ordered_key_of_preserves_prefix_order():
    keys = [b"alpha", b"beta", b"carol", b"delta", b"zz"]
    mapped = [ordered_key_of(k) for k in keys]
    assert mapped == sorted(mapped)


def test_cohorts_for_range_in_key_order():
    from repro.core.partition import RangePartitioner
    part = RangePartitioner(["A", "B", "C", "D"],
                            key_mapper=ordered_key_of)
    cohorts = part.cohorts_for_range(b"\x00", b"\xff\xff\xff\xff")
    assert [c.cohort_id for c in cohorts] == [0, 1, 2, 3]
    first = part.cohorts_for_range(b"\x00", b"\x10")
    assert [c.cohort_id for c in first] == [0]


def test_range_query_requires_ordered_mapper():
    from repro.core.partition import RangePartitioner
    part = RangePartitioner(["A", "B", "C"])
    with pytest.raises(ValueError):
        part.cohorts_for_range(b"a", b"b")


# -- end-to-end ---------------------------------------------------------------

@pytest.fixture
def ordered_cluster():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2, order_preserving_keys=True)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=91)
    cluster.start()
    yield cluster
    assert cluster.all_failures() == []


def run(cluster, gen, limit=120.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def test_scan_within_and_across_cohorts(ordered_cluster):
    cluster = ordered_cluster
    client = cluster.client()
    # Keys spanning the whole keyspace: first byte drives placement.
    keys = [bytes([b]) + b"-row" for b in range(0, 256, 16)]

    def write_all():
        for i, key in enumerate(keys):
            yield from client.put(key, b"c", b"v%d" % i)

    run(cluster, write_all())
    # Keys land on multiple distinct cohorts.
    cohorts = {cluster.partitioner.locate(k).cohort_id for k in keys}
    assert len(cohorts) >= 3

    def scan_all():
        return (yield from client.scan(b"\x00", None, limit=100))

    rows = run(cluster, scan_all())
    assert [k for k, _ in rows] == sorted(keys)

    def scan_middle():
        return (yield from client.scan(keys[2], keys[7], limit=100))

    rows = run(cluster, scan_middle())
    assert [k for k, _ in rows] == sorted(keys)[2:7]


def test_scan_respects_limit_across_cohorts(ordered_cluster):
    cluster = ordered_cluster
    client = cluster.client()
    keys = [bytes([b]) for b in range(0, 250, 10)]

    def write_all():
        for key in keys:
            yield from client.put(key, b"c", b"v")

    run(cluster, write_all())

    def scan_limited():
        return (yield from client.scan(b"\x00", None, limit=7))

    rows = run(cluster, scan_limited())
    assert len(rows) == 7
    assert [k for k, _ in rows] == sorted(keys)[:7]


def test_scan_values_and_versions(ordered_cluster):
    cluster = ordered_cluster
    client = cluster.client()

    def scenario():
        yield from client.put(b"A-key", b"name", b"ada")
        yield from client.put(b"A-key", b"name", b"ada2")
        return (yield from client.scan(b"A", b"B"))

    rows = run(cluster, scenario())
    assert len(rows) == 1
    key, columns = rows[0]
    assert key == b"A-key"
    assert columns[b"name"].value == b"ada2"
    assert columns[b"name"].version == 2


def test_scan_rejected_on_hashed_cluster():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log())
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=1)
    cluster.start()
    client = cluster.client()

    def scenario():
        try:
            yield from client.scan(b"a", b"z")
        except DatastoreError:
            return "rejected"

    assert run(cluster, scenario()) == "rejected"


def test_timeline_scan_after_commit_period(ordered_cluster):
    cluster = ordered_cluster
    client = cluster.client()

    def write_all():
        for b in (10, 20, 30):
            yield from client.put(bytes([b]), b"c", b"v")

    run(cluster, write_all())
    cluster.run(1.0)  # commit messages propagate

    def scan_timeline():
        return (yield from client.scan(b"\x00", b"\xff",
                                       consistent=False))

    rows = run(cluster, scan_timeline())
    assert [k for k, _ in rows] == [bytes([10]), bytes([20]), bytes([30])]
