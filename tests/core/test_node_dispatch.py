"""Tests for node-level dispatch: misrouted requests, WhoIsLeader,
coordination watch routing."""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.messages import WhoIsLeader
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


@pytest.fixture
def cluster():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cl = SpinnakerCluster(n_nodes=5, config=cfg, seed=27)
    cl.start()
    return cl


def run(cluster, gen, limit=30.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def test_write_to_non_replica_gets_wrong_node(cluster):
    key = b"misroute"
    cohort = cluster.partitioner.locate(key)
    outsider = next(name for name in cluster.nodes
                    if name not in cohort.members)
    client = cluster.client()
    from repro.core.messages import ClientWrite
    msg = ClientWrite(key=key, colname=b"c", value=b"v")

    def scenario():
        reply = yield client.endpoint.request(outsider, msg, size=128)
        return reply

    reply = run(cluster, scenario())
    assert reply == {"ok": False, "code": "wrong-node",
                     "map_version": cluster.partitioner.version}


def test_client_recovers_from_misrouted_cache(cluster):
    key = b"misroute2"
    cohort = cluster.partitioner.locate(key)
    outsider = next(name for name in cluster.nodes
                    if name not in cohort.members)
    client = cluster.client()
    client._leader_cache[cohort.cohort_id] = outsider  # poisoned

    def scenario():
        yield from client.put(key, b"c", b"v")
        return (yield from client.get(key, b"c", consistent=True))

    got = run(cluster, scenario())
    assert got.value == b"v"


def test_who_is_leader(cluster):
    cohort_id = 2
    member = cluster.partitioner.cohort(cohort_id).members[0]
    client = cluster.client()

    def scenario():
        reply = yield client.endpoint.request(
            member, WhoIsLeader(cohort_id=cohort_id), size=64)
        return reply

    reply = run(cluster, scenario())
    assert reply["leader"] == cluster.leader_of(cohort_id)


def test_unknown_cohort_message_is_ignored(cluster):
    member = list(cluster.nodes)[0]
    client = cluster.client()

    def scenario():
        try:
            yield client.endpoint.request(
                member, WhoIsLeader(cohort_id=999), size=64, timeout=0.5)
            return "replied"
        except Exception:
            return "dropped"

    assert run(cluster, scenario()) == "dropped"
    assert cluster.all_failures() == []


def test_watch_events_reach_zk_client_through_dispatcher(cluster):
    """Coordination watch notifications are routed by the node's own
    dispatcher (nodes share one endpoint for everything)."""
    node = cluster.nodes["node0"]
    fired = []

    def scenario():
        yield from node.zk.create("/probe", b"x")
        yield from node.zk.get("/probe",
                               watcher=lambda ev: fired.append(ev.kind))
        yield from node.zk.set_data("/probe", b"y")

    proc = node.spawn(scenario(), "probe")
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="watch")
    cluster.run(0.5)
    assert fired == ["changed"]
