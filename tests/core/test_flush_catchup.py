"""Integration tests for flushes, checkpoints, log rollover, and the
§6.1 SSTable-shipping catch-up path."""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN


def make_cluster(flush_threshold=6_000, seed=61):
    """Tiny flush threshold: a handful of 1 KB writes rolls the log."""
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2,
                          flush_threshold_bytes=flush_threshold,
                          log_gc_after_flush=True)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=seed)
    cluster.start()
    return cluster


def run(cluster, gen, limit=120.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def cohort_keys(cluster, cohort_id, count):
    keys, i = [], 0
    while len(keys) < count:
        key = b"fc-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def write_many(cluster, client, keys, value=b"x" * 1024):
    def _go():
        for key in keys:
            yield from client.put(key, b"c", value)
    run(cluster, _go())


def test_flush_advances_checkpoint_and_rolls_log():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 30)
    write_many(cluster, client, keys)
    cluster.run(1.0)
    leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader, cohort_id)
    assert replica.engine.flushes >= 1
    assert replica.engine.checkpoint_lsn > LSN.zero()
    # The log was rolled over: it can no longer serve from LSN zero.
    assert not cluster.nodes[leader].wal.can_serve_after(
        cohort_id, LSN.zero())


def test_reads_correct_across_flush_boundary():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 25)
    write_many(cluster, client, keys)

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        return out

    results = run(cluster, read_all())
    assert all(r.found for r in results)


def test_catchup_ships_sstables_when_log_rolled():
    """A follower that was down across a log rollover must be caught up
    from SSTables (§6.1) — and end consistent."""
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    leader = cluster.leader_of(cohort_id)
    victim = next(m for m in members if m != leader)
    keys = cohort_keys(cluster, cohort_id, 40)
    write_many(cluster, client, keys[:5])
    cluster.run(0.5)
    cluster.crash_node(victim)
    # Enough writes to flush + roll the leader's log past the victim's
    # committed LSN.
    write_many(cluster, client, keys[5:])
    cluster.run(1.0)
    assert not cluster.nodes[leader].wal.can_serve_after(
        cohort_id, cluster.nodes[victim].wal.last_committed_lsn(cohort_id))
    cluster.restart_node(victim)
    replica_v = cluster.replica(victim, cohort_id)
    cluster.run_until(lambda: replica_v.role == Role.FOLLOWER, limit=60.0,
                      what="victim caught up")
    cluster.run(1.0)
    for key in keys:
        cell = replica_v.engine.get(key, b"c")
        assert cell is not None, key
    # Nothing was wrongly truncated: the victim's own committed records
    # stayed visible.
    assert cluster.all_failures() == []


def test_catchup_after_rollover_supports_future_failover():
    """After an SSTable-ship catch-up, the revived node must be a fully
    capable leader candidate (n.lst reflects the shipped state)."""
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    leader = cluster.leader_of(cohort_id)
    victim = next(m for m in members if m != leader)
    keys = cohort_keys(cluster, cohort_id, 40)
    write_many(cluster, client, keys[:5])
    cluster.crash_node(victim)
    write_many(cluster, client, keys[5:])
    cluster.run(1.0)
    cluster.restart_node(victim)
    replica_v = cluster.replica(victim, cohort_id)
    cluster.run_until(lambda: replica_v.role == Role.FOLLOWER, limit=60.0,
                      what="victim caught up")
    cluster.run(0.5)
    # Now kill the leader; the cohort must recover (possibly via the
    # revived node) and serve every committed write.
    cluster.kill_leader(cohort_id)
    cluster.run_until(
        lambda: cluster.leader_of(cohort_id) not in (None, leader),
        limit=60.0, what="post-rollover failover")

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        return out

    results = run(cluster, read_all())
    assert all(r.found for r in results)
    assert cluster.all_failures() == []


def test_flush_threshold_respected_per_replica():
    cluster = make_cluster(flush_threshold=4_000)
    client = cluster.client()
    keys = cohort_keys(cluster, 1, 20)
    write_many(cluster, client, keys)
    cluster.run(1.0)
    leader = cluster.leader_of(1)
    replica = cluster.replica(leader, 1)
    # Memtable stays under ~threshold once flushes kick in.
    assert replica.engine.memtable.bytes_used < 3 * 4_000
    assert replica.engine.flushes >= 2
