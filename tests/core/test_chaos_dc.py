"""Datacenter-level chaos: whole-DC partitions and WAN degradation.

Covers three layers: schedule generation (flat configs must keep
drawing from the original fault pool, bit-identically), the applier
(``partition-dc`` / ``wan-degrade`` inject and repair exactly the
cross-DC link set), and end-to-end multi-DC storms staying clean.
"""

import pytest

from repro.chaos import ChaosConfig, FaultEvent, arm_schedule, run_chaos
from repro.chaos.nemesis import _FLAT_KINDS, FAULT_KINDS, generate_schedule
from repro.core import SpinnakerCluster


SMOKE_DC = ChaosConfig(duration=8.0, settle=8.0, n_dcs=3, n_nodes=6)


# -- schedule generation -----------------------------------------------------

def test_flat_schedules_never_contain_dc_kinds():
    config = ChaosConfig(duration=60.0)
    for seed in (1, 2, 3):
        kinds = {ev.kind for ev in generate_schedule(seed, config)}
        assert kinds <= set(_FLAT_KINDS)


def test_flat_schedule_is_unchanged_by_topology_knobs():
    """n_dcs=1 must reproduce pre-topology schedules bit-identically,
    whatever the (inert) WAN knobs say."""
    base = ChaosConfig(duration=60.0)
    tweaked = ChaosConfig(duration=60.0, wan_one_way=0.5,
                          wan_asymmetry=0.9)
    for seed in (1, 5, 9):
        assert generate_schedule(seed, base) == \
            generate_schedule(seed, tweaked)


def test_multi_dc_schedules_draw_dc_level_faults():
    config = ChaosConfig(duration=60.0, n_dcs=3)
    kinds = set()
    for seed in range(6):
        kinds |= {ev.kind for ev in generate_schedule(seed, config)}
    assert "partition-dc" in kinds and "wan-degrade" in kinds
    for seed in range(6):
        for ev in generate_schedule(seed, config):
            if ev.kind == "partition-dc":
                assert ev.a in config.dc_names()
            elif ev.kind == "wan-degrade":
                assert ev.a != ev.b
                assert {ev.a, ev.b} <= set(config.dc_names())
                assert ev.extra > 0.0


def test_chaos_config_builds_a_round_robin_topology():
    config = ChaosConfig(n_dcs=3, n_nodes=6)
    topo = config.topology()
    assert topo.dc_of("node0") == "dc0"
    assert topo.dc_of("node4") == "dc1"
    assert config.placement() == "spread"
    # Asymmetry: at least one ordered pair differs from its reverse.
    assert any(topo.wan_delay(a, b) != topo.wan_delay(b, a)
               for a in topo.dcs() for b in topo.dcs() if a != b)
    flat = ChaosConfig(n_dcs=1)
    assert flat.topology() is None
    assert flat.placement() == "ring"


# -- the applier -------------------------------------------------------------

def dc_cluster():
    config = ChaosConfig(n_dcs=3, n_nodes=6)
    cl = SpinnakerCluster(n_nodes=6, seed=23,
                          config=config.spinnaker_config(),
                          topology=config.topology(),
                          placement=config.placement())
    cl.start()
    return cl


def test_partition_dc_blocks_exactly_the_cross_dc_pairs():
    cl = dc_cluster()
    topo = cl.network.topology
    log = arm_schedule(cl, [FaultEvent(at=0.0, kind="partition-dc",
                                       duration=1.0, a="dc0")])
    cl.run(0.5)                               # mid-window
    inside = {n for n in cl.nodes if topo.dc_of(n) == "dc0"}
    outside = set(cl.nodes) - inside
    for a in inside:
        for b in outside:
            assert cl.network.is_blocked(a, b)
            assert cl.network.is_blocked(b, a)
    survivor_a, survivor_b = sorted(outside)[:2]
    assert not cl.network.is_blocked(survivor_a, survivor_b)
    cl.run(1.0)                               # past the repair
    assert not cl.network._blocked
    assert any("partition-dc" in line for line in log)


def test_wan_degrade_adds_directed_delay_and_clears():
    cl = dc_cluster()
    topo = cl.network.topology
    arm_schedule(cl, [FaultEvent(at=0.0, kind="wan-degrade",
                                 duration=1.0, a="dc0", b="dc1",
                                 extra=0.25)])
    cl.run(0.5)
    a_side = [n for n in cl.nodes if topo.dc_of(n) == "dc0"]
    b_side = [n for n in cl.nodes if topo.dc_of(n) == "dc1"]
    for a in a_side:
        for b in b_side:
            assert cl.network._extra_delays.get((a, b)) == 0.25
            # one-directional: the reverse path stays nominal
            assert not cl.network._extra_delays.get((b, a))
    cl.run(1.0)
    assert not any(cl.network._extra_delays.values())


def test_partition_dc_without_topology_is_a_noop():
    cl = SpinnakerCluster(n_nodes=3, seed=2)
    cl.start()
    log = arm_schedule(cl, [FaultEvent(at=0.0, kind="partition-dc",
                                       duration=1.0, a="dc0")])
    cl.run(0.5)
    assert not cl.network._blocked
    assert any("skipped" in line for line in log)


# -- end to end --------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 4])
def test_multi_dc_storm_stays_clean(seed):
    report = run_chaos(seed, SMOKE_DC)
    assert report.ok, report.format()
    assert report.counters["writes_acked"] > 0
    assert report.counters["reads"] > 0


def test_multi_dc_storm_is_reproducible():
    first = run_chaos(3, SMOKE_DC)
    second = run_chaos(3, SMOKE_DC)
    assert first.format() == second.format()
    assert first.schedule == second.schedule
