"""The chaos engine itself: smoke storms, determinism, shrinking.

``test_chaos_smoke`` is the tier-1 guarantee: a handful of fixed seeds
storm a live cluster and the invariant auditor, history checker, and
durability sweep must all come back clean.  The remaining tests pin the
engine's own machinery — schedule generation is a pure function of
``(seed, config)``, whole runs are bit-reproducible, ``ddmin`` actually
minimizes, and the emitted regression test is valid Python.
"""

import pytest

from repro.chaos import (ChaosConfig, ChaosReport, FaultEvent,
                         InvariantAuditor, InvariantViolation, ddmin,
                         format_regression_test, generate_schedule,
                         replay_schedule, run_chaos)
from repro.chaos.shrinker import ShrinkResult
from repro.core.replication import Role
from repro.storage.lsn import LSN

SMOKE = ChaosConfig(duration=8.0, settle=8.0)


@pytest.mark.parametrize("seed", [1, 3, 5, 7, 11])
def test_chaos_smoke(seed):
    report = run_chaos(seed, SMOKE)
    assert report.ok, report.format()
    assert report.counters["writes_acked"] > 0
    assert report.counters["reads"] > 0
    assert report.counters["audit_ticks"] > 0


def test_same_seed_reproduces_bit_for_bit():
    first = run_chaos(2, SMOKE)
    second = run_chaos(2, SMOKE)
    assert first.format() == second.format()
    assert first.schedule == second.schedule
    assert first.counters == second.counters


def test_different_seeds_differ():
    assert generate_schedule(1, SMOKE) != generate_schedule(2, SMOKE)


def test_schedule_respects_budgets():
    config = ChaosConfig(duration=60.0)
    schedule = generate_schedule(4, config)
    assert schedule, "a 60s storm must inject something"
    times = [ev.at for ev in schedule]
    assert times == sorted(times)
    assert all(0.0 < t < config.duration for t in times)
    disk_losses = [ev for ev in schedule if ev.kind == "lose-disk"]
    assert len(disk_losses) <= config.max_disk_losses
    for ev in schedule:
        if ev.duration is not None:
            assert ev.duration <= config.max_repair + 1e-9


def test_replay_schedule_matches_original_run():
    report = run_chaos(6, SMOKE)
    replayed = replay_schedule(6, SMOKE, report.schedule)
    assert replayed.format() == report.format()


# ---------------------------------------------------------------------------
# ddmin + regression-test emission
# ---------------------------------------------------------------------------

def test_ddmin_finds_minimal_failing_pair():
    calls = []

    def fails(subset):
        calls.append(list(subset))
        return {3, 7} <= set(subset)

    result = ddmin(list(range(1, 11)), fails)
    assert result == [3, 7]


def test_ddmin_single_culprit():
    assert ddmin(list(range(20)), lambda s: 13 in s) == [13]


def test_ddmin_budget_returns_best_so_far():
    result = ddmin(list(range(1, 11)),
                   lambda s: {3, 7} <= set(s), max_runs=3)
    assert {3, 7} <= set(result)


def test_format_regression_test_is_valid_python():
    config = ChaosConfig(duration=8.0)
    events = [
        FaultEvent(at=1.5, kind="crash-node", duration=0.5, node="node1"),
        FaultEvent(at=3.0, kind="partition-oneway", duration=2.0,
                   a="node2", b="node3"),
    ]
    report = ChaosReport(seed=9, config=config, schedule=events,
                         fault_log=[], invariant_violations=[],
                         history_violations=[], durability_failures=[],
                         counters={})
    result = ShrinkResult(failed=True, seed=9, config=config,
                          original=events * 3, minimized=events,
                          report=report, replays=12)
    source = format_regression_test(result)
    compile(source, "<regression>", "exec")        # must parse
    assert "replay_schedule(seed=9" in source
    assert source.count("FaultEvent(") >= 2


# ---------------------------------------------------------------------------
# Invariant auditor unit tests (against a hand-built fake cluster)
# ---------------------------------------------------------------------------

class _FakeSim:
    now = 42.0


class _FakeEngine:
    checkpoint_lsn = LSN.zero()


class _FakeWal:
    def __init__(self, records=()):
        self._records = list(records)

    def write_records(self, cohort_id, after=LSN.zero(), upto=None):
        return [r for r in self._records
                if r.lsn > after and (upto is None or r.lsn <= upto)]

    def min_retained_lsn(self, cohort_id):
        return LSN.zero()

    def skipped_lsns(self, cohort_id):
        return set()


class _FakeRecord:
    def __init__(self, lsn, version=1):
        self.lsn = lsn
        self.key = b"k"
        self.colname = b"c"
        self.value = b"v%d" % version
        self.version = version
        self.tombstone = False


class _FakeReplica:
    def __init__(self, role=Role.FOLLOWER, epoch=1,
                 committed=LSN.zero(), records=()):
        self.role = role
        self.epoch = epoch
        self.open_for_writes = role == Role.LEADER
        self.committed_lsn = committed
        self.catchup_floor = LSN.zero()
        self.engine = _FakeEngine()
        self._records = records


class _FakeNode:
    def __init__(self, replicas):
        self.alive = True
        self.incarnation = 1
        self.replicas = replicas
        self.wal = _FakeWal()


class _FakeCohort:
    def __init__(self, cohort_id, members):
        self.cohort_id = cohort_id
        self.members = members


class _FakePartitioner:
    def __init__(self, cohorts):
        self.cohorts = cohorts


class _FakeCluster:
    def __init__(self, nodes, cohorts):
        self.sim = _FakeSim()
        self.nodes = nodes
        self.partitioner = _FakePartitioner(cohorts)

    def all_failures(self):
        return []


def _two_node_cluster(rep_a, rep_b):
    nodes = {"a": _FakeNode({0: rep_a}), "b": _FakeNode({0: rep_b})}
    for node in nodes.values():
        (replica,) = node.replicas.values()
        node.wal = _FakeWal(replica._records)
    return _FakeCluster(nodes, [_FakeCohort(0, ["a", "b"])])


def test_auditor_flags_two_leaders_in_same_epoch():
    cluster = _two_node_cluster(_FakeReplica(Role.LEADER, epoch=3),
                                _FakeReplica(Role.LEADER, epoch=3))
    auditor = InvariantAuditor(cluster)
    auditor.audit_tick()
    assert [v.rule for v in auditor.violations] == ["leader-uniqueness"]
    assert "epoch 3" in auditor.violations[0].detail


def test_auditor_allows_leaders_in_different_epochs():
    # A deposed leader that has not yet heard of the new epoch is a
    # liveness wrinkle, not a safety violation.
    cluster = _two_node_cluster(_FakeReplica(Role.LEADER, epoch=3),
                                _FakeReplica(Role.LEADER, epoch=4))
    auditor = InvariantAuditor(cluster)
    auditor.audit_tick()
    assert auditor.violations == []


def test_auditor_flags_committed_lsn_regression_within_incarnation():
    replica = _FakeReplica(committed=LSN(1, 5))
    cluster = _two_node_cluster(replica, _FakeReplica())
    auditor = InvariantAuditor(cluster)
    auditor.audit_tick()
    replica.committed_lsn = LSN(1, 3)
    auditor.audit_tick()
    rules = [v.rule for v in auditor.violations]
    assert rules == ["committed-lsn-monotonicity"]


def test_auditor_allows_lsn_reset_across_incarnations():
    replica = _FakeReplica(committed=LSN(1, 5))
    cluster = _two_node_cluster(replica, _FakeReplica())
    auditor = InvariantAuditor(cluster)
    auditor.audit_tick()
    cluster.nodes["a"].incarnation = 2     # crashed and restarted
    replica.committed_lsn = LSN.zero()
    auditor.audit_tick()
    assert auditor.violations == []


def test_auditor_flags_missing_committed_record():
    recs = [_FakeRecord(LSN(1, 1)), _FakeRecord(LSN(1, 2))]
    rep_a = _FakeReplica(committed=LSN(1, 2), records=recs)
    rep_b = _FakeReplica(committed=LSN(1, 2), records=recs[:1])
    cluster = _two_node_cluster(rep_a, rep_b)
    auditor = InvariantAuditor(cluster)
    auditor._check_log_prefixes()
    assert [v.rule for v in auditor.violations] == ["log-prefix"]
    assert "missing from b" in auditor.violations[0].detail


def test_auditor_respects_catchup_floor():
    # b got record 1.1 as a shipped SSTable, not a log record; its
    # catch-up floor covers the hole.
    recs = [_FakeRecord(LSN(1, 1)), _FakeRecord(LSN(1, 2))]
    rep_a = _FakeReplica(committed=LSN(1, 2), records=recs)
    rep_b = _FakeReplica(committed=LSN(1, 2), records=recs[1:])
    rep_b.catchup_floor = LSN(1, 1)
    cluster = _two_node_cluster(rep_a, rep_b)
    auditor = InvariantAuditor(cluster)
    auditor._check_log_prefixes()
    assert auditor.violations == []


def test_auditor_flags_diverging_values():
    rep_a = _FakeReplica(committed=LSN(1, 1),
                         records=[_FakeRecord(LSN(1, 1), version=1)])
    rep_b = _FakeReplica(committed=LSN(1, 1),
                         records=[_FakeRecord(LSN(1, 1), version=2)])
    cluster = _two_node_cluster(rep_a, rep_b)
    auditor = InvariantAuditor(cluster)
    auditor._check_log_prefixes()
    assert [v.rule for v in auditor.violations] == ["log-prefix"]
    assert "diverge" in auditor.violations[0].detail


def test_violation_str_is_stable():
    v = InvariantViolation(at=1.25, rule="leader-uniqueness", detail="x")
    assert str(v) == "[t=1.2500] leader-uniqueness: x"
