"""Tests for topology-aware replica placement and leader preference.

The ``ring`` policy must stay byte-for-byte the paper's chained
declustering; ``spread`` and ``local`` trade WAN latency against
whole-DC survivability (§ the consistency/latency menu in DESIGN.md).
"""

import pytest

from repro.core.partition import RangePartitioner, preference_order
from repro.core.rebalance import _pick_residents
from repro.sim.topology import Topology


def three_dc_topology(n_nodes=6, preferred=None):
    topo = Topology(wan_one_way=0.02, preferred_dc=preferred)
    for i in range(n_nodes):
        topo.place(f"n{i}", f"dc{i % 3}")
    return topo


NODES = [f"n{i}" for i in range(6)]


# -- policy validation -------------------------------------------------------

def test_unknown_policy_is_rejected():
    with pytest.raises(ValueError, match="unknown placement"):
        RangePartitioner(NODES, placement="zigzag",
                         topology=three_dc_topology())


def test_topology_aware_policies_require_a_topology():
    for policy in ("spread", "local"):
        with pytest.raises(ValueError, match="needs a topology"):
            RangePartitioner(NODES, placement=policy)


def test_local_policy_requires_a_preferred_dc():
    with pytest.raises(ValueError, match="preferred_dc"):
        RangePartitioner(NODES, placement="local",
                         topology=three_dc_topology(preferred=None))


# -- ring stays the legacy layout, even with a topology attached -------------

def test_ring_ignores_the_topology():
    flat = RangePartitioner(NODES, keyspace=600)
    placed = RangePartitioner(NODES, keyspace=600, placement="ring",
                              topology=three_dc_topology())
    for a, b in zip(flat.cohorts, placed.cohorts):
        assert a.members == b.members
        assert a.members[0] == NODES[a.cohort_id]


# -- spread: every cohort covers as many DCs as rf allows --------------------

def test_spread_cohorts_span_three_datacenters():
    topo = three_dc_topology()
    part = RangePartitioner(NODES, keyspace=600, placement="spread",
                            topology=topo)
    for i, cohort in enumerate(part.cohorts):
        assert cohort.members[0] == NODES[i]      # base owner keeps range
        dcs = {topo.dc_of(m) for m in cohort.members}
        assert dcs == {"dc0", "dc1", "dc2"}


def test_spread_degrades_gracefully_with_fewer_dcs_than_rf():
    topo = Topology(wan_one_way=0.02)
    for i, node in enumerate(NODES):
        topo.place(node, f"dc{i % 2}")            # only two DCs
    part = RangePartitioner(NODES, keyspace=600, placement="spread",
                            topology=topo)
    for cohort in part.cohorts:
        assert len(cohort.members) == 3
        assert {topo.dc_of(m) for m in cohort.members} == {"dc0", "dc1"}


# -- local: majority in the preferred DC, remainder spread -------------------

def test_local_policy_puts_a_majority_in_the_preferred_dc():
    topo = three_dc_topology(preferred="dc0")
    part = RangePartitioner(NODES, keyspace=600, placement="local",
                            topology=topo)
    for i, cohort in enumerate(part.cohorts):
        assert cohort.members[0] == NODES[i]
        in_preferred = sum(1 for m in cohort.members
                           if topo.dc_of(m) == "dc0")
        assert in_preferred >= 2                  # majority of rf=3
        # The remainder still reaches outside the preferred DC.
        assert len({topo.dc_of(m) for m in cohort.members}) >= 2


# -- leader preference -------------------------------------------------------

def test_preference_order_is_identity_without_topology():
    members = ("n3", "n1", "n2")
    assert preference_order(members, None) == members
    topo = three_dc_topology(preferred=None)
    assert preference_order(members, topo) == members


def test_preference_order_floats_preferred_dc_members_first():
    topo = three_dc_topology(preferred="dc1")     # n1, n4 live there
    got = preference_order(("n0", "n1", "n2", "n4"), topo)
    assert got == ("n1", "n4", "n0", "n2")        # stable within groups


# -- elastic growth keeps the DC spread --------------------------------------

def test_pick_residents_is_legacy_prefix_without_topology():
    members = ("a", "b", "c")
    assert _pick_residents(members, "j", 2, None) == ("a", "b")


def test_pick_residents_covers_dcs_the_joiner_misses():
    topo = three_dc_topology()
    topo.place("j", "dc0")
    # Joiner already covers dc0, so residents come from dc1/dc2 first
    # even though a dc0 member heads the list.
    got = _pick_residents(("n0", "n1", "n2"), "j", 2, topo)
    assert got == ("n1", "n2")
    # With no un-covered DC left, fall back to member order.
    got = _pick_residents(("n0", "n3"), "j", 2, topo)   # both in dc0
    assert got == ("n0", "n3")
