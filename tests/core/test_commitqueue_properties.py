"""Property tests on the commit queue: LSN-ordered, prefix-closed commits
no matter how forces and acks interleave."""

from hypothesis import given, settings, strategies as st

from repro.core.commitqueue import CommitQueue
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord


def wrec(seq):
    return WriteRecord(lsn=LSN(1, seq), cohort_id=0, key=b"k",
                       colname=b"c", value=b"v", version=seq)


@given(st.integers(min_value=1, max_value=12), st.data())
@settings(max_examples=150)
def test_commits_always_form_a_prefix(n, data):
    """Add n writes, then force/ack them in arbitrary order: after every
    step, the committed set is exactly a prefix of the LSN sequence."""
    queue = CommitQueue(acks_needed=1)
    committed = []
    for seq in range(1, n + 1):
        queue.add(wrec(seq), on_commit=lambda r: committed.append(
            r.lsn.seq))
    events = ([("force", seq) for seq in range(1, n + 1)]
              + [("ack", seq) for seq in range(1, n + 1)])
    order = data.draw(st.permutations(events))
    for kind, seq in order:
        if kind == "force":
            queue.mark_forced(LSN(1, seq))
        else:
            queue.add_ack(LSN(1, seq), "f1")
        queue.advance_leader()
        assert committed == list(range(1, len(committed) + 1))
    assert committed == list(range(1, n + 1))
    assert queue.committed_lsn == LSN(1, n)


@given(st.integers(min_value=1, max_value=12), st.data())
@settings(max_examples=100)
def test_cumulative_acks_equivalent_to_individual(n, data):
    """A single cumulative ack at the top LSN commits exactly what
    individual acks for every LSN would."""
    individual = CommitQueue(acks_needed=1)
    cumulative = CommitQueue(acks_needed=1)
    for seq in range(1, n + 1):
        individual.add(wrec(seq))
        cumulative.add(wrec(seq))
        individual.mark_forced(LSN(1, seq))
        cumulative.mark_forced(LSN(1, seq))
    upto = data.draw(st.integers(min_value=1, max_value=n))
    for seq in range(1, upto + 1):
        individual.add_ack(LSN(1, seq), "f1")
    cumulative.add_ack_upto(LSN(1, upto), "f1")
    a = [r.lsn for r in individual.advance_leader()]
    b = [r.lsn for r in cumulative.advance_leader()]
    assert a == b
    assert individual.committed_lsn == cumulative.committed_lsn


@given(st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                max_size=15, unique=True), st.data())
@settings(max_examples=100)
def test_follower_apply_commit_is_prefix_closed(seqs, data):
    queue = CommitQueue()
    for seq in sorted(seqs):
        queue.add(wrec(seq))
    upto = data.draw(st.integers(min_value=0, max_value=25))
    committed = queue.apply_commit(LSN(1, upto))
    assert [r.lsn.seq for r in committed] == [s for s in sorted(seqs)
                                              if s <= upto]
    assert all(s > upto for s in
               (lsn.seq for lsn in queue.pending_lsns()))
