"""WAN regression tests: RTT-derived client timeouts, jittered retry
backoff, lease survival over slow coordination links, nearest-replica
timeline routing, and ``wan_hop`` span tagging.

Each test pins one of the LAN-assumption fixes from the multi-datacenter
sweep: hardcoded per-try/map-refresh budgets, lockstep retry storms
after a healed whole-DC partition, and heartbeat loops that misread a
merely-slow WAN link as a dead session.
"""

import pytest

from repro.chaos import FaultEvent, arm_schedule
from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.obs import RequestTracer
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.sim.topology import Topology


def fast_config(**overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def run_client(cluster, gen, limit=30.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit,
                      what="client op")
    return proc.result()


# -- satellite 1: per-try / map-refresh budgets derive from the RTT ----------

def test_flat_network_keeps_the_configured_timeout_floors():
    cl = SpinnakerCluster(n_nodes=3, config=fast_config(), seed=1)
    client = cl.client()
    assert client._per_try == cl.config.client_try_timeout == 2.0
    assert client._map_timeout == cl.config.client_map_timeout == 1.0


def test_wan_topology_raises_the_derived_timeouts():
    topo = Topology(wan_one_way=1.5)          # RTT ~3s > the 2s floor
    topo.place("client0", "dc1")              # nodes default to dc0
    cl = SpinnakerCluster(n_nodes=3, config=fast_config(), seed=1,
                          topology=topo)
    client = cl.client()
    rtt = cl.network.rtt_bound()
    assert rtt > 3.0
    assert client._per_try == pytest.approx(4.0 * rtt)
    assert client._map_timeout == pytest.approx(4.0 * rtt)


def test_cross_wan_put_succeeds_without_burning_retries():
    """Regression: with the old hardcoded 2.0s per-try budget a 3s-RTT
    link turned every op into a retry storm; the derived budget rides
    out the latency and completes first try."""
    topo = Topology(wan_one_way=1.5)
    topo.place("client0", "dc1")
    cl = SpinnakerCluster(n_nodes=3, seed=7, topology=topo,
                          config=fast_config(client_op_timeout=60.0))
    cl.start()
    client = cl.client()

    def scenario():
        put = yield from client.put(b"far", b"c", b"away")
        got = yield from client.get(b"far", b"c", consistent=True)
        return put, got

    put, got = run_client(cluster=cl, gen=scenario(), limit=60.0)
    assert put.version == 1
    assert got.found and got.value == b"away"
    assert client.retries == 0
    assert cl.all_failures() == []


# -- satellite 2: jittered exponential backoff -------------------------------

def test_backoff_grace_then_doubling_up_to_the_cap():
    cl = SpinnakerCluster(n_nodes=3, config=fast_config(), seed=3)
    client = cl.client()
    base = cl.config.client_retry_backoff
    cap = cl.config.client_retry_backoff_cap
    horizon = 1e9
    # First four attempts ride at the base step (brief unavailability —
    # a draining migration, a leader handoff — is ridden out at pace).
    for attempt in (1, 2, 3, 4):
        wait = client._backoff(attempt, horizon)
        assert base / 2 <= wait <= base
    # Then exponential: step doubles per attempt until the cap.
    assert base <= client._backoff(5, horizon) <= 2 * base
    assert 2 * base <= client._backoff(6, horizon) <= 4 * base
    for attempt in (8, 9, 20):
        wait = client._backoff(attempt, horizon)
        assert cap / 2 <= wait <= cap


def test_backoff_clamps_to_the_op_deadline():
    cl = SpinnakerCluster(n_nodes=3, config=fast_config(), seed=3)
    client = cl.client()
    assert client._backoff(1, cl.sim.now + 1e-4) <= 1e-4
    assert client._backoff(1, cl.sim.now - 1.0) == 0.0


def test_backoff_jitter_desynchronizes_simultaneous_clients():
    """Clients that all failed at the same instant must not re-arrive in
    lockstep: equal-jitter draws from per-client RNG streams spread the
    retry schedule across [step/2, step]."""
    cl = SpinnakerCluster(n_nodes=3, config=fast_config(), seed=5)
    clients = [cl.client(f"c{i}") for i in range(8)]
    waits = [c._backoff(1, 1e9) for c in clients]
    assert len(set(waits)) == len(waits)
    assert all(0.01 <= w <= 0.02 for w in waits)


def test_healed_dc_partition_does_not_thundering_herd():
    """Clients stranded by a whole-DC partition all fail together; after
    the heal their retries must complete at distinct times (jittered
    backoff), not as a synchronized herd."""
    topo = Topology(wan_one_way=0.002)        # fast WAN: keep the sim short
    n_clients = 5
    for i in range(n_clients):
        topo.place(f"c{i}", "dc1")            # nodes stay in default dc0
    cl = SpinnakerCluster(n_nodes=3, seed=11, topology=topo,
                          config=fast_config())
    cl.start()
    clients = [cl.client(f"c{i}") for i in range(n_clients)]
    done = {}

    def scenario(client):
        result = yield from client.put(b"herd", b"c",
                                       client.name.encode())
        done[client.name] = cl.sim.now
        return result

    log = arm_schedule(cl, [FaultEvent(at=0.0, kind="partition-dc",
                                       duration=1.0, a="dc1")])
    procs = [spawn(cl.sim, scenario(c)) for c in clients]
    cl.run_until(lambda: all(p.triggered for p in procs), limit=30.0,
                 what="herd puts")
    assert any("partition-dc" in line for line in log)
    assert len(done) == n_clients
    assert all(c.retries >= 1 for c in clients)
    heal_time = 1.0
    assert all(t > heal_time for t in done.values())
    assert len(set(done.values())) == n_clients   # de-synchronized
    assert cl.all_failures() == []


# -- satellite 4: leases across a merely-slow WAN ----------------------------

def test_leases_survive_slow_wan_coordination_link():
    """Nodes heartbeating the coordination service across a 0.8s-RTT WAN
    link must not flap their sessions: the heartbeat RPC budget carries
    an RTT allowance and the lease deadline is anchored at the send time
    of the last acked heartbeat.  (Under the old bare ``interval``
    budget and ack-time anchor, every node here lost its session within
    a few beats despite a perfectly healthy link.)"""
    topo = Topology(wan_one_way=0.4)          # RTT ~0.80s
    for i in range(3):
        topo.place(f"node{i}", "dc1")         # "coord" stays in dc0
    cl = SpinnakerCluster(n_nodes=3, seed=13, topology=topo,
                          config=fast_config())
    cl.start(ready_timeout=120.0)
    cl.run(10.0)                              # many heartbeat rounds
    assert sum(n.session_losses for n in cl.nodes.values()) == 0
    assert cl.is_ready()
    assert cl.all_failures() == []


# -- tentpole: nearest-replica timeline routing + wan_hop spans --------------

def spread_cluster(seed=17, n_nodes=6, **kwargs):
    topo = Topology(wan_one_way=0.002, preferred_dc="dc0")
    for i in range(n_nodes):
        topo.place(f"node{i}", f"dc{i % 3}")
    topo.place("local", "dc0")
    topo.place("remote", "dc1")
    cl = SpinnakerCluster(n_nodes=n_nodes, seed=seed, topology=topo,
                          placement="spread", config=fast_config(),
                          **kwargs)
    return cl, topo


def test_timeline_reads_route_to_the_clients_own_dc():
    cl, topo = spread_cluster()
    client = cl.client("remote")
    for key in (b"a", b"b", b"c", b"q", b"z"):
        cohort = client._cohort(key)
        for _ in range(8):
            target = client._timeline_target(cohort)
            assert topo.dc_of(target) == "dc1"


def test_timeline_routing_falls_back_when_local_replica_excluded():
    cl, topo = spread_cluster()
    client = cl.client("remote")
    cohort = client._cohort(b"a")
    local = [m for m in cohort.members if topo.dc_of(m) == "dc1"]
    assert len(local) == 1                    # spread: one replica per DC
    target = client._timeline_target(cohort, exclude=local[0])
    assert target in cohort.members and target != local[0]


def test_route_spans_mark_wan_hops():
    tracer = RequestTracer(sample_every=1)
    cl, topo = spread_cluster(seed=19, request_tracer=tracer)
    cl.start()
    remote = cl.client("remote")                  # dc1
    local = cl.client("local")                    # dc0, same as leaders

    def scenario():
        yield from remote.put(b"k", b"c", b"v")   # crosses into dc0
        yield from local.get(b"k", b"c", consistent=True)

    run_client(cl, scenario())
    routes = [s for s in tracer.spans() if s.name == "route"]
    assert routes
    # Leaders sit in the preferred DC, so every route lands in dc0 …
    assert all(topo.dc_of(s.node) == "dc0" for s in routes)
    # … and only the remote client's ops are tagged as WAN hops.
    crossed = [s for s in routes if s.fields.get("wan_hop")]
    stayed = [s for s in routes if "wan_hop" not in s.fields]
    assert crossed and stayed
