"""FailureSchedule driving a real cluster: scripted outage timelines."""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.failure import FailureSchedule
from repro.sim.process import spawn, timeout


def make_cluster(seed=67):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2, client_op_timeout=8.0)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=seed)
    cluster.start()
    return cluster


def test_scheduled_rolling_outage_with_continuous_writes():
    cluster = make_cluster()
    sim = cluster.sim
    sched = FailureSchedule(sim)
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    # Roll each member down for 2 s, staggered 4 s apart.
    for i, member in enumerate(members):
        at = sim.now + 1.0 + 4.0 * i
        sched.crash_for(at, duration=2.0, target=cluster.nodes[member])

    client = cluster.client()
    keys = []
    i = 0
    while len(keys) < 60:
        key = b"fs-%d" % i
        if cluster.partitioner.locate(key).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    acked = []
    state = {"done": False}

    def writer():
        from repro.core.datamodel import DatastoreError
        for key in keys:
            try:
                yield from client.put(key, b"c", b"v")
                acked.append(key)
            except DatastoreError:
                pass
            yield timeout(sim, 0.2)
        state["done"] = True

    spawn(sim, writer())
    cluster.run_until(lambda: state["done"], limit=240.0, what="writer")
    cluster.run(3.0)
    # The schedule ran as written.
    assert len(sched.log) == 6
    assert {label.split()[0] for _t, label in sched.log} == {
        "crash", "restart"}
    # Single-node outages never block the cohort for long: the vast
    # majority of paced writes were acknowledged...
    assert len(acked) >= len(keys) - 10
    # ...and every acknowledged write is durable.

    def read_back():
        out = []
        for key in acked:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        return out

    proc = spawn(sim, read_back())
    cluster.run_until(lambda: proc.triggered, limit=120.0, what="reads")
    assert all(r.found for r in proc.result())
    assert cluster.all_failures() == []


def test_scheduled_partition_heals_cleanly():
    cluster = make_cluster(seed=68)
    sim = cluster.sim
    sched = FailureSchedule(sim)
    cohort_id = 1
    leader = cluster.leader_of(cohort_id)
    followers = [m for m in cluster.partitioner.cohort(cohort_id).members
                 if m != leader]
    for f in followers:
        sched.partition_at(sim.now + 0.5, cluster.network, leader, f)
    sched.heal_at(sim.now + 2.5, cluster.network)

    client = cluster.client()
    key = next(b"fp-%d" % i for i in range(1000)
               if cluster.partitioner.locate(
                   b"fp-%d" % i).cohort_id == cohort_id)
    outcome = {}

    def scenario():
        from repro.core.datamodel import RequestTimeout
        yield timeout(sim, 1.0)  # inside the partition window
        start = sim.now
        yield from client.put(key, b"c", b"v")  # must wait for the heal
        outcome["write_done_at"] = sim.now
        outcome["blocked_for"] = sim.now - start

    proc = spawn(sim, scenario())
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="write")
    # The write could not commit before the heal at t=2.5.
    assert outcome["write_done_at"] >= 2.5
    assert cluster.all_failures() == []


def test_scheduled_disk_loss_rejoins_via_catchup():
    """lose_disk_at wipes a follower's log and SSTables; the node must
    come back through catch-up with all committed data intact."""
    cluster = make_cluster(seed=69)
    sim = cluster.sim
    client = cluster.client()
    cohort_id = 0
    leader = cluster.leader_of(cohort_id)
    victim = next(m for m in cluster.partitioner.cohort(cohort_id).members
                  if m != leader)
    keys = []
    i = 0
    while len(keys) < 30:
        key = b"dl-%d" % i
        if cluster.partitioner.locate(key).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    state = {"done": False}

    def writer():
        for key in keys:
            yield from client.put(key, b"c", b"v-" + key)
            yield timeout(sim, 0.1)
        state["done"] = True

    sched = FailureSchedule(sim)
    sched.lose_disk_at(1.3, cluster.nodes[victim])
    spawn(sim, writer())
    cluster.run_until(lambda: state["done"], limit=120.0, what="writer")
    cluster.run(8.0)  # let catch-up finish

    assert [label for _t, label in sched.log] == [f"lose-disk {victim}"]
    node = cluster.nodes[victim]
    assert node.alive
    replica = node.replicas[cohort_id]
    assert replica.role in (Role.FOLLOWER, Role.LEADER)
    # The wiped node holds every committed write again — either as
    # caught-up log records or shipped SSTables below its catch-up floor.
    for key in keys:
        cell = replica.engine.get(key, b"c")
        assert cell is not None and cell.value == b"v-" + key
    assert cluster.all_failures() == []


def test_leader_cut_off_from_coord_steps_down():
    """A leader partitioned from the coordination service loses its
    session lease and must step down before a rival wins the election —
    strong reads never go stale (§7.2)."""
    cluster = make_cluster(seed=70)
    sim = cluster.sim
    cohort_id = 0
    old_leader = cluster.leader_of(cohort_id)
    assert old_leader is not None
    cluster.network.block(old_leader, "coord")
    cluster.run_until(
        lambda: (cluster.leader_of(cohort_id) not in (None, old_leader)),
        limit=60.0, what="new leader")
    node = cluster.nodes[old_leader]
    assert node.session_losses >= 1
    replica = node.replicas[cohort_id]
    assert replica.role != Role.LEADER
    assert not replica.open_for_writes

    # Heal; the deposed node rejoins as a follower and writes flow.
    cluster.network.heal()
    client = cluster.client()
    key = next(b"sl-%d" % i for i in range(1000)
               if cluster.partitioner.locate(
                   b"sl-%d" % i).cohort_id == cohort_id)
    proc = spawn(sim, client.put(key, b"c", b"v"))
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="write")
    cluster.run(10.0)  # rejoin + catch-up settle
    assert cluster.nodes[old_leader].zk.session is not None
    assert cluster.all_failures() == []
