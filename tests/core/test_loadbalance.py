"""Tests for graceful leadership transfer and rebalancing planning."""

import pytest

from repro.core import (DatastoreError, Role, SpinnakerCluster,
                        SpinnakerConfig)
from repro.core.loadbalance import plan_rebalance, transfer_leadership
from repro.core.partition import RangePartitioner, key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def make_cluster(n=5, seed=41):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=n, config=cfg, seed=seed)
    cluster.start()
    cluster.run(2.0)
    return cluster


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def cohort_keys(cluster, cohort_id, count):
    keys, i = [], 0
    while len(keys) < count:
        key = b"lb-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def test_transfer_moves_leadership_without_data_loss():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 8)

    def before():
        for key in keys[:4]:
            yield from client.put(key, b"c", b"pre")

    run(cluster, before())
    old_leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(old_leader, cohort_id)
    successor = replica.peers()[0]
    ok = run(cluster, transfer_leadership(replica, successor))
    assert ok is True
    cluster.run_until(lambda: cluster.leader_of(cohort_id) == successor,
                      limit=30.0, what="handoff")
    assert cluster.replica(successor, cohort_id).open_for_writes
    assert replica.role == Role.FOLLOWER

    def after():
        out = []
        for key in keys[:4]:
            out.append((yield from client.get(key, b"c",
                                              consistent=True)))
        for key in keys[4:]:
            yield from client.put(key, b"c", b"post")
        return out

    results = run(cluster, after())
    assert all(r.found and r.value == b"pre" for r in results)
    assert cluster.all_failures() == []
    # Old leader never died: it serves as a follower now.
    assert cluster.nodes[old_leader].alive


def test_transfer_bumps_epoch():
    cluster = make_cluster()
    cohort_id = 1
    old_leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(old_leader, cohort_id)
    epoch_before = replica.epoch
    successor = replica.peers()[0]
    assert run(cluster, transfer_leadership(replica, successor))
    cluster.run_until(lambda: cluster.leader_of(cohort_id) == successor,
                      limit=30.0, what="handoff")
    assert cluster.replica(successor, cohort_id).epoch > epoch_before


def test_transfer_refused_from_non_leader():
    cluster = make_cluster()
    cohort_id = 0
    leader = cluster.leader_of(cohort_id)
    follower = next(m for m in
                    cluster.partitioner.cohort(cohort_id).members
                    if m != leader)
    replica = cluster.replica(follower, cohort_id)
    assert run(cluster, transfer_leadership(replica, leader)) is False


def test_transfer_refused_to_non_member():
    cluster = make_cluster()
    cohort_id = 0
    leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader, cohort_id)
    outsider = next(n for n in cluster.nodes
                    if n not in replica.cohort.members)
    assert run(cluster, transfer_leadership(replica, outsider)) is False
    assert cluster.leader_of(cohort_id) == leader


def test_transfer_to_dead_successor_fails_cleanly():
    cluster = make_cluster()
    cohort_id = 2
    leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader, cohort_id)
    victim = replica.peers()[0]
    cluster.crash_node(victim)
    assert run(cluster, transfer_leadership(replica, victim)) is False
    assert cluster.leader_of(cohort_id) == leader
    assert replica.open_for_writes


def test_leader_crash_mid_drain_degrades_to_election():
    """The old leader dies while draining its queue: the handoff aborts,
    its session expiry triggers a normal election, and every write that
    was acked to a client survives."""
    cluster = make_cluster(seed=43)
    client = cluster.client()
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 10)

    def committed():
        for key in keys[:6]:
            yield from client.put(key, b"c", b"durable")

    run(cluster, committed())
    leader_name = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader_name, cohort_id)
    successor = replica.peers()[0]
    # Cut the follower->leader ack paths so in-flight writes stay
    # pending: the transfer's drain loop genuinely engages instead of
    # completing trivially between scheduler steps.
    for peer in replica.peers():
        cluster.network.block(peer, leader_name, symmetric=False)
    writers = [spawn(cluster.sim, client.put(key, b"c", b"inflight"))
               for key in keys[6:]]
    cluster.run_until(lambda: len(replica.queue) > 0, limit=5.0,
                      step=0.001, what="writes pending")
    handoff = spawn(cluster.sim, transfer_leadership(replica, successor))
    cluster.run(0.05)
    assert not handoff.triggered            # still draining
    cluster.kill_leader(cohort_id)
    cluster.network.heal()
    cluster.run_until(lambda: handoff.triggered, limit=30.0,
                      what="handoff aborts")
    assert handoff.result() is False
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="re-election")
    assert cluster.leader_of(cohort_id) != leader_name
    # Every acked write — committed before or retried across the crash —
    # must be readable; unacked in-flight writes may go either way.
    acked = list(keys[:6])
    cluster.run_until(lambda: all(w.triggered for w in writers),
                      limit=60.0, what="in-flight writes resolve")
    for key, writer in zip(keys[6:], writers):
        try:
            writer.result()
        except DatastoreError:
            continue
        acked.append(key)
    reader = cluster.client("client1")
    for key in acked:
        got = run(cluster, reader.get(key, b"c", consistent=True))
        assert got.found, key
    assert cluster.all_failures() == []


def test_successor_crash_after_naming_degrades_to_election():
    """The successor dies after being named in the leader znode but
    before re-owning it.  The znode still belongs to the old leader's
    session, so nothing expires on its own — the handoff watchdog must
    force an election, and no committed write may be lost."""
    cluster = make_cluster(seed=47)
    client = cluster.client()
    cohort_id = 1
    keys = cohort_keys(cluster, cohort_id, 4)

    def before():
        for key in keys:
            yield from client.put(key, b"c", b"durable")

    run(cluster, before())
    leader_name = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader_name, cohort_id)
    successor = replica.peers()[0]
    # Crash the successor at the exact sim instant the transfer
    # completes: the watch notification is still in flight, so the
    # successor never re-owns the znode.  (Advancing the clock even a
    # millisecond first would let its monitor run assume_leadership,
    # turning this into an ordinary leader crash.)
    state = {}

    def _crash_successor(_ev):
        node = cluster.nodes[successor]
        state["session"] = node.zk.session if node.zk else None
        node.crash()

    handoff = spawn(cluster.sim, transfer_leadership(replica, successor))
    handoff.add_callback(_crash_successor)
    cluster.run_until(lambda: handoff.triggered, limit=30.0,
                      what="handoff")
    assert handoff.result() is True
    if state.get("session") is not None:
        cluster.coord.expire_session_now(state["session"])
    # The leader znode still belongs to the old leader's live session,
    # so the successor's death expired nothing that names a leader.
    assert cluster.leader_of(cohort_id) is None
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="watchdog + re-election")
    new_leader = cluster.leader_of(cohort_id)
    assert new_leader != successor
    assert cluster.replica(new_leader, cohort_id).open_for_writes
    reader = cluster.client("client1")
    for key in keys:
        got = run(cluster, reader.get(key, b"c", consistent=True))
        assert got.found and got.value == b"durable"
    assert cluster.all_failures() == []


def test_plan_rebalance_restores_one_leader_per_node():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    # After a failure of A, B picked up A's cohort: B leads 0 and 1.
    leaders = {0: "B", 1: "B", 2: "C", 3: "D", 4: "E"}
    moves = plan_rebalance(part, leaders)
    assert len(moves) == 1
    cohort_id, src, dst = moves[0]
    assert src == "B"
    assert dst in part.cohort(cohort_id).members
    # Apply: everyone leads exactly one cohort.
    leaders[cohort_id] = dst
    counts = {}
    for leader in leaders.values():
        counts[leader] = counts.get(leader, 0) + 1
    assert all(count == 1 for count in counts.values())


def test_plan_rebalance_noop_when_balanced():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    leaders = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E"}
    assert plan_rebalance(part, leaders) == []


def test_plan_rebalance_skips_leaderless_cohorts():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    leaders = {0: "B", 1: "B", 2: None, 3: "D", 4: "E"}
    moves = plan_rebalance(part, leaders)
    assert all(cid != 2 for cid, _s, _d in moves)


def test_end_to_end_rebalance_after_failover():
    """Kill a leader, let another node absorb its cohort, then rebalance
    back to one leader per live node."""
    cluster = make_cluster()
    cohort_id = 0
    victim = cluster.leader_of(cohort_id)
    cluster.kill_leader(cohort_id)
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="failover")
    cluster.restart_node(victim)
    replica_v = cluster.replica(victim, cohort_id)
    cluster.run_until(lambda: replica_v.role == Role.FOLLOWER,
                      limit=30.0, what="victim rejoined")
    cluster.run(1.0)
    leaders = {c.cohort_id: cluster.leader_of(c.cohort_id)
               for c in cluster.partitioner.cohorts}
    counts = {}
    for leader in leaders.values():
        counts[leader] = counts.get(leader, 0) + 1
    assert max(counts.values()) == 2  # somebody leads two cohorts
    moves = plan_rebalance(cluster.partitioner, leaders)
    assert moves
    for moved_cohort, src, dst in moves:
        replica = cluster.replica(src, moved_cohort)
        assert run(cluster, transfer_leadership(replica, dst)) is True
        cluster.run_until(
            lambda: cluster.leader_of(moved_cohort) == dst,
            limit=30.0, what="rebalance handoff")
    leaders = {c.cohort_id: cluster.leader_of(c.cohort_id)
               for c in cluster.partitioner.cohorts}
    counts = {}
    for leader in leaders.values():
        counts[leader] = counts.get(leader, 0) + 1
    assert max(counts.values()) == 1
    assert cluster.all_failures() == []
