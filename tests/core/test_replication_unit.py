"""Unit-level tests of the replication state machine (§5, Fig. 4):
epoch fencing, commit ordering, commit messages, piggybacking."""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.messages import Ack, Commit, Propose
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord


def make_cluster(**overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.25)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=21)
    cluster.start()
    return cluster


def leader_and_follower(cluster, cohort_id=0):
    cluster.run(2.0)  # let every monitor finish its bootstrap round
    leader_name = cluster.leader_of(cohort_id)
    leader = cluster.replica(leader_name, cohort_id)
    follower_name = next(m for m in
                         cluster.partitioner.cohort(cohort_id).members
                         if m != leader_name)
    return leader, cluster.replica(follower_name, cohort_id)


def wrec(replica, seq, key=b"k", value=b"v", epoch=None):
    return WriteRecord(lsn=LSN(epoch or replica.epoch, seq),
                       cohort_id=replica.cohort_id, key=key,
                       colname=b"c", value=value, version=seq)


class FakeRequest:
    """Stands in for a network Request in direct handler tests."""

    def __init__(self, src):
        self.src = src
        self.payload = None
        self.responses = []

    def with_payload(self, payload):
        self.payload = payload
        return self

    def respond(self, value, size=0):
        self.responses.append(value)


def drive(cluster, gen):
    proc = spawn(cluster.sim, gen)
    cluster.run(5.0)
    assert proc.triggered
    return proc


def test_follower_rejects_stale_epoch_propose():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    stale = Propose(cohort_id=follower.cohort_id,
                    epoch=follower.epoch - 1,
                    records=(wrec(follower, 999, epoch=1),))
    req = FakeRequest(src="impostor").with_payload(stale)
    drive(cluster, follower.handle_propose(req))
    assert req.responses == []          # no ack for a stale leader
    assert not cluster.nodes[follower.node.name].wal.contains(
        follower.cohort_id, LSN(1, 999))


def test_follower_adopts_higher_epoch_from_propose():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    next_seq = follower.node.wal.last_lsn(follower.cohort_id).seq + 1
    higher = Propose(cohort_id=follower.cohort_id,
                     epoch=follower.epoch + 3,
                     records=(WriteRecord(
                         lsn=LSN(follower.epoch + 3, next_seq),
                         cohort_id=follower.cohort_id, key=b"k",
                         colname=b"c", value=b"v", version=1),))
    req = FakeRequest(src="new-leader").with_payload(higher)
    drive(cluster, follower.handle_propose(req))
    assert follower.epoch == higher.epoch
    assert follower.leader == "new-leader"
    assert len(req.responses) == 1
    ack = req.responses[0]
    assert isinstance(ack, Ack) and ack.epoch == higher.epoch


def test_recovering_replica_ignores_proposes():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    follower.role = Role.RECOVERING
    msg = Propose(cohort_id=follower.cohort_id, epoch=follower.epoch,
                  records=(wrec(follower, 900),))
    req = FakeRequest(src=leader.node.name).with_payload(msg)
    drive(cluster, follower.handle_propose(req))
    assert req.responses == []  # would create a log gap (§6.1)


def test_commit_message_applies_pending_and_logs_marker():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    seq = follower.node.wal.last_lsn(follower.cohort_id).seq + 1
    record = WriteRecord(lsn=LSN(follower.epoch, seq),
                         cohort_id=follower.cohort_id, key=b"cmt-key",
                         colname=b"c", value=b"v", version=1)
    msg = Propose(cohort_id=follower.cohort_id, epoch=follower.epoch,
                  records=(record,))
    req = FakeRequest(src=leader.node.name).with_payload(msg)
    drive(cluster, follower.handle_propose(req))
    assert follower.engine.get(b"cmt-key", b"c") is None  # pending only
    follower.handle_commit(leader.node.name, Commit(
        cohort_id=follower.cohort_id, epoch=follower.epoch,
        lsn=record.lsn))
    assert follower.engine.get(b"cmt-key", b"c").value == b"v"
    assert follower.committed_lsn == record.lsn
    assert follower.node.wal.last_committed_lsn(
        follower.cohort_id) == record.lsn


def test_stale_commit_message_ignored():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    before = follower.committed_lsn
    follower.handle_commit("impostor", Commit(
        cohort_id=follower.cohort_id, epoch=follower.epoch - 1,
        lsn=LSN(9, 9)))
    assert follower.committed_lsn == before


def test_piggybacked_commit_info_applies_at_follower():
    cluster = make_cluster(piggyback_commits=True)
    client = cluster.client()
    cohort_id = 0
    keys, i = [], 0
    while len(keys) < 3:
        key = b"pb-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1

    def writes():
        for key in keys:
            yield from client.put(key, b"c", b"v")

    proc = spawn(cluster.sim, writes())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="writes")
    # Followers learned commit state from piggybacked info on the NEXT
    # propose — well before any commit_period tick.
    leader, follower = leader_and_follower(cluster, cohort_id)
    assert follower.committed_lsn >= LSN(leader.epoch, 1)
    # At least the first two writes are applied at the follower already.
    assert follower.engine.get(keys[0], b"c") is not None


def test_leader_commit_requires_lsn_order():
    """A later write never commits before an earlier one, even if its
    quorum completes first (head-of-line rule, §5.1)."""
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    seq0 = leader.node.wal.last_lsn(leader.cohort_id).seq
    r1 = wrec(leader, seq0 + 1, key=b"a")
    r2 = wrec(leader, seq0 + 2, key=b"b")
    leader.queue.add(r1)
    leader.queue.add(r2)
    leader.queue.mark_forced(r2.lsn)
    leader.queue.add_ack(r2.lsn, "someone")
    assert leader.queue.advance_leader() == []
    leader.queue.mark_forced(r1.lsn)
    leader.queue.add_ack(r1.lsn, "someone")
    committed = leader.queue.advance_leader()
    assert [r.key for r in committed] == [b"a", b"b"]


def test_broadcast_commit_skips_when_nothing_new():
    cluster = make_cluster()
    leader, follower = leader_and_follower(cluster)
    sent_before = cluster.network.messages_sent
    leader.broadcast_commit()  # nothing committed since last broadcast
    leader.broadcast_commit()
    assert cluster.network.messages_sent == sent_before
