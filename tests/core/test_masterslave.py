"""Tests for the Figure 1 master-slave scenario (§1.1)."""

import pytest

from repro.core.masterslave import MasterSlavePair, MSUnavailable
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import spawn
from repro.sim.rng import RngRegistry


def make_pair(policy="safe"):
    sim = Simulator()
    net = Network(sim, RngRegistry(5))
    return sim, MasterSlavePair(sim, net, RngRegistry(6), policy=policy)


def run(sim, gen, limit=30.0):
    proc = spawn(sim, gen)
    sim.run(until=sim.now + limit)
    assert proc.triggered
    return proc.result()


def test_normal_write_replicates_to_both():
    sim, pair = make_pair()

    def scenario():
        lsn = yield from pair.write(b"k", b"v")
        return lsn

    assert run(sim, scenario()) == 1
    assert pair.master.state[b"k"] == b"v"
    assert pair.slave.state[b"k"] == b"v"
    assert pair.master.last_lsn == pair.slave.last_lsn == 1


def test_master_continues_when_slave_down():
    sim, pair = make_pair()

    def scenario():
        yield from pair.write(b"a", b"1")
        pair.slave.crash()
        yield from pair.write(b"b", b"2")
        return pair.read(b"b")

    assert run(sim, scenario()) == b"2"
    assert pair.master.last_lsn == 2
    assert pair.slave.last_lsn == 1


def test_figure_1_sequence_makes_pair_unavailable():
    """(a) both at LSN 10; (b) slave down; (c) master continues to 20
    then dies; (d) slave returns — and must not serve."""
    sim, pair = make_pair(policy="safe")

    def scenario():
        for i in range(10):                       # (a) LSN 1..10
            yield from pair.write(b"k%d" % i, b"x")
        pair.slave.crash()                        # (b)
        for i in range(10, 20):                   # (c) LSN 11..20
            yield from pair.write(b"k%d" % i, b"x")
        pair.master.crash()
        pair.slave.restart()                      # (d)
        return pair.available_for_writes()

    assert run(sim, scenario()) is False
    assert pair.master.last_lsn == 20
    assert pair.slave.last_lsn == 10
    with pytest.raises(MSUnavailable):
        pair.read(b"k15")


def test_unsafe_policy_loses_committed_writes():
    sim, pair = make_pair(policy="unsafe")

    def scenario():
        for i in range(10):
            yield from pair.write(b"k%d" % i, b"x")
        pair.slave.crash()
        for i in range(10, 20):
            yield from pair.write(b"k%d" % i, b"x")
        pair.master.crash()                       # permanent, say
        pair.slave.restart()
        # Unsafe slave serves; committed writes 11..20 are gone.
        return pair.available_for_writes(), pair.read(b"k15")

    available, stale = run(sim, scenario())
    assert available is True
    assert stale is None                 # committed write invisible
    assert pair.lost_writes() == list(range(11, 21))


def test_block_policy_never_loses_but_blocks_on_any_failure():
    sim, pair = make_pair(policy="block")

    def scenario():
        yield from pair.write(b"a", b"1")
        pair.slave.crash()
        try:
            yield from pair.write(b"b", b"2")
            return "committed"
        except MSUnavailable:
            return "blocked"

    assert run(sim, scenario()) == "blocked"
    assert pair.lost_writes() == []


def test_safe_slave_can_serve_if_it_never_went_down():
    """Failover in the benign order (master dies first) is fine."""
    sim, pair = make_pair(policy="safe")

    def scenario():
        yield from pair.write(b"a", b"1")
        pair.master.crash()
        yield from pair.write(b"b", b"2")   # slave, in sync, takes over
        return pair.read(b"b")

    assert run(sim, scenario()) == b"2"
    assert pair.lost_writes() == []


def test_recovered_master_knows_it_may_be_stale():
    sim, pair = make_pair(policy="safe")

    def scenario():
        yield from pair.write(b"a", b"1")
        pair.master.crash()
        yield from pair.write(b"b", b"2")   # slave alone now
        pair.slave.crash()
        pair.master.restart()               # master missed LSN 2
        return pair.available_for_writes()

    # The restarted master is not in_sync either: with the 'safe' policy
    # an unavailable window is the honest outcome here too.
    sim_result = run(sim, scenario())
    assert sim_result is False


def test_bad_policy_rejected():
    sim = Simulator()
    net = Network(sim, RngRegistry(1))
    with pytest.raises(ValueError):
        MasterSlavePair(sim, net, RngRegistry(2), policy="wat")
