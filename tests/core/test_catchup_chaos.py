"""Targeted mid-snapshot-stream chaos (acceptance criterion).

Each scenario from :mod:`repro.chaos.catchup` aims a fault at an
in-flight chunked catch-up — crash the catching-up follower, crash the
leader, or roll the leader's log underneath the stream — and verifies
crash-resumability directly: the victim resumes from its last durable
chunk (the served-chunk ledgers show nothing re-shipped at or below the
resume floor), converges to a read-back-consistent follower, and the
invariant auditor stays clean throughout.
"""

import pytest

from repro.chaos import CATCHUP_SCENARIOS, run_catchup_chaos


@pytest.mark.parametrize("scenario", CATCHUP_SCENARIOS)
def test_mid_stream_fault_resumes_from_durable_chunk(scenario):
    result = run_catchup_chaos(seed=7, scenario=scenario)
    assert result.ok, result.format()
    assert result.tables_at_fault >= 2       # fault landed mid-stream
    assert result.chunks_after_fault > 0     # resume actually ran


def test_catchup_chaos_is_deterministic():
    a = run_catchup_chaos(seed=11, scenario="crash-follower")
    b = run_catchup_chaos(seed=11, scenario="crash-follower")
    assert a.format() == b.format()
    assert a.ok, a.format()
