"""Tests for the commit queue (§4.1): LSN-ordered quorum commits."""

from repro.core.commitqueue import CommitQueue
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord


def wrec(seq, key=b"k", col=b"c", epoch=1):
    return WriteRecord(lsn=LSN(epoch, seq), cohort_id=0, key=key,
                       colname=col, value=b"v", version=seq)


def test_commit_requires_force_and_ack():
    q = CommitQueue(acks_needed=1)
    q.add(wrec(1))
    assert q.advance_leader() == []
    q.mark_forced(LSN(1, 1))
    assert q.advance_leader() == []          # no ack yet
    q.add_ack(LSN(1, 1), "f1")
    committed = q.advance_leader()
    assert [r.lsn.seq for r in committed] == [1]
    assert q.committed_lsn == LSN(1, 1)


def test_commits_strictly_in_lsn_order():
    q = CommitQueue(acks_needed=1)
    for seq in (1, 2, 3):
        q.add(wrec(seq))
        q.mark_forced(LSN(1, seq))
    # Write 2 and 3 are ready, but 1 is not: nothing commits.
    q.add_ack(LSN(1, 2), "f1")
    q.add_ack(LSN(1, 3), "f1")
    assert q.advance_leader() == []
    q.add_ack(LSN(1, 1), "f1")
    assert [r.lsn.seq for r in q.advance_leader()] == [1, 2, 3]


def test_cumulative_ack_covers_earlier_writes():
    q = CommitQueue(acks_needed=1)
    for seq in (1, 2, 3):
        q.add(wrec(seq))
        q.mark_forced(LSN(1, seq))
    q.add_ack_upto(LSN(1, 2), "f1")
    assert [r.lsn.seq for r in q.advance_leader()] == [1, 2]
    assert LSN(1, 3) in q


def test_acks_needed_two():
    q = CommitQueue(acks_needed=2)
    q.add(wrec(1))
    q.mark_forced(LSN(1, 1))
    q.add_ack(LSN(1, 1), "f1")
    assert q.advance_leader() == []
    q.add_ack(LSN(1, 1), "f1")  # duplicate from same follower: no
    assert q.advance_leader() == []
    q.add_ack(LSN(1, 1), "f2")
    assert len(q.advance_leader()) == 1


def test_on_commit_callbacks_fire_in_order():
    q = CommitQueue(acks_needed=1)
    fired = []
    for seq in (1, 2):
        q.add(wrec(seq), on_commit=lambda r: fired.append(r.lsn.seq))
        q.mark_forced(LSN(1, seq))
    q.add_ack_upto(LSN(1, 2), "f1")
    q.advance_leader()
    assert fired == [1, 2]


def test_add_is_idempotent_by_lsn():
    q = CommitQueue()
    first = q.add(wrec(1))
    second = q.add(wrec(1))
    assert first is second
    assert len(q) == 1


def test_follower_apply_commit_pops_prefix():
    q = CommitQueue()
    for seq in (1, 2, 3):
        q.add(wrec(seq))
    committed = q.apply_commit(LSN(1, 2))
    assert [r.lsn.seq for r in committed] == [1, 2]
    assert q.committed_lsn == LSN(1, 2)
    assert len(q) == 1


def test_apply_commit_advances_watermark_even_when_empty():
    q = CommitQueue()
    q.apply_commit(LSN(1, 9))
    assert q.committed_lsn == LSN(1, 9)


def test_drop_removes_discarded_write():
    q = CommitQueue()
    q.add(wrec(1))
    q.add(wrec(2))
    dropped = q.drop(LSN(1, 2))
    assert dropped.lsn == LSN(1, 2)
    assert q.pending_lsns() == [LSN(1, 1)]
    assert q.drop(LSN(1, 99)) is None


def test_latest_pending_for_column():
    q = CommitQueue()
    q.add(wrec(1, key=b"a"))
    q.add(wrec(2, key=b"a"))
    q.add(wrec(3, key=b"b"))
    latest = q.latest_pending_for(b"a", b"c")
    assert latest.lsn == LSN(1, 2)
    assert q.latest_pending_for(b"zz", b"c") is None


def test_clear_empties_queue():
    q = CommitQueue()
    q.add(wrec(1))
    q.clear()
    assert len(q) == 0
