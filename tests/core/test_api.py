"""Tests for client routing, retries, and error mapping (repro.core.api)."""

import pytest

from repro.core import (RequestTimeout, SpinnakerCluster, SpinnakerConfig,
                        VersionMismatch)
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def make_cluster(**overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=31)
    cluster.start()
    return cluster


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="client op")
    return proc.result()


def test_leader_cache_learns_from_redirects():
    cluster = make_cluster()
    client = cluster.client()
    key = b"route-me"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    # Poison the cache with a follower.
    leader = cluster.leader_of(cohort.cohort_id)
    wrong = next(m for m in cohort.members if m != leader)
    client._leader_cache[cohort.cohort_id] = wrong

    def scenario():
        yield from client.put(key, b"c", b"v")

    run(cluster, scenario())
    assert client._leader_cache[cohort.cohort_id] == leader
    assert client.retries >= 1


def test_strong_read_follows_hint_not_blind_cycling():
    cluster = make_cluster()
    client = cluster.client()
    key = b"hint-key"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    leader = cluster.leader_of(cohort.cohort_id)
    followers = [m for m in cohort.members if m != leader]
    client._leader_cache[cohort.cohort_id] = followers[0]

    def scenario():
        yield from client.put(key, b"c", b"v")
        return (yield from client.get(key, b"c", consistent=True))

    got = run(cluster, scenario())
    assert got.value == b"v"


def test_timeline_reads_are_spread_across_replicas():
    cluster = make_cluster()
    client = cluster.client()
    key = b"spread"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))

    def scenario():
        yield from client.put(key, b"c", b"v")
        # Let commit messages reach followers.
        return True

    run(cluster, scenario())
    cluster.run(1.0)
    served_before = {m: sum(r.reads_served for r in
                            cluster.nodes[m].replicas.values())
                     for m in cohort.members}

    def read_many():
        for _ in range(60):
            yield from client.get(key, b"c", consistent=False)

    run(cluster, read_many())
    served = {m: sum(r.reads_served for r in
                     cluster.nodes[m].replicas.values())
              - served_before[m] for m in cohort.members}
    assert all(count > 0 for count in served.values()), served


def test_request_timeout_when_whole_cohort_down():
    cluster = make_cluster(client_op_timeout=2.0)
    client = cluster.client()
    key = b"doomed"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    for member in cohort.members:
        cluster.crash_node(member)

    def scenario():
        try:
            yield from client.put(key, b"c", b"v")
            return "ok"
        except RequestTimeout:
            return "timeout"

    assert run(cluster, scenario(), limit=30.0) == "timeout"


def test_version_mismatch_not_retried():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.put(b"vm", b"c", b"v1")
        retries_before = client.retries
        try:
            yield from client.conditional_put(b"vm", b"c", b"v2", 42)
        except VersionMismatch:
            pass
        return client.retries - retries_before

    assert run(cluster, scenario()) == 0  # a logical error, not transient


def test_multi_column_conditional_put_all_or_nothing():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.put_columns(b"row", {b"a": b"1", b"b": b"2"})
        try:
            yield from client.conditional_put_columns(
                b"row", {b"a": b"10", b"b": b"20"},
                {b"a": 1, b"b": 99})      # second guard is stale
        except VersionMismatch:
            pass
        return (yield from client.get_row(b"row", [b"a", b"b"],
                                          consistent=True))

    row = run(cluster, scenario())
    assert row[b"a"].value == b"1" and row[b"b"].value == b"2"


def test_not_leader_without_hint_rotates_members():
    """A not-leader reply with no hint (the follower itself does not know
    the leader yet) must rotate to the next member instead of re-asking
    the same node until the deadline burns out."""
    cluster = make_cluster()
    client = cluster.client()
    key = b"hintless"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    leader = cluster.leader_of(cohort.cohort_id)
    follower = next(m for m in cohort.members if m != leader)
    # The follower forgets who leads: its redirects carry hint=None.
    cluster.nodes[follower].replicas[cohort.cohort_id].leader = None
    client._leader_cache[cohort.cohort_id] = follower

    def scenario():
        yield from client.put(key, b"c", b"v")
        return (yield from client.get(key, b"c", consistent=True))

    got = run(cluster, scenario())
    assert got.value == b"v"
    assert client.retries >= 1
    assert client._leader_cache[cohort.cohort_id] == leader


def test_timeline_target_excludes_timed_out_replicas():
    """Satellite fix: retry target selection must not re-pick members
    that just timed out (while still falling back to the full list if
    everything is excluded)."""
    cluster = make_cluster()
    client = cluster.client()
    cohort = cluster.partitioner.cohort(0)
    dead = set(cohort.members[:2])
    for _ in range(50):
        assert client._timeline_target(cohort, exclude=dead) \
            == cohort.members[2]
    # A single name (the just-timed-out target) works too.
    for _ in range(50):
        assert client._timeline_target(
            cohort, exclude=cohort.members[0]) != cohort.members[0]
    # Excluding everybody falls back to the full member list.
    assert client._timeline_target(
        cohort, exclude=set(cohort.members)) in cohort.members


def test_timeline_read_avoids_crashed_replica_on_retry():
    """Integration: with one member down, a timeline read that first
    times out on the corpse must finish well inside the op deadline."""
    cluster = make_cluster(client_op_timeout=6.0)
    client = cluster.client()
    key = b"corpse-dodge"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))

    run(cluster, client.put(key, b"c", b"v"))
    cluster.run(1.0)    # let commit info reach followers
    cluster.crash_node(cohort.members[0])

    def read_many():
        out = []
        for _ in range(20):
            got = yield from client.get(key, b"c", consistent=False)
            out.append(got.value)
        return out

    values = run(cluster, read_many(), limit=120.0)
    assert values == [b"v"] * 20


def test_cold_cache_strong_read_seeds_from_map_leader_hint():
    """Satellite fix: a fresh client's first strong request goes to the
    cohort map's recorded leader, not blindly to members[0]."""
    cluster = make_cluster()
    cluster.run(1.0)
    client = cluster.client("fresh-client")
    for cohort in cluster.partitioner.cohorts:
        leader = cluster.leader_of(cohort.cohort_id)
        assert client._strong_target(cohort) == leader

    key = b"cold-start"
    retries_before = client.retries

    def scenario():
        yield from client.put(key, b"c", b"v")
        return (yield from client.get(key, b"c", consistent=True))

    got = run(cluster, scenario())
    assert got.value == b"v"
    assert client.retries == retries_before   # straight to the leader


def test_ops_counted():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.put(b"n", b"c", b"v")
        yield from client.get(b"n", b"c", consistent=True)
        yield from client.delete(b"n", b"c")

    run(cluster, scenario())
    assert client.ops_completed == 3
