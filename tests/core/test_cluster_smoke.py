"""End-to-end smoke tests: boot a cluster, read and write through the API."""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig, VersionMismatch
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def fast_config(**overrides):
    """SSD logs keep unit tests quick; protocol behaviour is unchanged."""
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


@pytest.fixture
def cluster():
    cl = SpinnakerCluster(n_nodes=5, config=fast_config(), seed=42)
    cl.start()
    yield cl
    assert cl.all_failures() == []


def run_client(cluster, gen, limit=30.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit,
                      what="client op")
    return proc.result()


def test_cluster_elects_a_leader_per_cohort(cluster):
    for cohort in cluster.partitioner.cohorts:
        leader = cluster.leader_of(cohort.cohort_id)
        assert leader in cohort.members


def test_put_then_strong_get(cluster):
    client = cluster.client()

    def scenario():
        put = yield from client.put(b"user:1", b"name", b"ada")
        got = yield from client.get(b"user:1", b"name", consistent=True)
        return put, got

    put, got = run_client(cluster, scenario())
    assert put.version == 1
    assert got.found and got.value == b"ada" and got.version == 1


def test_get_missing_returns_not_found(cluster):
    client = cluster.client()

    def scenario():
        return (yield from client.get(b"ghost", b"c", consistent=True))

    got = run_client(cluster, scenario())
    assert not got.found
    assert got.version == 0


def test_overwrite_bumps_version(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put(b"k", b"c", b"v1")
        yield from client.put(b"k", b"c", b"v2")
        return (yield from client.get(b"k", b"c", consistent=True))

    got = run_client(cluster, scenario())
    assert got.value == b"v2"
    assert got.version == 2


def test_delete_hides_value(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put(b"k", b"c", b"v")
        yield from client.delete(b"k", b"c")
        return (yield from client.get(b"k", b"c", consistent=True))

    got = run_client(cluster, scenario())
    assert not got.found


def test_conditional_put_succeeds_on_current_version(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put(b"cnt", b"c", b"0")
        cur = yield from client.get(b"cnt", b"c", consistent=True)
        res = yield from client.conditional_put(b"cnt", b"c", b"1",
                                                cur.version)
        final = yield from client.get(b"cnt", b"c", consistent=True)
        return res, final

    res, final = run_client(cluster, scenario())
    assert res.version == 2
    assert final.value == b"1"


def test_conditional_put_fails_on_stale_version(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put(b"cnt", b"c", b"0")   # version 1
        yield from client.put(b"cnt", b"c", b"1")   # version 2
        try:
            yield from client.conditional_put(b"cnt", b"c", b"2", 1)
        except VersionMismatch as err:
            return err
        return None

    err = run_client(cluster, scenario())
    assert err is not None
    assert err.expected == 1 and err.actual == 2


def test_conditional_delete(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put(b"k", b"c", b"v")
        try:
            yield from client.conditional_delete(b"k", b"c", 99)
        except VersionMismatch:
            pass
        else:
            raise AssertionError("stale conditional delete succeeded")
        yield from client.conditional_delete(b"k", b"c", 1)
        return (yield from client.get(b"k", b"c", consistent=True))

    got = run_client(cluster, scenario())
    assert not got.found


def test_multi_column_put_is_atomic_batch(cluster):
    client = cluster.client()

    def scenario():
        yield from client.put_columns(
            b"row", {b"a": b"1", b"b": b"2", b"c": b"3"})
        return (yield from client.get_row(
            b"row", [b"a", b"b", b"c"], consistent=True))

    row = run_client(cluster, scenario())
    assert {c: r.value for c, r in row.items()} == {
        b"a": b"1", b"b": b"2", b"c": b"3"}


def test_timeline_read_sees_value_after_commit_period(cluster):
    client = cluster.client()

    def write_it():
        yield from client.put(b"tl", b"c", b"v")

    run_client(cluster, write_it())
    # Give followers time to receive a commit message.
    cluster.run(1.0)

    def read_everywhere():
        results = []
        for _ in range(12):  # random replica each time
            got = yield from client.get(b"tl", b"c", consistent=False)
            results.append(got)
        return results

    results = run_client(cluster, read_everywhere())
    assert all(r.found and r.value == b"v" for r in results)


def test_writes_spread_across_cohorts(cluster):
    client = cluster.client()

    def scenario():
        for i in range(40):
            yield from client.put(b"key-%d" % i, b"c", b"v")

    run_client(cluster, scenario(), limit=120.0)
    leaders = {cluster.leader_of(c.cohort_id)
               for c in cluster.partitioner.cohorts}
    served = sum(r.writes_served for n in cluster.nodes.values()
                 for r in n.replicas.values())
    assert served == 40
    assert len(leaders) > 1  # multiple distinct leaders took writes


def test_cluster_stats_reflect_activity(cluster):
    client = cluster.client()

    def scenario():
        for i in range(6):
            yield from client.put(b"st-%d" % i, b"c", b"v")
        yield from client.get(b"st-0", b"c", consistent=True)

    run_client(cluster, scenario())
    stats = cluster.stats()
    nodes = stats["nodes"]
    assert sum(n["writes_served"] for n in nodes.values()) == 6
    assert sum(n["reads_served"] for n in nodes.values()) >= 1
    assert sum(len(n["leader_of"]) for n in nodes.values()) == 5
    assert all(n["alive"] for n in nodes.values())
    assert sum(n["log_forces"] for n in nodes.values()) >= 18  # 3x each
    assert stats["network"]["messages_sent"] > 0
