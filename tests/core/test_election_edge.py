"""Election edge cases: safety of the max-n.lst rule, concurrent rounds,
epoch monotonicity, repeated failovers."""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN


def make_cluster(n=3, seed=51, **overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    cluster = SpinnakerCluster(n_nodes=n, config=cfg, seed=seed)
    cluster.start()
    return cluster


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def cohort_keys(cluster, cohort_id, count):
    keys, i = [], 0
    while len(keys) < count:
        key = b"el-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def test_epoch_strictly_increases_across_failovers():
    cluster = make_cluster(n=5)
    cohort_id = 0
    epochs = []
    for _round in range(3):
        leader = cluster.leader_of(cohort_id)
        epochs.append(cluster.replica(leader, cohort_id).epoch)
        victim = leader
        cluster.kill_leader(cohort_id)
        cluster.run_until(
            lambda: cluster.leader_of(cohort_id) not in (None, victim),
            limit=30.0, what="failover")
        cluster.restart_node(victim)
        replica_v = cluster.replica(victim, cohort_id)
        cluster.run_until(
            lambda: replica_v.role in (Role.FOLLOWER, Role.LEADER),
            limit=30.0, what="victim back")
    leader = cluster.leader_of(cohort_id)
    epochs.append(cluster.replica(leader, cohort_id).epoch)
    assert epochs == sorted(set(epochs)), epochs
    assert cluster.all_failures() == []


def test_lsns_never_reused_across_epochs():
    """After each failover, new writes get LSNs above everything the
    cohort ever used (App. B's guarantee)."""
    cluster = make_cluster(n=5)
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 12)
    client = cluster.client()
    seen_lsns = set()

    def write_some(lo, hi):
        def _go():
            for key in keys[lo:hi]:
                yield from client.put(key, b"c", b"v")
        run(cluster, _go())

    for round_idx in range(3):
        write_some(round_idx * 4, round_idx * 4 + 4)
        leader = cluster.leader_of(cohort_id)
        wal = cluster.nodes[leader].wal
        lsns = {r.lsn for r in wal.write_records(cohort_id)}
        new = {lsn for lsn in lsns if lsn not in seen_lsns}
        assert new, "round produced no new LSNs"
        if seen_lsns:
            assert all(lsn > max(seen_lsns) for lsn in new)
        seen_lsns |= lsns
        if round_idx < 2:
            victim = leader
            cluster.kill_leader(cohort_id)
            cluster.run_until(
                lambda: cluster.leader_of(cohort_id) not in (None, victim),
                limit=30.0, what="failover")
            cluster.restart_node(victim)
            replica_v = cluster.replica(victim, cohort_id)
            cluster.run_until(
                lambda: replica_v.role in (Role.FOLLOWER, Role.LEADER),
                limit=30.0, what="victim back")


def test_simultaneous_double_failover_on_disjoint_cohorts():
    """Two leaders of disjoint cohorts die at once; both cohorts still
    have majorities and recover independently."""
    cluster = make_cluster(n=6)
    # With 6 nodes, cohorts 0 = {n0,n1,n2} and 3 = {n3,n4,n5} are
    # disjoint; each keeps 2 of 3 members after losing its leader.
    l0 = cluster.leader_of(0)
    l3 = cluster.leader_of(3)
    assert not (set(cluster.partitioner.cohort(0).members)
                & set(cluster.partitioner.cohort(3).members))
    cluster.kill_leader(0)
    cluster.kill_leader(3)
    cluster.run_until(
        lambda: cluster.leader_of(0) is not None
        and cluster.leader_of(3) is not None,
        limit=40.0, what="double failover")
    assert cluster.leader_of(0) != l0
    assert cluster.leader_of(3) != l3
    assert cluster.all_failures() == []


def test_winner_must_hold_every_committed_write():
    """Safety (§7.2): after any single-failure failover, the new leader's
    log contains every write the old leader acknowledged."""
    cluster = make_cluster(n=5)
    cohort_id = 0
    keys = cohort_keys(cluster, cohort_id, 10)
    client = cluster.client()
    acked = []

    def write_all():
        for i, key in enumerate(keys):
            yield from client.put(key, b"c", b"v%d" % i)
            acked.append(key)

    run(cluster, write_all())
    old = cluster.kill_leader(cohort_id)
    cluster.run_until(
        lambda: cluster.leader_of(cohort_id) not in (None, old),
        limit=30.0, what="failover")
    new_leader = cluster.leader_of(cohort_id)
    wal = cluster.nodes[new_leader].wal
    engine = cluster.replica(new_leader, cohort_id).engine
    for key in acked:
        assert engine.get(key, b"c") is not None, key


def test_cluster_of_four_uses_majority_two_of_three():
    """Cohorts are always 3-node groups regardless of cluster size, so
    majorities stay 2 and a single failure never blocks a cohort."""
    cluster = make_cluster(n=4)
    for cohort in cluster.partitioner.cohorts:
        assert len(cohort.members) == 3
    cohort_id = 0
    cluster.kill_leader(cohort_id)
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="failover")
    assert cluster.leader_of(cohort_id) is not None


def test_follower_restart_does_not_trigger_election():
    cluster = make_cluster(n=5)
    cohort_id = 0
    leader = cluster.leader_of(cohort_id)
    epoch_before = cluster.replica(leader, cohort_id).epoch
    follower = next(m for m in
                    cluster.partitioner.cohort(cohort_id).members
                    if m != leader)
    cluster.crash_node(follower)
    cluster.run(4.0)  # session expires; leader stays up
    cluster.restart_node(follower)
    replica_f = cluster.replica(follower, cohort_id)
    cluster.run_until(lambda: replica_f.role == Role.FOLLOWER,
                      limit=30.0, what="rejoin")
    assert cluster.leader_of(cohort_id) == leader
    assert cluster.replica(leader, cohort_id).epoch == epoch_before
