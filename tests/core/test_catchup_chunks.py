"""The chunked, crash-resumable catch-up protocol (§6.1 + chunking).

Covers leader-side page assembly (each SSTable shipped exactly once,
monotone safe floors, paging-token generations), follower-side ingest
idempotency, the honest wire size of table-carrying chunks, and the
satellite regression: a crash landing *between* the SSTable ingest and
the forced CatchupMarker append must resume from the last durable chunk
— never re-shipping state below the re-derived floor — and converge.
"""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.messages import CatchupRequest
from repro.core.partition import key_of
from repro.core.recovery import build_catchup_chunk, chunk_wire_size, \
    ingest_catchup
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN

COHORT = 0


def make_cluster(seed=11, chunk_bytes=2_048):
    """Tiny flush threshold + tiny chunk budget: a short burst rolls the
    log into many small SSTables and snapshot paging needs many pages."""
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.1,
                          flush_threshold_bytes=6_000,
                          catchup_chunk_bytes=chunk_bytes)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=seed)
    cluster.start()
    return cluster


def run(cluster, gen, limit=120.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def cohort_keys(cluster, count):
    keys, i = [], 0
    while len(keys) < count:
        key = b"ck-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == COHORT:
            keys.append(key)
        i += 1
    return keys


def write_keys(cluster, keys, tag=b"w"):
    client = cluster.client("ck-writer")

    def _go():
        for key in keys:
            yield from client.put(key, b"c", tag + b"x" * 200)
    run(cluster, _go())


def rolled_leader(cluster, keys):
    """Crash one follower, write past its log, return (leader, victim).

    Afterwards the leader's log cannot serve from LSN zero and its
    engine holds several SSTables — the snapshot-paging setting.  The
    keys are distinct (not overwrites): flushed tables keep distinct
    live cells, so size-tiered compaction leaves several tiers instead
    of collapsing the whole history into one table.
    """
    leader = cluster.leader_of(COHORT)
    victim = next(m for m in cluster.partitioner.cohort(COHORT).members
                  if m != leader)
    write_keys(cluster, keys[:30])
    cluster.run(0.3)
    cluster.crash_node(victim)
    cluster.expire_session_of(victim)
    write_keys(cluster, keys[30:])
    leader = cluster.leader_of(COHORT)
    assert not cluster.nodes[leader].wal.can_serve_after(
        COHORT, LSN.zero())
    assert len(cluster.replica(leader, COHORT).engine.sstables) >= 3
    return leader, victim


def walk_pages(leader_replica, follower=b"ghost".decode()):
    """Drive the leader's paging protocol as a synthetic empty follower
    and return the served chunks (mimicking the follower's floor/cmt
    advance between requests)."""
    cmt, floor = LSN.zero(), LSN.zero()
    seen, source = LSN.zero(), None
    chunks = []
    for _ in range(200):
        req = CatchupRequest(cohort_id=COHORT, follower=follower,
                             follower_cmt=cmt, floor=floor, seen=seen,
                             source=source)
        chunk = build_catchup_chunk(leader_replica, req)
        chunks.append(chunk)
        floor = max(floor, chunk.floor)
        seen, source = chunk.snapshot_seen, chunk.source
        cmt = max(cmt, floor)
        if chunk.records:
            cmt = max(cmt, chunk.records[-1].lsn)
        if not chunk.more:
            return chunks, cmt
    raise AssertionError("paging never terminated")


class TestLeaderPaging:
    def test_each_table_ships_exactly_once(self):
        cluster = make_cluster()
        keys = cohort_keys(cluster, 360)
        leader, _ = rolled_leader(cluster, keys)
        replica = cluster.replica(leader, COHORT)
        chunks, cmt = walk_pages(replica)
        table_pages = [c for c in chunks if c.sstables]
        assert len(table_pages) >= 2, "budget never paged the snapshot"
        shipped = [t for c in chunks for t in c.sstables]
        assert len({id(t) for t in shipped}) == len(shipped)
        # Every manifest table the ghost needed went out, ascending.
        assert {id(t) for t in shipped} == {
            id(t) for t in replica.engine.manifest().sstables}
        max_lsns = [t.max_lsn for t in shipped]
        assert max_lsns == sorted(max_lsns)
        # Safe floors never regress, and the walk ends at the leader's
        # commit point with the final page announcing no more.
        floors = [c.floor for c in chunks]
        assert all(b >= a for a, b in zip(floors, floors[1:]))
        assert not chunks[-1].more
        assert cmt >= replica.committed_lsn

    def test_pages_respect_budget(self):
        cluster = make_cluster()
        keys = cohort_keys(cluster, 360)
        leader, _ = rolled_leader(cluster, keys)
        replica = cluster.replica(leader, COHORT)
        budget = cluster.config.catchup_chunk_bytes
        chunks, _ = walk_pages(replica)
        for chunk in chunks:
            tables = chunk.sstables
            if len(tables) <= 1:
                continue        # progress guarantee: one item always fits
            under = sum(t.bytes_size for t in tables[:-1])
            # Only the last item (or a max_lsn tie riding with it) may
            # push the page past the budget.
            assert under <= budget or \
                tables[-1].max_lsn == tables[-2].max_lsn

    def test_stale_generation_token_restarts_from_floor(self):
        cluster = make_cluster()
        keys = cohort_keys(cluster, 360)
        leader, _ = rolled_leader(cluster, keys)
        replica = cluster.replica(leader, COHORT)
        first = build_catchup_chunk(replica, CatchupRequest(
            cohort_id=COHORT, follower="ghost",
            follower_cmt=LSN.zero()))
        assert first.sstables and first.more
        # A token from another generation claims everything was seen;
        # the leader must ignore it and page from the durable floor.
        stale = build_catchup_chunk(replica, CatchupRequest(
            cohort_id=COHORT, follower="ghost",
            follower_cmt=LSN.zero(), floor=first.floor,
            seen=LSN(99, 0), source=("nobody", 999)))
        assert stale.sstables, "stale token skipped unshipped tables"
        assert min(t.max_lsn for t in stale.sstables) > first.floor

    def test_chunk_wire_size_counts_sstables(self):
        cluster = make_cluster()
        keys = cohort_keys(cluster, 360)
        leader, _ = rolled_leader(cluster, keys)
        replica = cluster.replica(leader, COHORT)
        chunk = build_catchup_chunk(replica, CatchupRequest(
            cohort_id=COHORT, follower="ghost",
            follower_cmt=LSN.zero()))
        assert chunk.sstables
        assert chunk_wire_size(chunk) >= sum(t.bytes_size
                                             for t in chunk.sstables)


class TestIngestIdempotency:
    def test_reingesting_same_chunk_is_a_noop(self):
        cluster = make_cluster()
        keys = cohort_keys(cluster, 120)
        write_keys(cluster, keys)
        cluster.run(0.5)
        leader = cluster.leader_of(COHORT)
        follower = next(m for m in
                        cluster.partitioner.cohort(COHORT).members
                        if m != leader)
        lead_rep = cluster.replica(leader, COHORT)
        fol_rep = cluster.replica(follower, COHORT)
        chunk = build_catchup_chunk(lead_rep, CatchupRequest(
            cohort_id=COHORT, follower=follower,
            follower_cmt=LSN.zero()))
        run(cluster, ingest_catchup(fol_rep, chunk))
        wal = cluster.nodes[follower].wal
        state = (len(fol_rep.engine.sstables), fol_rep.committed_lsn,
                 fol_rep.catchup_floor, wal.marker_count(),
                 wal.skipped_lsns(COHORT),
                 len(wal.write_records(COHORT)))
        # A retried chunk (acked reply lost) arrives again verbatim.
        run(cluster, ingest_catchup(fol_rep, chunk))
        assert (len(fol_rep.engine.sstables), fol_rep.committed_lsn,
                fol_rep.catchup_floor, wal.marker_count(),
                wal.skipped_lsns(COHORT),
                len(wal.write_records(COHORT))) == state
        assert cluster.all_failures() == []


class TestCrashMidInstall:
    def test_crash_between_table_ingest_and_marker_resumes(self):
        """Satellite regression: fail-stop the follower at the instant a
        table is ingested but the forced CatchupMarker has not landed.
        Restart must re-derive floor/cmt from durable markers only, the
        leader must not re-ship below that floor, and the cohort must
        converge with the victim's engine matching the leader's."""
        cluster = make_cluster(seed=13)
        keys = cohort_keys(cluster, 360)
        _, victim = rolled_leader(cluster, keys)
        cluster.restart_node(victim)
        replica = cluster.replica(victim, COHORT)
        # The tables counter increments after engine ingest and *before*
        # the marker force yields, so a fine-grained poll lands the
        # crash exactly inside the satellite's window.
        cluster.run_until(
            lambda: (replica.catchup_tables_ingested >= 1
                     and replica.role != Role.FOLLOWER),
            limit=60.0, step=0.0005, what="mid-install instant")
        volatile_floor = replica.catchup_floor
        cluster.crash_node(victim)
        cluster.expire_session_of(victim)
        wal = cluster.nodes[victim].wal
        durable_floor = wal.catchup_floor(COHORT)   # recomputed by crash
        durable_cmt = wal.last_committed_lsn(COHORT)
        assert durable_floor <= volatile_floor
        assert durable_cmt <= durable_floor or durable_cmt >= LSN.zero()
        marks = {name: len(cluster.nodes[name].catchup_served)
                 for name in cluster.nodes}

        cluster.run(0.3)
        cluster.restart_node(victim)
        # prepare_restart re-derived the durable floor before catch-up.
        assert replica.catchup_floor == durable_floor

        def caught_up():
            lead = cluster.leader_of(COHORT)
            if lead is None:
                return False
            return (replica.role == Role.FOLLOWER
                    and replica.committed_lsn
                    >= cluster.replica(lead, COHORT).committed_lsn)

        cluster.run_until(caught_up, limit=60.0,
                          what="victim reconverges")
        cluster.run(0.5)

        # Resume check: nothing served after the restart carries a table
        # at or below the durable resume floor.
        for name, node in cluster.nodes.items():
            for entry in list(node.catchup_served)[marks[name]:]:
                if entry["follower"] != victim:
                    continue
                assert not [lsn for lsn in entry["table_max_lsns"]
                            if lsn <= durable_floor], entry

        lead_engine = cluster.replica(cluster.leader_of(COHORT),
                                      COHORT).engine
        for key in keys:
            want = lead_engine.get(key, b"c")
            got = replica.engine.get(key, b"c")
            assert want is not None and got is not None, key
            assert got.value == want.value, key
        assert cluster.all_failures() == []

    def test_chunked_rejoin_end_to_end(self):
        """A rejoin across a rollover pages through several chunks and
        at least one snapshot slice, then survives a failover."""
        cluster = make_cluster(seed=17)
        keys = cohort_keys(cluster, 360)
        _, victim = rolled_leader(cluster, keys)
        cluster.restart_node(victim)
        replica = cluster.replica(victim, COHORT)
        cluster.run_until(lambda: replica.role == Role.FOLLOWER,
                          limit=60.0, what="victim rejoined")
        cluster.run(0.5)
        assert replica.catchup_chunks_ingested >= 2
        assert replica.catchup_tables_ingested >= 1
        assert replica.catchup_floor > LSN.zero()
        # The revived node must be a fully capable leader candidate.
        cluster.kill_leader(COHORT)
        cluster.run_until(
            lambda: cluster.leader_of(COHORT) is not None,
            limit=60.0, what="post-rejoin failover")
        client = cluster.client("ck-reader")

        def read_all():
            out = []
            for key in keys:
                out.append((yield from client.get(key, b"c",
                                                  consistent=True)))
            return out

        results = run(cluster, read_all())
        assert all(r.found for r in results)
        assert cluster.all_failures() == []
