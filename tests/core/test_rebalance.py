"""Tests for elastic membership: planning, live splits/replaces, crash
tolerance of the migration protocol, and stale-client map refresh."""

import pytest

from repro.chaos.invariants import InvariantAuditor
from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.partition import (KeyRange, MembershipChange,
                                  RangePartitioner, key_of)
from repro.core.rebalance import Rebalancer, plan_join, plan_replace
from repro.core.replication import Role
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def fast_config(**overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def make_cluster(n=5, seed=11, **overrides):
    cluster = SpinnakerCluster(n_nodes=n, config=fast_config(**overrides),
                               seed=seed)
    cluster.start()
    return cluster


def run_client(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="client op")
    return proc.result()


def keys_for_cohort(cluster, cohort_id, count):
    keys = []
    i = 0
    while len(keys) < count:
        key = b"rk-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def write_keys(cluster, client, keys, value=b"v"):
    def writer():
        for key in keys:
            yield from client.put(key, b"c", value)
    run_client(cluster, writer(), limit=120.0)


def assert_readable(cluster, client, keys, value=b"v"):
    def reader():
        out = []
        for key in keys:
            strong = yield from client.get(key, b"c", consistent=True)
            timeline = yield from client.get(key, b"c", consistent=False)
            out.append((strong.value, timeline.value))
        return out
    got = run_client(cluster, reader(), limit=240.0)
    assert got == [(value, value)] * len(keys)


def rebalance(cluster, plans, limit=120.0, **kwargs):
    reb = Rebalancer(cluster)
    proc = spawn(cluster.sim, reb.execute(plans, **kwargs))
    cluster.run_until(lambda: proc.triggered, limit=limit,
                      what="rebalance")
    proc.result()     # re-raise any driver failure
    assert reb.done
    return reb


# ---------------------------------------------------------------------------
# Planning (pure units)
# ---------------------------------------------------------------------------

def test_plan_join_splits_hottest_cohort_at_midpoint():
    part = RangePartitioner(["A", "B", "C", "D", "E"], keyspace=1000)
    heat = {0: 5.0, 1: 90.0, 2: 5.0, 3: 5.0, 4: 5.0}
    plans = plan_join(part, ["F"], heat=heat)
    assert len(plans) == 1
    change = plans[0]
    src = part.cohort(1)
    assert change.kind == "split"
    assert change.cohort_id == 1
    assert change.version == part.version + 1
    assert change.new_cohort_id == part.next_cohort_id()
    assert change.split_key == (src.key_range.lo
                                + (src.key_range.hi - src.key_range.lo) // 2)
    # Joiner first (bootstrap leader preference), then two residents.
    assert change.new_members[0] == "F"
    assert set(change.new_members[1:]) <= set(src.members)
    assert len(change.new_members) == 3


def test_plan_join_spreads_across_cohorts_and_sequences_versions():
    part = RangePartitioner(["A", "B", "C", "D", "E"], keyspace=1000)
    heat = {0: 80.0, 1: 70.0, 2: 1.0, 3: 1.0, 4: 1.0}
    plans = plan_join(part, ["F", "G"], heat=heat)
    assert [p.version for p in plans] == [2, 3]
    assert plans[0].cohort_id == 0       # hottest first
    assert plans[1].cohort_id == 1       # heat halved, next hottest
    assert plans[0].new_cohort_id != plans[1].new_cohort_id
    # Plans apply cleanly in sequence on a fresh copy of the layout.
    for change in plans:
        assert part.apply_change(change)
    assert part.version == 3


def test_plan_replace_validates_membership():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    change = plan_replace(part, 0, "B", "F")
    assert change.kind == "replace"
    assert change.version == 2
    assert change.new_members == ("A", "F", "C")
    with pytest.raises(ValueError):
        plan_replace(part, 0, "E", "F")      # E not a member of cohort 0
    with pytest.raises(ValueError):
        plan_replace(part, 0, "B", "C")      # C already a member


# ---------------------------------------------------------------------------
# Live moves
# ---------------------------------------------------------------------------

def test_live_split_moves_range_to_new_node():
    cluster = make_cluster()
    client = cluster.client()
    keys = keys_for_cohort(cluster, 0, 20)
    write_keys(cluster, client, keys)

    cluster.add_node("node5")
    plans = plan_join(cluster.partitioner, ["node5"],
                      heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                          else 1.0)
                            for c in cluster.partitioner.cohorts})
    assert plans[0].cohort_id == 0
    reb = rebalance(cluster, plans)
    assert reb.moves_completed == 1

    part = cluster.partitioner
    assert part.version == 2
    new_cid = plans[0].new_cohort_id
    new_cohort = part.cohort(new_cid)
    assert "node5" in new_cohort.members
    assert cluster.leader_of(new_cid) == "node5"   # lead_new
    # The source cohort shrank to the left half.
    assert part.cohort(0).key_range.hi == plans[0].split_key
    assert new_cohort.key_range.lo == plans[0].split_key
    # Every key is still readable — strong and timeline — wherever it
    # now lives (a fresh client routes off the new map).
    fresh = cluster.client("fresh")
    assert_readable(cluster, fresh, keys)
    assert cluster.all_failures() == []


def test_live_split_under_sustained_load():
    # Generous retry budget: the moved range is briefly leaderless
    # between the map switch and the child cohort's first election, and
    # the load must ride that window out rather than fail.
    cluster = make_cluster(client_op_timeout=30.0, client_max_retries=600)
    client = cluster.client()
    keys = keys_for_cohort(cluster, 0, 30)
    write_keys(cluster, client, keys)

    stop = []
    progress = {"writes": 0}

    def background_load():
        i = 0
        while not stop:
            key = keys[i % len(keys)]
            yield from client.put(key, b"c", b"w%d" % i)
            progress["writes"] += 1
            i += 1

    load_proc = spawn(cluster.sim, background_load())
    cluster.add_node("node5")
    plans = plan_join(cluster.partitioner, ["node5"],
                      heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                          else 1.0)
                            for c in cluster.partitioner.cohorts})
    rebalance(cluster, plans)
    writes_during = progress["writes"]
    stop.append(True)
    cluster.run_until(lambda: load_proc.triggered, limit=30.0,
                      what="load drain")
    load_proc.result()

    assert writes_during > 0      # writes kept flowing through the move
    fresh = cluster.client("fresh")

    def verify():
        for key in keys:
            got = yield from fresh.get(key, b"c", consistent=True)
            assert got.value.startswith(b"w")
    run_client(cluster, verify(), limit=240.0)
    assert cluster.all_failures() == []


def test_replace_move_swaps_follower_for_new_node():
    cluster = make_cluster()
    client = cluster.client()
    keys = keys_for_cohort(cluster, 0, 15)
    write_keys(cluster, client, keys)

    cluster.add_node("node5")
    leader = cluster.leader_of(0)
    victim = next(m for m in cluster.partitioner.cohort(0).members
                  if m != leader)
    change = plan_replace(cluster.partitioner, 0, victim, "node5")
    rebalance(cluster, [change])

    cohort = cluster.partitioner.cohort(0)
    assert "node5" in cohort.members and victim not in cohort.members
    # The retired member dropped its replica; the joiner serves.
    assert 0 not in cluster.nodes[victim].replicas
    joiner_replica = cluster.nodes["node5"].replicas[0]
    assert joiner_replica.role in (Role.LEADER, Role.FOLLOWER)
    assert cluster.leader_of(0) is not None
    fresh = cluster.client("fresh")
    assert_readable(cluster, fresh, keys)
    assert cluster.all_failures() == []


def test_stale_client_refreshes_map_on_wrong_node():
    cluster = make_cluster()
    stale = cluster.client()          # snapshot taken now, at version 1
    keys = keys_for_cohort(cluster, 0, 20)
    write_keys(cluster, stale, keys)

    cluster.add_node("node5")
    plans = plan_join(cluster.partitioner, ["node5"],
                      heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                          else 1.0)
                            for c in cluster.partitioner.cohorts})
    change = plans[0]
    rebalance(cluster, plans)
    assert stale.map_version == 1     # nobody told the client yet

    # Point the stale client's strong routing at the one old member that
    # is NOT in the child cohort: it answers wrong-node + map_version.
    retired = next(m for m in cluster.partitioner.cohort(0).members
                   if m not in change.new_members)
    moved = next(k for k in keys
                 if cluster.partitioner.cohort_for_key(
                     key_of(k)).cohort_id == change.new_cohort_id)
    stale._leader_cache[0] = retired

    def scenario():
        return (yield from stale.get(moved, b"c", consistent=True))

    got = run_client(cluster, scenario(), limit=60.0)
    assert got.value == b"v"
    assert stale.map_refreshes >= 1
    assert stale.map_version == cluster.partitioner.version


def test_scan_after_split_returns_each_row_once():
    """Ordered cluster: after a split, the parent's leftover copies of
    moved rows must not surface in scans — each row comes back exactly
    once, from the cohort that now owns it."""
    cfg = fast_config()
    cfg.order_preserving_keys = True
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=13)
    cluster.start()
    client = cluster.client()
    # 4-byte big-endian keys spread across cohort 0's range, straddling
    # its midpoint so the split strands rows on both sides.
    keys = [(i * 21_000_000).to_bytes(4, "big") for i in range(40)]
    write_keys(cluster, client, keys)

    cluster.add_node("node5")
    part = cluster.partitioner
    heat = {c.cohort_id: float(sum(
        1 for k in keys if part.cohort_for_key(
            part.key_mapper(k)).cohort_id == c.cohort_id))
        for c in part.cohorts}
    plans = plan_join(part, ["node5"], heat=heat)
    rebalance(cluster, plans)

    fresh = cluster.client("fresh")

    def scan_all():
        return (yield from fresh.scan(keys[0], limit=100,
                                      consistent=True))
    rows = run_client(cluster, scan_all(), limit=120.0)
    assert [key for key, _cols in rows] == keys
    assert cluster.all_failures() == []


# ---------------------------------------------------------------------------
# Crash tolerance
# ---------------------------------------------------------------------------

def run_move_with_crash(cluster, plans, crash, limit=240.0):
    """Drive ``plans``; once the driver has sent its first MigrationStart,
    run ``crash(change)`` and keep driving until convergence.  Audits
    invariants throughout."""
    auditor = InvariantAuditor(cluster)
    audit_proc = spawn(cluster.sim, auditor.run(period=0.25))
    reb = Rebalancer(cluster)
    proc = spawn(cluster.sim, reb.execute(plans, move_timeout=limit))
    cluster.run_until(lambda: reb.attempts >= 1, limit=60.0,
                      what="first migration attempt")
    cluster.run(0.05)                 # land mid-move
    crash(plans[0])
    cluster.run_until(lambda: proc.triggered, limit=limit,
                      what="rebalance after crash")
    proc.result()
    assert reb.done
    cluster.run(2.0)                  # settle before the final audit
    audit_proc.interrupt("done")
    auditor.final_audit()
    assert auditor.violations == [], [str(v) for v in auditor.violations]
    return reb


def split_plan_for_cohort0(cluster):
    return plan_join(cluster.partitioner, ["node5"],
                     heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                         else 1.0)
                           for c in cluster.partitioner.cohorts})


def test_split_survives_joining_node_crash():
    cluster = make_cluster(seed=17)
    client = cluster.client()
    keys = keys_for_cohort(cluster, 0, 15)
    write_keys(cluster, client, keys)
    cluster.add_node("node5")
    plans = split_plan_for_cohort0(cluster)

    def crash(_change):
        cluster.crash_node("node5")
        cluster.expire_session_of("node5")
        cluster.run(1.0)
        cluster.restart_node("node5")

    run_move_with_crash(cluster, plans, crash)
    assert cluster.partitioner.version == 2
    assert cluster.leader_of(plans[0].new_cohort_id) is not None
    fresh = cluster.client("fresh")
    assert_readable(cluster, fresh, keys)


def test_split_survives_migration_leader_crash():
    cluster = make_cluster(seed=23)
    client = cluster.client()
    keys = keys_for_cohort(cluster, 0, 15)
    write_keys(cluster, client, keys)
    cluster.add_node("node5")
    plans = split_plan_for_cohort0(cluster)

    def crash(change):
        killed = cluster.kill_leader(change.cohort_id)
        assert killed is not None
        cluster.run(1.0)
        cluster.restart_node(killed)

    run_move_with_crash(cluster, plans, crash)
    assert cluster.partitioner.version == 2
    assert cluster.leader_of(0) is not None
    assert cluster.leader_of(plans[0].new_cohort_id) is not None
    fresh = cluster.client("fresh")
    assert_readable(cluster, fresh, keys)
