"""Tests for the leader-side proposal batcher (core/batching.py):
packing, coalescing, the adaptive window, and leadership-change safety.
"""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig, Transaction
from repro.core.batching import chunk_groups
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord


def make_cluster(n_nodes=3, seed=27, **overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    cluster = SpinnakerCluster(n_nodes=n_nodes, config=cfg, seed=seed)
    cluster.start()
    return cluster


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="client")
    return proc.result()


def cohort_keys(cluster, cohort_id, count, prefix=b"bat"):
    keys, i = [], 0
    while len(keys) < count:
        key = prefix + b"-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def grp(*sizes, nbytes=100):
    """Build record groups with the given sizes; values sized so each
    record encodes to roughly ``nbytes``."""
    groups, seq = [], 0
    for size in sizes:
        group = []
        for _ in range(size):
            seq += 1
            group.append(WriteRecord(
                lsn=LSN(1, seq), cohort_id=0, key=b"k", colname=b"c",
                value=b"x" * nbytes, version=seq))
        groups.append(tuple(group))
    return groups


# ---------------------------------------------------------------------------
# chunk_groups: pure packing logic
# ---------------------------------------------------------------------------

def test_chunk_groups_packs_up_to_record_limit():
    batches = chunk_groups(grp(1, 1, 1, 1, 1, 1, 1, 1),
                           max_records=3, max_bytes=1 << 20)
    assert [len(b) for b in batches] == [3, 3, 2]


def test_chunk_groups_never_splits_a_group():
    batches = chunk_groups(grp(2, 4, 2), max_records=5, max_bytes=1 << 20)
    # The 4-group does not fit after the 2-group (6 > 5), so it starts a
    # new batch — and is never broken apart.
    assert [len(b) for b in batches] == [2, 4, 2]


def test_chunk_groups_oversized_group_forms_own_batch():
    batches = chunk_groups(grp(1, 7, 1), max_records=4, max_bytes=1 << 20)
    assert [len(b) for b in batches] == [1, 7, 1]


def test_chunk_groups_respects_byte_limit():
    records = grp(1, 1, 1, nbytes=4096)
    one = sum(r.encoded_size() for r in records[0])
    batches = chunk_groups(records, max_records=100, max_bytes=2 * one)
    assert [len(b) for b in batches] == [2, 1]


# ---------------------------------------------------------------------------
# End-to-end coalescing
# ---------------------------------------------------------------------------

def test_concurrent_writes_coalesce_into_batches():
    cluster = make_cluster(seed=29)
    cluster.run(2.0)
    leader = cluster.replica(cluster.leader_of(0), 0)
    before = leader.batcher.batches_sent
    keys = cohort_keys(cluster, 0, 16)
    client = cluster.client()
    procs = [spawn(cluster.sim, client.put(k, b"c", b"v")) for k in keys]
    cluster.run_until(lambda: all(p.triggered for p in procs),
                      limit=30.0, what="concurrent puts")
    for proc in procs:
        assert proc.result().version == 1
    batches = leader.batcher.batches_sent - before
    assert leader.batcher.records_batched >= 16
    assert batches < 16                    # some proposes were shared
    assert leader.batcher.max_batch_records >= 2
    assert (leader.batcher.max_batch_records
            <= cluster.config.propose_batch_max_records)
    assert cluster.all_failures() == []


def test_sequential_writes_never_wait_for_company():
    cluster = make_cluster(seed=31)
    cluster.run(2.0)
    key = cohort_keys(cluster, 0, 1)[0]
    leader = cluster.replica(cluster.leader_of(0), 0)
    client = cluster.client()

    def scenario():
        for i in range(10):
            result = yield from client.put(key, b"c", b"v%d" % i)
            assert result.version == i + 1

    run(cluster, scenario())
    # An idle pipeline flushes each write immediately: no window ever
    # opened, every batch carried exactly one record.
    assert leader.batcher.windows_opened == 0
    assert leader.batcher.max_batch_records == 1
    assert cluster.all_failures() == []


def test_transaction_group_stays_indivisible():
    cluster = make_cluster(n_nodes=5, seed=33, propose_batch_max_records=2)
    cluster.run(2.0)
    keys = cohort_keys(cluster, 0, 5)
    leader = cluster.replica(cluster.leader_of(0), 0)
    client = cluster.client()

    def scenario():
        txn = Transaction(client)
        for k in keys:
            txn.put(k, b"c", b"atomic")
        return (yield from txn.commit())

    result = run(cluster, scenario())
    assert result.version == 1
    # Five records, limit two: an indivisible group travels oversized in
    # a single propose rather than being split across forces.
    assert leader.batcher.max_batch_records == 5
    client2 = cluster.client("client1")
    for k in keys:
        got = run(cluster, client2.get(k, b"c", consistent=True))
        assert got.found and got.value == b"atomic"
    assert cluster.all_failures() == []


# ---------------------------------------------------------------------------
# Leadership-change safety
# ---------------------------------------------------------------------------

def test_step_down_drops_buffered_records():
    # Fixed (non-adaptive) windows force buffering even on an idle
    # cohort, letting us catch a record between queue.add and its flush.
    cluster = make_cluster(seed=37, propose_batch_adaptive=False,
                           propose_batch_window=5e-3)
    cluster.run(2.0)
    leader = cluster.replica(cluster.leader_of(0), 0)
    node = leader.node
    record = WriteRecord(lsn=leader.alloc_lsn(), cohort_id=0,
                         key=cohort_keys(cluster, 0, 1)[0],
                         colname=b"c", value=b"phantom", version=1)
    leader._replicate([record])
    assert record.lsn in leader.queue     # buffered, window pending
    assert not node.wal.contains(0, record.lsn)
    leader.step_down()
    # The buffered record was never logged nor proposed; it must leave
    # the queue so no later commit message can commit a phantom.
    assert record.lsn not in leader.queue
    cluster.run(1.0)
    assert not node.wal.contains(0, record.lsn)
    assert leader.batcher.batches_sent == 0
    assert cluster.all_failures() == []


def test_takeover_reproposes_tail_in_batches():
    # A long uncommitted tail (commit messages effectively disabled)
    # must survive a leader crash; the successor re-proposes it batched.
    cluster = make_cluster(n_nodes=5, seed=39, commit_period=30.0)
    cluster.run(2.0)
    keys = cohort_keys(cluster, 0, 20)
    client = cluster.client()

    def writes():
        for k in keys:
            result = yield from client.put(k, b"c", b"keep")
            assert result.version == 1

    run(cluster, writes())
    cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="re-election")
    reader = cluster.client("client1")
    for k in keys:
        got = run(cluster, reader.get(k, b"c", consistent=True))
        assert got.found and got.value == b"keep"
    assert cluster.all_failures() == []


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
