"""Tests for range partitioning and chained-declustering placement (§4)."""

import pytest

from repro.core.partition import KeyRange, RangePartitioner, key_of


def test_five_node_layout_matches_paper_figure_2():
    """Figure 2: node i's base range is replicated on the next 2 nodes."""
    nodes = ["A", "B", "C", "D", "E"]
    part = RangePartitioner(nodes, replication_factor=3, keyspace=1000)
    assert len(part) == 5
    assert part.cohort(0).members == ("A", "B", "C")
    assert part.cohort(1).members == ("B", "C", "D")
    assert part.cohort(4).members == ("E", "A", "B")
    # Each node participates in exactly 3 cohorts.
    for node in nodes:
        assert len(part.cohorts_of_node(node)) == 3


def test_ranges_tile_the_keyspace():
    part = RangePartitioner([f"n{i}" for i in range(7)], keyspace=1000)
    lo = 0
    for cohort in part.cohorts:
        assert cohort.key_range.lo == lo
        lo = cohort.key_range.hi
    assert lo == 1000


def test_cohort_for_key_respects_ranges():
    part = RangePartitioner(["A", "B", "C", "D"], keyspace=400)
    assert part.cohort_for_key(0).cohort_id == 0
    assert part.cohort_for_key(99).cohort_id == 0
    assert part.cohort_for_key(100).cohort_id == 1
    assert part.cohort_for_key(399).cohort_id == 3


def test_uneven_keyspace_still_tiles():
    part = RangePartitioner(["A", "B", "C"], keyspace=10)
    sizes = [c.key_range.hi - c.key_range.lo for c in part.cohorts]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    for key in range(10):
        cohort = part.cohort_for_key(key)
        assert cohort.key_range.contains(key)


def test_key_out_of_range_rejected():
    part = RangePartitioner(["A", "B", "C"], keyspace=100)
    with pytest.raises(ValueError):
        part.cohort_for_key(100)
    with pytest.raises(ValueError):
        part.cohort_for_key(-1)


def test_too_few_nodes_rejected():
    with pytest.raises(ValueError):
        RangePartitioner(["A", "B"], replication_factor=3)


def test_peers_of_excludes_self():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    assert part.peers_of("B", 0) == ["A", "C"]


def test_key_of_is_deterministic_and_in_keyspace():
    assert key_of(b"hello") == key_of(b"hello")
    assert key_of(b"hello") != key_of(b"world")
    for i in range(100):
        assert 0 <= key_of(b"key-%d" % i) < (1 << 32)


def test_key_of_spreads_keys_across_cohorts():
    part = RangePartitioner([f"n{i}" for i in range(10)])
    hits = set()
    for i in range(500):
        hits.add(part.cohort_for_key(key_of(b"row-%d" % i)).cohort_id)
    assert len(hits) == 10


def test_key_range_str_and_contains():
    kr = KeyRange(10, 20)
    assert kr.contains(10) and kr.contains(19)
    assert not kr.contains(20) and not kr.contains(9)
    assert str(kr) == "[10,20)"


def test_key_range_boundaries_between_cohorts():
    """Boundary keys: each cohort's hi is exclusive and is exactly the
    next cohort's inclusive lo — no key owned twice, no key orphaned."""
    part = RangePartitioner(["A", "B", "C", "D", "E"], keyspace=1000)
    for left, right in zip(part.cohorts, part.cohorts[1:]):
        edge = left.key_range.hi
        assert edge == right.key_range.lo
        assert not left.key_range.contains(edge)
        assert right.key_range.contains(edge)
        assert left.key_range.contains(edge - 1)
        assert part.cohort_for_key(edge) is right
        assert part.cohort_for_key(edge - 1) is left


def test_key_range_last_cohort_owns_keyspace_end():
    """The last cohort runs up to the keyspace limit: the maximal key
    lands there, and the wrapped key (== keyspace, i.e. key 0 again)
    belongs to the first cohort, never the last."""
    part = RangePartitioner(["A", "B", "C"], keyspace=300)
    last = part.cohorts[-1]
    assert last.key_range.hi == 300
    assert last.key_range.contains(299)
    assert not last.key_range.contains(300)
    assert part.cohort_for_key(299) is last
    assert part.cohort_for_key(0) is part.cohorts[0]
    with pytest.raises(ValueError):
        part.cohort_for_key(300)     # wraps past the end: not a key


def test_split_boundaries_route_correctly():
    """After a split, the split key itself belongs to the new (right)
    cohort; split_key - 1 stays with the source."""
    from repro.core.partition import MembershipChange
    part = RangePartitioner(["A", "B", "C", "D", "E"], keyspace=1000)
    src = part.cohort(1)
    mid = src.key_range.lo + (src.key_range.hi - src.key_range.lo) // 2
    applied = part.apply_change(MembershipChange(
        version=2, kind="split", cohort_id=1,
        new_members=("F", "B", "C"), split_key=mid, new_cohort_id=5))
    assert applied
    assert part.cohort_for_key(mid).cohort_id == 5
    assert part.cohort_for_key(mid - 1).cohort_id == 1
    assert part.cohort(1).key_range.hi == mid
    assert part.cohort(5).key_range == KeyRange(mid, src.key_range.hi)
    # Duplicate application (replayed log record) is a no-op.
    assert not part.apply_change(MembershipChange(
        version=2, kind="split", cohort_id=1,
        new_members=("F", "B", "C"), split_key=mid, new_cohort_id=5))
    assert part.version == 2
