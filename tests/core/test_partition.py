"""Tests for range partitioning and chained-declustering placement (§4)."""

import pytest

from repro.core.partition import KeyRange, RangePartitioner, key_of


def test_five_node_layout_matches_paper_figure_2():
    """Figure 2: node i's base range is replicated on the next 2 nodes."""
    nodes = ["A", "B", "C", "D", "E"]
    part = RangePartitioner(nodes, replication_factor=3, keyspace=1000)
    assert len(part) == 5
    assert part.cohort(0).members == ("A", "B", "C")
    assert part.cohort(1).members == ("B", "C", "D")
    assert part.cohort(4).members == ("E", "A", "B")
    # Each node participates in exactly 3 cohorts.
    for node in nodes:
        assert len(part.cohorts_of_node(node)) == 3


def test_ranges_tile_the_keyspace():
    part = RangePartitioner([f"n{i}" for i in range(7)], keyspace=1000)
    lo = 0
    for cohort in part.cohorts:
        assert cohort.key_range.lo == lo
        lo = cohort.key_range.hi
    assert lo == 1000


def test_cohort_for_key_respects_ranges():
    part = RangePartitioner(["A", "B", "C", "D"], keyspace=400)
    assert part.cohort_for_key(0).cohort_id == 0
    assert part.cohort_for_key(99).cohort_id == 0
    assert part.cohort_for_key(100).cohort_id == 1
    assert part.cohort_for_key(399).cohort_id == 3


def test_uneven_keyspace_still_tiles():
    part = RangePartitioner(["A", "B", "C"], keyspace=10)
    sizes = [c.key_range.hi - c.key_range.lo for c in part.cohorts]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    for key in range(10):
        cohort = part.cohort_for_key(key)
        assert cohort.key_range.contains(key)


def test_key_out_of_range_rejected():
    part = RangePartitioner(["A", "B", "C"], keyspace=100)
    with pytest.raises(ValueError):
        part.cohort_for_key(100)
    with pytest.raises(ValueError):
        part.cohort_for_key(-1)


def test_too_few_nodes_rejected():
    with pytest.raises(ValueError):
        RangePartitioner(["A", "B"], replication_factor=3)


def test_peers_of_excludes_self():
    part = RangePartitioner(["A", "B", "C", "D", "E"])
    assert part.peers_of("B", 0) == ["A", "C"]


def test_key_of_is_deterministic_and_in_keyspace():
    assert key_of(b"hello") == key_of(b"hello")
    assert key_of(b"hello") != key_of(b"world")
    for i in range(100):
        assert 0 <= key_of(b"key-%d" % i) < (1 << 32)


def test_key_of_spreads_keys_across_cohorts():
    part = RangePartitioner([f"n{i}" for i in range(10)])
    hits = set()
    for i in range(500):
        hits.add(part.cohort_for_key(key_of(b"row-%d" % i)).cohort_id)
    assert len(hits) == 10


def test_key_range_str_and_contains():
    kr = KeyRange(10, 20)
    assert kr.contains(10) and kr.contains(19)
    assert not kr.contains(20) and not kr.contains(9)
    assert str(kr) == "[10,20)"
