"""Tests for the client-visible data model types and errors."""

import pytest

from repro.core.datamodel import (Consistency, DatastoreError, GetResult,
                                  NotLeader, PutResult, RequestTimeout,
                                  Unavailable, VersionMismatch, row_to_dict)
from repro.storage.lsn import LSN
from repro.storage.memtable import Cell


def test_get_result_not_found_shape():
    missing = GetResult.not_found()
    assert not missing.found
    assert missing.value is None
    assert missing.version == 0


def test_get_result_is_immutable():
    got = GetResult(value=b"v", version=3)
    with pytest.raises(Exception):
        got.value = b"other"


def test_version_mismatch_carries_versions():
    err = VersionMismatch(expected=3, actual=5)
    assert err.expected == 3 and err.actual == 5
    assert "3" in str(err) and "5" in str(err)
    assert isinstance(err, DatastoreError)
    assert err.code == "version-mismatch"


def test_not_leader_carries_hint():
    err = NotLeader(leader_hint="node7")
    assert err.leader_hint == "node7"
    assert isinstance(err, DatastoreError)


def test_error_codes_distinct():
    codes = {cls.code for cls in
             (DatastoreError, VersionMismatch, NotLeader, Unavailable,
              RequestTimeout)}
    assert len(codes) == 5


def test_consistency_levels():
    assert Consistency.STRONG != Consistency.TIMELINE


def test_row_to_dict_hides_tombstones():
    cells = {
        b"alive": Cell(value=b"v", version=2, timestamp=0.0,
                       lsn=LSN(1, 1)),
        b"dead": Cell(value=None, version=3, timestamp=0.0,
                      lsn=LSN(1, 2), tombstone=True),
    }
    row = row_to_dict(cells)
    assert set(row) == {b"alive"}
    assert row[b"alive"].value == b"v"
    assert row[b"alive"].version == 2


def test_put_result_shape():
    assert PutResult(version=4).version == 4
