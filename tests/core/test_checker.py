"""Tests for the history checker, plus a live cluster verification."""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.checker import (HistoryRecorder, Violation,
                                check_strong_history)
from repro.core.datamodel import DatastoreError
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn, timeout


# -- unit: the checker itself catches bad histories --------------------------

def test_clean_history_passes():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_read(b"k", 2.0, 3.0, version=1)
    h.record_write(b"k", 3.0, 4.0, version=2)
    h.record_read(b"k", 5.0, 6.0, version=2)
    assert check_strong_history(h) == []


def test_stale_read_detected():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_write(b"k", 1.0, 2.0, version=2)
    h.record_read(b"k", 3.0, 4.0, version=1)   # stale!
    violations = check_strong_history(h)
    assert any(v.rule == "recency" for v in violations)


def test_future_read_detected():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_read(b"k", 2.0, 3.0, version=5)   # from the future
    violations = check_strong_history(h)
    assert any(v.rule == "time-travel" for v in violations)


def test_non_monotonic_reads_detected():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_write(b"k", 1.0, 2.0, version=2)
    h.record_read(b"k", 2.5, 3.0, version=2)
    h.record_read(b"k", 3.5, 4.0, version=1)   # went backwards
    violations = check_strong_history(h)
    assert any(v.rule == "monotonicity" for v in violations)


def test_overlapping_reads_may_disagree():
    """Concurrent reads straddling a write may see either version."""
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 5.0, version=1)
    h.record_read(b"k", 1.0, 2.0, version=1)   # write in flight: OK
    h.record_read(b"k", 1.5, 2.5, version=0)   # also OK (not acked yet)
    assert check_strong_history(h) == []


def test_failed_ops_are_ignored():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1, ok=False)  # timed out
    h.record_read(b"k", 2.0, 3.0, version=0)
    assert check_strong_history(h) == []


def test_violation_str():
    v = Violation(b"k", "recency", "details here")
    assert "recency" in str(v) and "details here" in str(v)


# -- integration: a real cluster history under failover ----------------------

def test_cluster_history_is_strongly_consistent_through_failover():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.3, client_op_timeout=6.0)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=83)
    cluster.start()
    sim = cluster.sim
    history = HistoryRecorder()
    cohort_id = 0
    key = next(b"hk-%d" % i for i in range(1000)
               if cluster.partitioner.cohort_for_key(
                   key_of(b"hk-%d" % i)).cohort_id == cohort_id)
    done = {"writer": False}

    def writer():
        client = cluster.client("h-writer")
        for i in range(40):
            start = sim.now
            try:
                result = yield from client.put(key, b"c", b"v%d" % i)
            except DatastoreError:
                history.record_write(key, start, sim.now, 0, ok=False)
                continue
            history.record_write(key, start, sim.now, result.version)
        done["writer"] = True

    def reader(name):
        client = cluster.client(name)
        while not done["writer"]:
            start = sim.now
            try:
                got = yield from client.get(key, b"c", consistent=True)
            except DatastoreError:
                yield timeout(sim, 0.01)
                continue
            history.record_read(key, start, sim.now, got.version)
            yield timeout(sim, 0.004)

    spawn(sim, writer())
    spawn(sim, reader("h-reader1"))
    spawn(sim, reader("h-reader2"))

    def chaos():
        yield timeout(sim, 0.15)
        cluster.kill_leader(cohort_id)
        yield timeout(sim, 3.0)

    spawn(sim, chaos())
    cluster.run_until(lambda: done["writer"], limit=240.0, what="writer")
    cluster.run(0.5)
    assert len(history) > 40
    violations = check_strong_history(history)
    assert violations == [], "\n".join(map(str, violations))


def test_stale_read_separated_by_overlapping_read_detected():
    """Regression: the old adjacent-pair monotonicity check missed a
    stale read when an *overlapping* read sat between it and the fresh
    one in start order."""
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 0.1, version=1)
    h.record_write(b"k", 0.5, 5.0, version=2)
    h.record_read(b"k", 1.0, 1.2, version=2)   # fresh, ends early
    h.record_read(b"k", 1.1, 4.0, version=1)   # overlaps both reads: OK
    h.record_read(b"k", 4.5, 4.8, version=1)   # after the v2 read: stale
    violations = check_strong_history(h)
    assert any(v.rule == "monotonicity" for v in violations)
    # ...and only the non-overlapping pair is flagged.
    assert all("4.5" in v.detail for v in violations
               if v.rule == "monotonicity")


def test_monotonicity_ignores_overlapping_pairs():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 0.1, version=1)
    h.record_write(b"k", 0.5, 5.0, version=2)
    h.record_read(b"k", 1.0, 3.0, version=2)
    h.record_read(b"k", 2.0, 4.0, version=1)   # overlaps: either order
    assert check_strong_history(h) == []


def test_indeterminate_write_lifts_time_travel_ceiling():
    """A timed-out write may have committed (and its client-level
    retries may commit several versions): reads overlapping-or-after it
    can legally return versions above the acked ceiling."""
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_write(b"k", 2.0, 8.0, version=0, ok=False)  # timed out
    h.record_read(b"k", 3.0, 3.5, version=3)   # retry committed twice: OK
    assert check_strong_history(h) == []


def test_time_travel_still_checked_before_indeterminate_write():
    h = HistoryRecorder()
    h.record_write(b"k", 0.0, 1.0, version=1)
    h.record_read(b"k", 1.5, 2.0, version=3)   # nothing indeterminate yet
    h.record_write(b"k", 3.0, 9.0, version=0, ok=False)
    violations = check_strong_history(h)
    assert any(v.rule == "time-travel" for v in violations)
