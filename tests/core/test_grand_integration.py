"""Grand integration soak: every feature on one cluster, with failures.

An order-preserving cluster serves puts, conditional puts, multi-op
transactions, strong/timeline reads and range scans while a leader is
killed, a follower restarts, and leadership is rebalanced — then the
final state must be exactly what the acknowledged operations imply.
"""

import pytest

from repro.core import (DatastoreError, Role, SpinnakerCluster,
                        SpinnakerConfig, Transaction)
from repro.core.loadbalance import plan_rebalance, transfer_leadership
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn, timeout


def test_everything_at_once():
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.3, order_preserving_keys=True,
                          client_op_timeout=8.0)
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=2027)
    cluster.start()
    sim = cluster.sim
    client = cluster.client()
    expected = {}          # key -> value we expect to read back
    state = {"phase": "running", "ops": 0}

    def workload():
        # Phase 1: plain puts across the keyspace (ordered prefixes).
        for b in range(0, 240, 12):
            key = bytes([b]) + b"-row"
            yield from client.put(key, b"c", b"base-%d" % b)
            expected[key] = b"base-%d" % b
            state["ops"] += 1
        # Phase 2: conditional replace on a few of them.
        for b in range(0, 240, 48):
            key = bytes([b]) + b"-row"
            current = yield from client.get(key, b"c", consistent=True)
            yield from client.conditional_put(key, b"c", b"cas",
                                              current.version)
            expected[key] = b"cas"
            state["ops"] += 1
        # Phase 3: a multi-op transaction inside one cohort.
        base = bytes([4])
        txn = Transaction(client)
        txn.put(base + b"-t1", b"c", b"txn")
        txn.put(base + b"-t2", b"c", b"txn")
        yield from txn.commit()
        expected[base + b"-t1"] = b"txn"
        expected[base + b"-t2"] = b"txn"
        state["ops"] += 1
        state["phase"] = "done"

    def chaos():
        yield timeout(sim, 0.4)
        victim = cluster.kill_leader(0)
        yield timeout(sim, 2.0)
        if victim is not None:
            cluster.restart_node(victim)

    work = spawn(sim, workload(), name="soak-workload")
    spawn(sim, chaos(), name="soak-chaos")
    cluster.run_until(lambda: work.triggered, limit=240.0, what="workload")
    assert work.ok, work.exception
    cluster.run(3.0)   # let recovery + commit messages settle

    # Rebalance leadership back to one per live node.
    leaders = {c.cohort_id: cluster.leader_of(c.cohort_id)
               for c in cluster.partitioner.cohorts}
    for cohort_id, src, dst in plan_rebalance(cluster.partitioner,
                                              leaders):
        replica = cluster.replica(src, cohort_id)
        proc = spawn(sim, transfer_leadership(replica, dst))
        cluster.run_until(lambda: proc.triggered, limit=30.0,
                          what="rebalance")
        cluster.run_until(lambda: cluster.leader_of(cohort_id) == dst,
                          limit=30.0, what="handoff")

    # Verify every expected value via strong gets...
    def verify_gets():
        out = {}
        for key, value in expected.items():
            got = yield from client.get(key, b"c", consistent=True)
            out[key] = (got.found, got.value, value)
        return out

    proc = spawn(sim, verify_gets())
    cluster.run_until(lambda: proc.triggered, limit=120.0, what="verify")
    bad = {k: v for k, v in proc.result().items()
           if not v[0] or v[1] != v[2]}
    assert not bad, f"divergent keys: {sorted(bad)[:5]}"

    # ...and via one full-keyspace ordered scan.
    def scan_all():
        return (yield from client.scan(b"\x00", None, limit=500))

    proc = spawn(sim, scan_all())
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="scan")
    rows = proc.result()
    scanned = {key: columns[b"c"].value for key, columns in rows}
    assert scanned == expected
    assert [k for k, _ in rows] == sorted(expected)

    # Leadership is balanced, no handler ever crashed, stats consistent.
    leaders = [cluster.leader_of(c.cohort_id)
               for c in cluster.partitioner.cohorts]
    assert None not in leaders
    counts = {}
    for leader in leaders:
        counts[leader] = counts.get(leader, 0) + 1
    assert max(counts.values()) == 1
    assert cluster.all_failures() == []
    stats = cluster.stats()
    assert sum(n["writes_served"]
               for n in stats["nodes"].values()) >= state["ops"]
