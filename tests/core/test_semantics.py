"""Consistency-semantics tests: the guarantees §1.3/§3 promise.

* strong reads are linearizable per key: they always return the latest
  committed version, and never observe version regress;
* timeline reads at one replica never go backwards (that is the
  "timeline" in timeline consistency [11]);
* whole-cluster determinism: identical seeds produce identical traces.
"""

import pytest

from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn, timeout


def make_cluster(seed=71, **overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.4)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    cluster = SpinnakerCluster(n_nodes=3, config=cfg, seed=seed)
    cluster.start()
    return cluster


def test_strong_reads_see_latest_version_always():
    cluster = make_cluster()
    client = cluster.client()
    key = b"linear"
    observations = []
    done = {"writer": False}

    def writer():
        for i in range(30):
            yield from client.put(key, b"c", b"v%d" % i)
        done["writer"] = True

    def reader():
        last_version = 0
        while not done["writer"]:
            got = yield from client.get(key, b"c", consistent=True)
            observations.append(got.version)
            assert got.version >= last_version, "strong read regressed"
            last_version = got.version
            yield timeout(cluster.sim, 0.003)

    spawn(cluster.sim, writer())
    spawn(cluster.sim, reader())
    cluster.run_until(lambda: done["writer"], limit=120.0, what="writer")
    cluster.run(0.5)
    assert observations == sorted(observations)
    assert observations[-1] >= 25  # reader kept up with the writer


def test_timeline_reads_never_go_backwards_per_replica():
    cluster = make_cluster()
    client = cluster.client()
    key = b"timeline"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    done = {"writer": False}
    per_replica = {m: [] for m in cohort.members}

    def writer():
        for i in range(25):
            yield from client.put(key, b"c", b"v%d" % i)
            yield timeout(cluster.sim, 0.02)
        done["writer"] = True

    def sampler():
        while not done["writer"]:
            for member in cohort.members:
                node = cluster.nodes[member]
                replica = node.replicas[cohort.cohort_id]
                cell = replica.engine.get(key, b"c")
                per_replica[member].append(
                    cell.version if cell is not None else 0)
            yield timeout(cluster.sim, 0.01)

    spawn(cluster.sim, writer())
    spawn(cluster.sim, sampler())
    cluster.run_until(lambda: done["writer"], limit=120.0, what="writer")
    for member, versions in per_replica.items():
        assert versions == sorted(versions), (
            f"{member} observed version regress: not a timeline")
    # Followers do lag (that's the trade-off)...
    leader = cluster.leader_of(cohort.cohort_id)
    follower = next(m for m in cohort.members if m != leader)
    assert max(per_replica[leader]) >= max(per_replica[follower])


def test_followers_lag_by_at_most_one_commit_period():
    cluster = make_cluster(commit_period=0.3)
    client = cluster.client()
    key = b"lagged"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))

    def write_one():
        yield from client.put(key, b"c", b"fresh")

    proc = spawn(cluster.sim, write_one())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="write")
    t_commit = cluster.sim.now
    followers = [m for m in cohort.members
                 if m != cluster.leader_of(cohort.cohort_id)]
    seen_at = {}
    while len(seen_at) < len(followers):
        assert cluster.sim.now - t_commit < 1.0, "staleness exceeded bound"
        for member in followers:
            if member in seen_at:
                continue
            cell = cluster.nodes[member].replicas[
                cohort.cohort_id].engine.get(key, b"c")
            if cell is not None:
                seen_at[member] = cluster.sim.now - t_commit
        cluster.run(0.01)
    assert all(lag <= 0.35 + 0.05 for lag in seen_at.values()), seen_at


def run_scripted_cluster(seed):
    """A fixed scenario; returns a trace fingerprint."""
    cluster = make_cluster(seed=seed)
    client = cluster.client()
    log = []

    def script():
        for i in range(10):
            result = yield from client.put(b"det-%d" % i, b"c",
                                           b"v%d" % i)
            log.append((round(cluster.sim.now, 9), result.version))
        got = yield from client.get(b"det-3", b"c", consistent=True)
        log.append((round(cluster.sim.now, 9), got.value))

    proc = spawn(cluster.sim, script())
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="script")
    cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="failover")
    log.append(("leader", cluster.leader_of(0),
                round(cluster.sim.now, 9)))
    return log


def test_same_seed_same_trace():
    assert run_scripted_cluster(99) == run_scripted_cluster(99)


def test_different_seed_different_timing():
    a = run_scripted_cluster(99)
    b = run_scripted_cluster(100)
    # Same logical results, different timings.
    assert [x[1] for x in a[:10]] == [x[1] for x in b[:10]]
    assert a != b
