"""Regression tests for cross-yield races found by the atomicity lint.

Each test pins one interleaving the static pass flagged and the fix
closed: state snapshotted before a scheduling point must be
re-validated before it drives an externally visible decision.
"""

import pytest

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.loadbalance import transfer_leadership
from repro.core.messages import CatchupChunk, CatchupRequest
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN


def make_cluster(n=5, seed=47):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=n, config=cfg, seed=seed)
    cluster.start()
    cluster.run(2.0)
    return cluster


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="proc")
    return proc.result()


def drive(gen):
    """Exhaust a generator whose delegates never yield real events."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


# ---------------------------------------------------------------------------
# transfer_leadership: deposed during the catch-up push
# ---------------------------------------------------------------------------

def test_transfer_aborts_when_deposed_during_catchup(monkeypatch):
    """A leader deposed while pushing catch-up state to its successor
    must NOT name that successor on the leader znode afterwards — the
    znode now backs someone else's claim."""
    import repro.core.loadbalance as lb

    cluster = make_cluster()
    cohort_id = 0
    old_leader = cluster.leader_of(cohort_id)
    replica = cluster.replica(old_leader, cohort_id)
    successor = replica.peers()[0]

    def deposing_push(rep, peer):
        rep.step_down()            # a rival won mid-push
        return peer
        yield                      # pragma: no cover - generator marker

    monkeypatch.setattr(lb, "push_catchup", deposing_push)
    znode_writes = []
    orig_set_data = replica.node.zk.set_data

    def recording_set_data(path, data, version=None):
        znode_writes.append(path)
        return orig_set_data(path, data, version=version)

    monkeypatch.setattr(replica.node.zk, "set_data", recording_set_data)

    ok = run(cluster, transfer_leadership(replica, successor))
    assert ok is False
    assert not [p for p in znode_writes if p.endswith("/leader")]
    assert not replica.is_leader
    # Writes are unblocked again (the finally ran) so a re-election can
    # restore service.
    assert not replica.write_block


# ---------------------------------------------------------------------------
# _catchup_rounds: role/leader adoption re-validates after the rounds
# ---------------------------------------------------------------------------

class _FakeTracer:
    def start(self, *a, **k):
        return object()

    def finish(self, *a, **k):
        pass


class _FakeConfig:
    catchup_chunk_timeout = 1.0
    catchup_chunk_retries = 0
    catchup_rpc_timeout = 1.0


class _FakeNode:
    name = "n1"
    config = _FakeConfig()
    request_tracer = _FakeTracer()

    def trace(self, *a, **k):
        pass


class _FakeReplica:
    def __init__(self):
        self.node = _FakeNode()
        self.cohort_id = 0
        self.committed_lsn = LSN.zero()
        self.catchup_floor = LSN.zero()
        self.snapshot_seen = LSN.zero()
        self.catchup_source = None
        self.epoch = 3
        self.role = Role.FOLLOWER
        self.leader = None
        self.set_leader_calls = []

    def set_leader(self, leader):
        self.set_leader_calls.append(leader)
        self.leader = leader


def _chunk(more=False):
    return CatchupChunk(
        cohort_id=0, epoch=3, committed_lsn=LSN.zero(),
        leader_lst=LSN.zero(), source=("n2", 1), sstables=(),
        snapshot_seen=LSN.zero(), floor=LSN.zero(), records=(),
        valid_lsns=(), valid_after=LSN.zero(), valid_upto=LSN.zero(),
        more=more)


def _patch_catchup_plumbing(monkeypatch, on_fetch):
    import repro.core.recovery as rec

    def fake_request(replica, leader, payload, size, ctx,
                     rpc_timeout=None):
        if isinstance(payload, CatchupRequest):
            on_fetch(replica)
            return _chunk(more=False)
        return {"reply": _chunk(), "pending": []}
        yield                      # pragma: no cover - generator marker

    def fake_ingest(replica, chunk):
        return None
        yield                      # pragma: no cover - generator marker

    monkeypatch.setattr(rec, "_request_with_retries", fake_request)
    monkeypatch.setattr(rec, "ingest_catchup", fake_ingest)
    return rec


def test_catchup_adoption_discarded_after_promotion(monkeypatch):
    """If an election promotes this replica while it was fetching
    chunks, the stale FOLLOWER/leader adoption at the end of the rounds
    must be discarded, not clobber the fresh leadership."""
    def promote(replica):
        replica.role = Role.LEADER   # we won an election mid-fetch

    rec = _patch_catchup_plumbing(monkeypatch, promote)
    replica = _FakeReplica()
    ok = drive(rec._catchup_rounds(replica, "n2", None))
    assert ok is False
    assert replica.role == Role.LEADER
    assert replica.set_leader_calls == []


def test_catchup_adoption_discarded_after_new_leader(monkeypatch):
    """If the replica learned a *different* leader during the rounds,
    adopting the one we started catching up from would fork its view."""
    def relearn(replica):
        replica.leader = "n3"        # a fresh election named n3

    rec = _patch_catchup_plumbing(monkeypatch, relearn)
    replica = _FakeReplica()
    ok = drive(rec._catchup_rounds(replica, "n2", None))
    assert ok is False
    assert replica.leader == "n3"
    assert replica.set_leader_calls == []


def test_catchup_adoption_still_runs_when_state_is_fresh(monkeypatch):
    rec = _patch_catchup_plumbing(monkeypatch, lambda replica: None)
    replica = _FakeReplica()
    ok = drive(rec._catchup_rounds(replica, "n2", None))
    assert ok is True
    assert replica.role == Role.FOLLOWER
    assert replica.set_leader_calls == ["n2"]
