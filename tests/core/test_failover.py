"""Failure and recovery tests: leader failover, follower catch-up,
availability guarantees (§6, §7, §8.1)."""

import pytest

from repro.core import (RequestTimeout, Role, SpinnakerCluster,
                        SpinnakerConfig)
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def fast_config(**overrides):
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.2)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def make_cluster(n=5, **overrides):
    cluster = SpinnakerCluster(n_nodes=n, config=fast_config(**overrides),
                               seed=7)
    cluster.start()
    return cluster


def run_client(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="client op")
    return proc.result()


def keys_for_cohort(cluster, cohort_id, count):
    """Find row keys that route to the given cohort."""
    keys = []
    i = 0
    while len(keys) < count:
        key = b"k-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def test_leader_failover_preserves_committed_writes():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    keys = keys_for_cohort(cluster, cohort_id, 15)

    def write_all():
        for i, key in enumerate(keys):
            yield from client.put(key, b"c", b"v%d" % i)

    run_client(cluster, write_all())
    old_leader = cluster.kill_leader(cohort_id)
    assert old_leader is not None
    cluster.run_until(
        lambda: cluster.leader_of(cohort_id) not in (None, old_leader),
        limit=30.0, what="new leader")
    new_leader = cluster.leader_of(cohort_id)
    assert new_leader != old_leader

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c", consistent=True)))
        return out

    results = run_client(cluster, read_all())
    assert all(r.found for r in results)
    assert [r.value for r in results] == [b"v%d" % i
                                          for i in range(len(keys))]
    assert cluster.all_failures() == []


def test_writes_resume_after_failover():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 1
    keys = keys_for_cohort(cluster, cohort_id, 10)

    def before():
        for key in keys[:5]:
            yield from client.put(key, b"c", b"before")

    run_client(cluster, before())
    cluster.kill_leader(cohort_id)
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="new leader")

    def after():
        for key in keys[5:]:
            yield from client.put(key, b"c", b"after")
        return (yield from client.get(keys[7], b"c", consistent=True))

    got = run_client(cluster, after())
    assert got.value == b"after"
    assert cluster.all_failures() == []


def test_failover_with_detection_timeout():
    """Without skipping detection, the session timeout (2 s) is paid."""
    cluster = make_cluster()
    cohort_id = 0
    t0 = cluster.sim.now
    cluster.kill_leader(cohort_id, skip_detection=False)
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=40.0, what="new leader")
    elapsed = cluster.sim.now - t0
    assert elapsed >= 1.0  # dominated by the 2s session timeout
    assert cluster.all_failures() == []


def test_new_leader_has_max_lst():
    """§7.2: the candidate with the max n.lst must win."""
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    keys = keys_for_cohort(cluster, cohort_id, 8)

    def write_all():
        for key in keys:
            yield from client.put(key, b"c", b"v")

    run_client(cluster, write_all())
    old_leader = cluster.kill_leader(cohort_id)
    members = cluster.partitioner.cohort(cohort_id).members
    survivors = [m for m in members if m != old_leader]
    lsts = {m: cluster.nodes[m].n_lst(cohort_id) for m in survivors}
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="new leader")
    winner = cluster.leader_of(cohort_id)
    assert lsts[winner] == max(lsts.values())


def test_follower_restart_catches_up():
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 2
    members = cluster.partitioner.cohort(cohort_id).members
    leader = cluster.leader_of(cohort_id)
    follower = next(m for m in members if m != leader)
    keys = keys_for_cohort(cluster, cohort_id, 12)

    def phase(lo, hi):
        def _go():
            for key in keys[lo:hi]:
                yield from client.put(key, b"c", b"v")
        return _go()

    run_client(cluster, phase(0, 4))
    cluster.crash_node(follower)
    run_client(cluster, phase(4, 10))      # quorum of 2 still commits
    cluster.restart_node(follower)
    replica = cluster.replica(follower, cohort_id)
    cluster.run_until(lambda: replica.role == Role.FOLLOWER, limit=30.0,
                      what="follower recovered")
    # After a commit period, the follower's engine holds everything.
    cluster.run(2.0)
    for key in keys[:10]:
        cell = replica.engine.get(key, b"c")
        assert cell is not None and cell.value == b"v", key
    assert cluster.all_failures() == []


def test_two_nodes_down_blocks_writes_then_recovers():
    """§8.1: writes need a majority; 1-of-3 up means unavailable."""
    cluster = make_cluster(**{"client_op_timeout": 3.0})
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    keys = keys_for_cohort(cluster, cohort_id, 4)

    run_client(cluster, client.put(keys[0], b"c", b"pre"))
    # Crash two members, leaving one up.
    leader = cluster.leader_of(cohort_id)
    downs = [m for m in members if m != leader][:1] + [leader]
    for name in downs:
        session = cluster.nodes[name].zk.session
        cluster.crash_node(name)
        cluster.coord.expire_session_now(session)

    def blocked_write():
        try:
            yield from client.put(keys[1], b"c", b"during")
            return "committed"
        except RequestTimeout:
            return "timeout"

    assert run_client(cluster, blocked_write(), limit=30.0) == "timeout"
    # Restart one: majority restored, writes flow again.
    cluster.restart_node(downs[0])
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=30.0, what="quorum back")

    def unblocked_write():
        yield from client.put(keys[2], b"c", b"post")
        return (yield from client.get(keys[2], b"c", consistent=True))

    got = run_client(cluster, unblocked_write())
    assert got.value == b"post"


def test_timeline_reads_available_with_one_node_up():
    """§8.1: timeline reads survive with a single live replica."""
    cluster = make_cluster(**{"client_op_timeout": 5.0})
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    key = keys_for_cohort(cluster, cohort_id, 1)[0]

    run_client(cluster, client.put(key, b"c", b"v"))
    cluster.run(1.0)  # let commit messages propagate
    survivor = members[2]
    for name in members[:2]:
        cluster.crash_node(name)

    def timeline_read():
        # May need retries until it lands on the survivor.
        return (yield from client.get(key, b"c", consistent=False))

    got = run_client(cluster, timeline_read(), limit=30.0)
    assert got.found and got.value == b"v"
    assert cluster.nodes[survivor].alive


def test_full_cluster_restart_preserves_data():
    cluster = make_cluster()
    client = cluster.client()
    keys = [b"fk-%d" % i for i in range(20)]

    def write_all():
        for key in keys:
            yield from client.put(key, b"c", b"durable")

    run_client(cluster, write_all())
    cluster.run(1.0)  # commit messages + markers ride down with forces
    for node in cluster.nodes.values():
        cluster.crash_node(node.name)
    cluster.run(3.0)  # sessions expire
    for node in cluster.nodes.values():
        cluster.restart_node(node.name)
    cluster.run_until(cluster.is_ready, limit=60.0, what="cluster ready")

    def read_all():
        out = []
        for key in keys:
            out.append((yield from client.get(key, b"c", consistent=True)))
        return out

    results = run_client(cluster, read_all(), limit=60.0)
    assert all(r.found and r.value == b"durable" for r in results)
    assert cluster.all_failures() == []


def test_disk_loss_recovers_via_catchup():
    """§6.1: a follower that lost all data goes straight to catch-up."""
    cluster = make_cluster()
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    leader = cluster.leader_of(cohort_id)
    victim = next(m for m in members if m != leader)
    keys = keys_for_cohort(cluster, cohort_id, 8)

    def write_all():
        for key in keys:
            yield from client.put(key, b"c", b"v")

    run_client(cluster, write_all())
    cluster.run(1.0)
    cluster.nodes[victim].lose_disk()
    replica = cluster.replica(victim, cohort_id)
    cluster.run_until(lambda: replica.role == Role.FOLLOWER, limit=30.0,
                      what="victim recovered")
    cluster.run(1.0)
    for key in keys:
        cell = replica.engine.get(key, b"c")
        assert cell is not None and cell.value == b"v"


def test_partitioned_leader_blocks_writes_until_heal():
    """CAP: Spinnaker is CA — a partitioned cohort stalls writes rather
    than diverging (§1.2, §8.3)."""
    cluster = make_cluster(**{"client_op_timeout": 3.0})
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    leader = cluster.leader_of(cohort_id)
    followers = [m for m in members if m != leader]
    key = keys_for_cohort(cluster, cohort_id, 1)[0]

    for f in followers:
        cluster.network.block(leader, f)

    def stalled():
        try:
            yield from client.put(key, b"c", b"x")
            return "committed"
        except RequestTimeout:
            return "timeout"

    assert run_client(cluster, stalled(), limit=30.0) == "timeout"
    cluster.network.heal()

    def resumed():
        yield from client.put(key, b"c", b"y")
        return (yield from client.get(key, b"c", consistent=True))

    got = run_client(cluster, resumed(), limit=30.0)
    assert got.value == b"y"
