"""Eventual-consistency property: replicas converge to the LWW winner
after anti-entropy, for arbitrary interleavings of writers/coordinators.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline import QUORUM, WEAK, CassandraCluster, CassandraConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn, timeout


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                          st.sampled_from([WEAK, QUORUM])),
                min_size=1, max_size=8),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_replicas_converge_to_last_write(write_plan, seed):
    """Writers fire through arbitrary coordinators at arbitrary
    consistency levels; after quiescence + anti-entropy, all replicas of
    the key hold the same (last) value."""
    cfg = CassandraConfig(log_profile=DiskProfile.ssd_log(),
                          hint_timeout=0.3, hint_replay_interval=1.0)
    cluster = CassandraCluster(n_nodes=3, config=cfg, seed=seed)
    sim = cluster.sim
    key = b"conv"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))
    gid = cohort.cohort_id
    state = {"done": 0}

    def writer(idx, coordinator_idx, consistency):
        client = cluster.client(f"w{idx}")
        # Force a specific coordinator by patching the client's choice.
        member = cohort.members[coordinator_idx]
        client._rng = _FixedChoice(member)
        yield timeout(sim, 0.002 * idx)  # near-concurrent, ordered starts
        yield from client.write(key, b"c", b"val-%d" % idx,
                                consistency=consistency)
        state["done"] += 1

    for idx, (coord_idx, consistency) in enumerate(write_plan):
        spawn(sim, writer(idx, coord_idx, consistency))
    cluster.run_until(lambda: state["done"] == len(write_plan),
                      limit=60.0, what="writers")
    cluster.run(5.0)  # anti-entropy: remaining fan-out + hints land

    cells = [cluster.nodes[m].engines[gid].get(key, b"c")
             for m in cohort.members]
    assert all(cell is not None for cell in cells)
    values = {cell.value for cell in cells}
    assert len(values) == 1, f"replicas diverged: {values}"
    # The winner is the write with the max (timestamp, seq).
    winner = max(cells, key=lambda c: (c.timestamp, c.version))
    assert all((c.timestamp, c.version)
               == (winner.timestamp, winner.version) for c in cells)


class _FixedChoice:
    """Stands in for the client's RNG: always picks the given member."""

    def __init__(self, member):
        self._member = member

    def choice(self, _seq):
        return self._member

    def random(self):
        return 0.5
