"""Focused tests for the baseline's anti-entropy machinery:
hinted handoff, read repair, failure suspicion."""

import pytest

from repro.baseline import QUORUM, WEAK, CassandraCluster, CassandraConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def make_cluster(**overrides):
    cfg = CassandraConfig(log_profile=DiskProfile.ssd_log(),
                          hint_timeout=0.5, hint_replay_interval=2.0)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return CassandraCluster(n_nodes=5, config=cfg, seed=17)


def run(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="op")
    return proc.result()


def group_of(cluster, key):
    return cluster.partitioner.cohort_for_key(key_of(key))


def test_hint_stored_for_dead_replica():
    cluster = make_cluster()
    client = cluster.client()
    cohort = group_of(cluster, b"h1")
    dead = cohort.members[2]
    cluster.crash_node(dead)

    def write_it():
        yield from client.write(b"h1", b"c", b"v", consistency=QUORUM)

    run(cluster, write_it())
    cluster.run(1.0)  # hint_timeout elapses
    hinted = sum(len(hints) for name, node in cluster.nodes.items()
                 if node.alive
                 for hints in [node.hints.get(dead, [])])
    assert hinted >= 1


def test_hint_replay_converges_restarted_replica():
    cluster = make_cluster()
    client = cluster.client()
    cohort = group_of(cluster, b"h2")
    gid = cohort.cohort_id
    dead = cohort.members[1]
    cluster.crash_node(dead)

    def write_it():
        yield from client.write(b"h2", b"c", b"v", consistency=QUORUM)

    run(cluster, write_it())
    cluster.run(1.0)
    cluster.restart_node(dead)
    assert cluster.nodes[dead].engines[gid].get(b"h2", b"c") is None
    cluster.run(6.0)  # a few replay intervals
    cell = cluster.nodes[dead].engines[gid].get(b"h2", b"c")
    assert cell is not None and cell.value == b"v"
    # Hint queues drained.
    assert all(not node.hints.get(dead) for node in
               cluster.nodes.values() if node.alive)


def test_read_repair_counter_increments_on_stale_quorum_member():
    cluster = make_cluster()
    cohort = group_of(cluster, b"rr2")
    gid = cohort.cohort_id
    # Manually put a stale value on one replica and a newer one on the
    # others, then quorum-read through the up-to-date coordinator.
    from repro.baseline.messages import ReplicaWrite
    fresh = ReplicaWrite(group_id=gid, key=b"rr2", colname=b"c",
                         value=b"new", timestamp=10.0, seq=2)
    stale_holder = cohort.members[0]
    for member in cohort.members:
        node = cluster.nodes[member]
        if member == stale_holder:
            continue
        proc = spawn(cluster.sim, node._apply_write_locally(fresh))
        cluster.run_until(lambda: proc.triggered, limit=10.0, what="seed")
    coordinator = cluster.nodes[cohort.members[1]]
    from repro.baseline.messages import CoordRead

    class FakeReq:
        src = "tester"
        payload = CoordRead(key=b"rr2", colname=b"c",
                            consistency=QUORUM)
        responses = []

        def respond(self, value, size=0):
            self.responses.append(value)

    req = FakeReq()
    proc = spawn(cluster.sim, coordinator._coordinate_read(req))
    cluster.run_until(lambda: proc.triggered, limit=10.0, what="read")
    # Run reads until the stale replica was actually contacted (the
    # remote pick is the first other member).
    repaired = False
    for _ in range(6):
        cluster.run(1.0)
        cell = cluster.nodes[stale_holder].engines[gid].get(b"rr2", b"c")
        if cell is not None and cell.value == b"new":
            repaired = True
            break
        req2 = FakeReq()
        proc = spawn(cluster.sim, coordinator._coordinate_read(req2))
        cluster.run_until(lambda: proc.triggered, limit=10.0, what="read")
    assert repaired
    assert any(node.read_repairs > 0 for node in cluster.nodes.values())


def test_suspicion_routes_quorum_reads_around_dead_replica():
    cluster = make_cluster()
    client = cluster.client()
    cohort = group_of(cluster, b"s1")
    dead = cohort.members[2]
    cluster.crash_node(dead)

    def ops():
        yield from client.write(b"s1", b"c", b"v", consistency=QUORUM)
        first = yield from client.read(b"s1", b"c", consistency=QUORUM)
        second = yield from client.read(b"s1", b"c", consistency=QUORUM)
        return first, second

    first, second = run(cluster, ops(), limit=120.0)
    assert first.found and second.found
    suspecting = [node for node in cluster.nodes.values()
                  if node.alive and dead in node.suspected]
    # At least one coordinator learned to avoid the dead replica (unless
    # the random coordinators never needed it, in which case reads were
    # already fast — both acceptable, but reads must have succeeded).
    assert first.value == b"v" and second.value == b"v"


def test_weak_write_data_loss_window():
    """§D.6.1: with weak writes, a single node failure can lose
    committed data (the ack came from one replica only)."""
    cfg_overrides = {"hint_timeout": 30.0, "hint_replay_interval": 60.0}
    cluster = make_cluster(**cfg_overrides)
    client = cluster.client()
    cohort = group_of(cluster, b"wl")
    gid = cohort.cohort_id
    # Partition the coordinator-side so only one replica gets the write:
    # write weak through a chosen coordinator, then kill that replica
    # before anything propagates.
    coordinator = cohort.members[0]
    for other in cohort.members[1:]:
        cluster.network.block(coordinator, other)

    from repro.baseline.messages import CoordWrite

    class FakeReq:
        src = "tester"
        payload = CoordWrite(key=b"wl", colname=b"c", value=b"only-copy",
                             consistency=WEAK)
        responses = []

        def respond(self, value, size=0):
            FakeReq.responses.append(value)

    proc = spawn(cluster.sim,
                 cluster.nodes[coordinator]._coordinate_write(FakeReq()))
    cluster.run_until(lambda: proc.triggered, limit=10.0, what="weak write")
    assert FakeReq.responses and FakeReq.responses[0]["ok"]
    # The acknowledged write lives on exactly one replica...
    holders = [m for m in cohort.members
               if cluster.nodes[m].engines[gid].get(b"wl", b"c")]
    assert holders == [coordinator]
    # ...which now dies for good: the acknowledged write is gone.
    cluster.network.heal()
    cluster.crash_node(coordinator)

    def read_survivors():
        return (yield from client.read(b"wl", b"c", consistency=QUORUM))

    got = run(cluster, read_survivors(), limit=60.0)
    assert not got.found  # committed-and-acknowledged, yet lost
