"""Tests for the eventually consistent baseline store."""

import pytest

from repro.baseline import (QUORUM, WEAK, CassandraCluster,
                            CassandraConfig)
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def fast_config(**overrides):
    cfg = CassandraConfig(log_profile=DiskProfile.ssd_log())
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def make_cluster(n=5, **overrides):
    return CassandraCluster(n_nodes=n, config=fast_config(**overrides),
                            seed=11)


def run_client(cluster, gen, limit=60.0):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=limit, what="client op")
    return proc.result()


def test_quorum_write_then_quorum_read():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.write(b"k", b"c", b"v", consistency=QUORUM)
        return (yield from client.read(b"k", b"c", consistency=QUORUM))

    got = run_client(cluster, scenario())
    assert got.found and got.value == b"v"
    assert cluster.all_failures() == []


def test_weak_write_then_weak_read_usually_converges():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.write(b"k", b"c", b"v", consistency=WEAK)
        # All replicas still receive the write; give them a moment.
        return True

    run_client(cluster, scenario())
    cluster.run(1.0)
    members = cluster.partitioner.cohort_for_key(
        __import__("repro.core.partition", fromlist=["key_of"]
                   ).key_of(b"k")).members
    gid = cluster.partitioner.cohort_for_key(
        __import__("repro.core.partition", fromlist=["key_of"]
                   ).key_of(b"k")).cohort_id
    for member in members:
        cell = cluster.nodes[member].engines[gid].get(b"k", b"c")
        assert cell is not None and cell.value == b"v"


def test_last_write_wins_on_conflict():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.write(b"k", b"c", b"old", consistency=QUORUM)
        yield from client.write(b"k", b"c", b"new", consistency=QUORUM)
        return (yield from client.read(b"k", b"c", consistency=QUORUM))

    got = run_client(cluster, scenario())
    assert got.value == b"new"


def test_delete_with_tombstone():
    cluster = make_cluster()
    client = cluster.client()

    def scenario():
        yield from client.write(b"k", b"c", b"v", consistency=QUORUM)
        yield from client.delete(b"k", b"c", consistency=QUORUM)
        return (yield from client.read(b"k", b"c", consistency=QUORUM))

    got = run_client(cluster, scenario())
    assert not got.found


def test_quorum_ops_survive_one_node_down():
    cluster = make_cluster()
    client = cluster.client()
    from repro.core.partition import key_of
    cohort = cluster.partitioner.cohort_for_key(key_of(b"k"))
    cluster.crash_node(cohort.members[0])

    def scenario():
        yield from client.write(b"k", b"c", b"v", consistency=QUORUM)
        return (yield from client.read(b"k", b"c", consistency=QUORUM))

    got = run_client(cluster, scenario())
    assert got.found and got.value == b"v"


def test_replica_stays_stale_until_anti_entropy():
    """The consistency gap the paper describes (§9): a replica that was
    down during a quorum write stays stale after restart — there is no
    quorum-based recovery — until hinted handoff replays the write."""
    cluster = make_cluster()
    client = cluster.client()
    from repro.core.partition import key_of
    cohort = cluster.partitioner.cohort_for_key(key_of(b"k"))
    gid = cohort.cohort_id
    lagger = cohort.members[2]
    cluster.crash_node(lagger)

    def write_it():
        yield from client.write(b"k", b"c", b"v", consistency=QUORUM)

    run_client(cluster, write_it())
    cluster.restart_node(lagger)
    # Stale right after restart: local log replay knows nothing of b"k".
    assert cluster.nodes[lagger].engines[gid].get(b"k", b"c") is None
    # Hinted handoff eventually converges it.
    cluster.run(15.0)
    cell = cluster.nodes[lagger].engines[gid].get(b"k", b"c")
    assert cell is not None and cell.value == b"v"


def test_read_repair_fixes_stale_replica():
    cluster = make_cluster()
    client = cluster.client()
    from repro.core.partition import key_of
    cohort = cluster.partitioner.cohort_for_key(key_of(b"rr"))
    gid = cohort.cohort_id
    lagger = cohort.members[2]
    for member in cohort.members[:2]:
        cluster.network.block(lagger, member)

    def write_it():
        yield from client.write(b"rr", b"c", b"v", consistency=QUORUM)

    run_client(cluster, write_it())
    cluster.network.heal()
    # Quorum reads from the two up-to-date replicas never touch the
    # laggard; force many quorum reads from random coordinators until a
    # stale response triggers repair, or hinted handoff replays.
    def read_lots():
        for _ in range(30):
            yield from client.read(b"rr", b"c", consistency=QUORUM)

    run_client(cluster, read_lots())
    cluster.run(15.0)  # hint replay interval
    cell = cluster.nodes[lagger].engines[gid].get(b"rr", b"c")
    assert cell is not None and cell.value == b"v"


def test_restarted_node_replays_its_local_log():
    cluster = make_cluster()
    client = cluster.client()
    from repro.core.partition import key_of
    cohort = cluster.partitioner.cohort_for_key(key_of(b"k"))
    gid = cohort.cohort_id

    def write_it():
        yield from client.write(b"k", b"c", b"v", consistency=QUORUM)

    run_client(cluster, write_it())
    cluster.run(0.5)
    victim = cohort.members[0]
    cluster.crash_node(victim)
    cluster.run(0.5)
    cluster.restart_node(victim)
    cell = cluster.nodes[victim].engines[gid].get(b"k", b"c")
    # It replays whatever was durably logged locally before the crash.
    assert cell is not None and cell.value == b"v"


def test_unavailable_when_quorum_unreachable():
    cluster = make_cluster(client_op_timeout=3.0)
    client = cluster.client()
    from repro.core.datamodel import RequestTimeout
    from repro.core.partition import key_of
    cohort = cluster.partitioner.cohort_for_key(key_of(b"k"))
    for member in cohort.members[1:]:
        cluster.crash_node(member)

    def scenario():
        try:
            yield from client.write(b"k", b"c", b"v", consistency=QUORUM)
            return "ok"
        except RequestTimeout:
            return "timeout"

    assert run_client(cluster, scenario(), limit=30.0) == "timeout"

    def weak_still_works():
        yield from client.write(b"k2", b"c", b"v", consistency=WEAK)
        return "ok"

    # Weak writes need only 1 ack: still available with 1 replica up.
    assert run_client(cluster, weak_still_works(), limit=30.0) == "ok"
