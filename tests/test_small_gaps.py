"""Small-surface tests: helpers and edge branches across packages."""

import pytest

from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.storage.lsn import LSN
from repro.storage.records import WriteRecord
from repro.storage.wal import SharedLog


def wrec(seq, cohort=0):
    return WriteRecord(lsn=LSN(1, seq), cohort_id=cohort, key=b"k",
                       colname=b"c", value=b"v", version=seq)


def test_wal_record_at_and_cohorts():
    log = SharedLog()
    log.append(wrec(1, cohort=0))
    log.append(wrec(1, cohort=3))
    assert log.record_at(0, LSN(1, 1)).cohort_id == 0
    assert log.record_at(0, LSN(9, 9)) is None
    assert sorted(log.cohorts()) == [0, 3]


def test_network_heal_single_pair():
    sim = Simulator()
    net = Network(sim, RngRegistry(2))
    net.endpoint("a")
    net.endpoint("b")
    net.endpoint("c")
    net.block("a", "b")
    net.block("a", "c")
    net.heal("a", "b")
    assert not net.is_blocked("a", "b")
    assert net.is_blocked("a", "c")


def test_baseline_double_crash_and_restart_are_idempotent():
    from repro.baseline import CassandraCluster, CassandraConfig
    from repro.sim.disk import DiskProfile
    cluster = CassandraCluster(
        n_nodes=3, config=CassandraConfig(
            log_profile=DiskProfile.ssd_log()), seed=4)
    node = cluster.nodes["cnode0"]
    node.crash()
    node.crash()       # no-op
    assert not node.alive
    node.restart()
    node.restart()     # no-op
    assert node.alive


def test_spinnaker_node_double_boot_is_noop():
    from repro.core import SpinnakerCluster, SpinnakerConfig
    from repro.sim.disk import DiskProfile
    cluster = SpinnakerCluster(
        n_nodes=3, config=SpinnakerConfig(
            log_profile=DiskProfile.ssd_log()), seed=4)
    cluster.start()
    node = cluster.nodes["node0"]
    incarnation = node.incarnation
    node.boot()        # already alive: no new incarnation
    assert node.incarnation == incarnation


def test_compaction_policy_bucket_reset_on_size_jump():
    from repro.storage.compaction import SizeTieredPolicy
    from repro.storage.memtable import Memtable
    from repro.storage.sstable import SSTable

    def table(size_bytes, seq):
        mt = Memtable()
        mt.apply(WriteRecord(lsn=LSN(1, seq), cohort_id=0,
                             key=b"k%d" % seq, colname=b"c",
                             value=b"x" * size_bytes, version=1))
        return SSTable.from_memtable(mt)

    policy = SizeTieredPolicy(fanin=2, bucket_ratio=1.5)
    # Sizes 100, 10_000, 10_500: the jump resets the bucket; the two
    # large ones merge.
    tables = [table(100, 1), table(10_000, 2), table(10_500, 3)]
    picked = policy.pick(tables)
    assert len(picked) == 2
    assert all(t.bytes_size > 1_000 for t in picked)


def test_lsn_with_epoch_upgrade():
    assert LSN(2, 7).with_epoch(5) == LSN(5, 7)


def test_histogram_single_sample_percentiles():
    from repro.sim.metrics import Histogram
    hist = Histogram()
    hist.add(3.0)
    assert hist.percentile(0) == hist.percentile(50) == \
        hist.percentile(100) == 3.0
    assert hist.stddev() == 0.0


def test_client_transaction_routing_key():
    from repro.core.messages import ClientTransaction, TxnOp
    txn = ClientTransaction(ops=(
        TxnOp(key=b"first", colname=b"c", value=b"1"),
        TxnOp(key=b"second", colname=b"c", value=b"2")))
    assert txn.key == b"first"


def test_coord_recipes_lock_release_without_acquire():
    from repro.coord.client import CoordClient
    from repro.coord.recipes import DistributedLock
    from repro.coord.service import CoordinationService
    from repro.coord.znode import CoordError
    from repro.sim.process import spawn
    sim = Simulator()
    net = Network(sim, RngRegistry(9))
    CoordinationService(sim, net)
    client = CoordClient(sim, net.endpoint("n"))
    lock = DistributedLock(client, "/locks/x")

    def scenario():
        yield from client.start()
        try:
            yield from lock.release()
        except CoordError:
            return "rejected"

    proc = spawn(sim, scenario())
    sim.run(until=10.0)
    assert proc.result() == "rejected"


def test_tracer_filters_compose():
    from repro.sim.tracing import Tracer
    tracer = Tracer()
    tracer.emit("a", "n1", "x")
    tracer.emit("a", "n2", "y")
    tracer.emit("b", "n1", "z")
    assert len(tracer.events(category="a", node="n1")) == 1
    tracer.clear()
    assert len(tracer) == 0
