"""The Solver half: deterministic coordinate descent over knob grids.

The search starts from the profile's hand-tuned defaults (trial 0 — the
baseline every later trial is compared against), then walks the
profile's searched knobs in registry order.  For each knob it evaluates
every candidate value from the registry grid (skipping the current
value — already measured) and adopts the best candidate iff it beats
the incumbent score by ``min_improvement``.  Passes repeat until a full
pass adopts nothing (converged) or the trial budget runs out.

Everything is deterministic given ``(profile, seed, budget)``: the
grids are declarative, the walk order is the registry order, the
evaluator is a seeded simulation, and ties break toward the incumbent.
Re-running a tuner seed reproduces the ledger bit-for-bit
(``tests/tune/test_search.py`` proves it).

The *ledger* records every trial — knob, value, full overlay, score,
metrics, phase shares, and the best-score-so-far trajectory — so a
tuning run can be audited or diffed without re-running anything.
``TUNING.md`` walks through reading one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .evaluator import TrialEval, evaluate, scaled_shape
from .profiles import TuneProfile, get_profile
from .registry import Value, get_knob

__all__ = ["Trial", "TuneResult", "tune"]


@dataclass
class Trial:
    """One evaluated configuration."""

    index: int
    #: knob being probed; None for the baseline trial
    knob: Optional[str]
    #: candidate value probed (None for the baseline trial)
    value: Optional[Value]
    #: the full overlay evaluated (baseline: {})
    values: Dict[str, Value]
    eval: TrialEval
    #: whether this candidate was adopted into the incumbent config
    adopted: bool = False
    best_so_far: float = 0.0

    def to_json(self) -> dict:
        out = {"trial": self.index, "knob": self.knob,
               "value": self.value, "values": dict(self.values),
               "adopted": self.adopted,
               "best_so_far": self.best_so_far}
        out.update(self.eval.to_json())
        return out


@dataclass
class TuneResult:
    """A finished (or budget-exhausted) tuning run."""

    profile: str
    seed: int
    scale: float
    trials: List[Trial] = field(default_factory=list)
    best_values: Dict[str, Value] = field(default_factory=dict)
    best_score: float = 0.0
    baseline_score: float = 0.0
    #: a full pass adopted nothing (vs. budget exhaustion)
    converged: bool = False
    passes_run: int = 0
    #: the profile object the run used (None -> registry lookup by name)
    profile_spec: Optional[TuneProfile] = None

    @property
    def baseline(self) -> Trial:
        return self.trials[0]

    @property
    def best_trial(self) -> Trial:
        best = self.trials[0]
        for t in self.trials[1:]:
            if t.eval.score < best.eval.score:
                best = t
        return best

    @property
    def improvement(self) -> float:
        """Score improvement over the baseline (positive = better)."""
        return self.baseline_score - self.best_score

    def to_json(self) -> dict:
        profile = self.profile_spec or get_profile(self.profile)
        threads, ops, warmup = scaled_shape(profile, self.scale)
        return {
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "evaluator": {"n_nodes": profile.n_nodes,
                          "threads": threads, "ops_per_thread": ops,
                          "warmup_ops": warmup,
                          "placement": profile.placement,
                          "multi_dc": profile.topology is not None},
            "objective": profile.objective.to_json(),
            "searched": list(profile.searched),
            "trials": [t.to_json() for t in self.trials],
            "baseline_score": self.baseline_score,
            "best_score": self.best_score,
            "best_values": dict(sorted(self.best_values.items())),
            "converged": self.converged,
            "passes_run": self.passes_run,
        }

    def write_ledger(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")


def tune(profile_name: str, seed: int = 1, max_trials: int = 48,
         passes: int = 3, scale: float = 1.0,
         min_improvement: float = 1e-6,
         start: Optional[Dict[str, Value]] = None,
         profile: Optional[TuneProfile] = None) -> TuneResult:
    """Run coordinate descent for one profile; see module docstring.

    ``max_trials`` is the hard evaluation budget (baseline included);
    ``passes`` bounds full sweeps over the searched knobs.  ``start``
    seeds the incumbent overlay — the default empty overlay starts from
    the hand-tuned config; fig-tune's recovery arm starts from a
    deliberately detuned one.  ``profile`` overrides the registry
    lookup (tests inject tiny profiles).

    Identical configurations reached twice (a later pass re-probing a
    grid point) are served from a memo instead of re-simulating — the
    evaluator is deterministic, so the memo changes nothing but the
    budget spent.
    """
    prof = profile if profile is not None else get_profile(profile_name)
    result = TuneResult(profile=profile_name, seed=seed, scale=scale,
                        profile_spec=prof)

    current: Dict[str, Value] = dict(start or {})
    base_cfg = prof.base_config()
    memo: Dict[tuple, TrialEval] = {}

    def run_trial(values: Dict[str, Value]) -> TrialEval:
        key = tuple(sorted(values.items()))
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = evaluate(prof, values, seed=seed,
                                       scale=scale)
        return hit

    base = run_trial(current)
    best = base.score
    result.trials.append(Trial(0, None, None, dict(current), base,
                               adopted=True, best_so_far=best))
    result.baseline_score = base.score

    out_of_budget = False
    for pass_no in range(passes):
        improved_this_pass = False
        for knob_name in prof.searched:
            knob = get_knob(knob_name)
            incumbent = current.get(knob_name,
                                    getattr(base_cfg, knob_name))
            best_cand: Optional[Value] = None
            best_cand_score = best
            best_cand_trial: Optional[Trial] = None
            for cand in knob.candidates:
                if cand == incumbent:
                    continue
                probe = dict(current)
                probe[knob_name] = cand
                key = tuple(sorted(probe.items()))
                cached = key in memo
                if not cached and len(result.trials) >= max_trials:
                    out_of_budget = True
                    break
                ev = run_trial(probe)
                trial = None
                if not cached:
                    trial = Trial(len(result.trials), knob_name, cand,
                                  probe, ev)
                    result.trials.append(trial)
                if ev.score < best_cand_score - min_improvement:
                    best_cand, best_cand_score = cand, ev.score
                    best_cand_trial = trial
                if trial is not None:
                    trial.best_so_far = min(best, best_cand_score)
            if best_cand is not None:
                current[knob_name] = best_cand
                best = best_cand_score
                improved_this_pass = True
                if best_cand_trial is not None:
                    best_cand_trial.adopted = True
            if out_of_budget:
                break
        result.passes_run = pass_no + 1
        if out_of_budget:
            break
        if not improved_this_pass:
            result.converged = True
            break

    result.best_values = dict(current)
    result.best_score = best
    return result
