"""Self-tuning control plane for protocol knobs (offline).

An Evaluator/Solver-style tuner over the repo's deterministic
simulations:

* :mod:`repro.tune.registry` — the declarative knob inventory (every
  tunable's type, range, owning module, phase it moves; rendered as
  ``TUNING.md`` and mechanically checked against it);
* :mod:`repro.tune.objective` — the scalar score: p50 latency
  amplified by the shares of the phases that dominate the profile,
  minus a throughput credit, plus an error penalty;
* :mod:`repro.tune.evaluator` — one trial = one fully traced,
  seeded closed-loop load point (bit-identical per seed);
* :mod:`repro.tune.search` — coordinate descent over the registry
  grids with a trial ledger and hard budget caps;
* :mod:`repro.tune.profiles` — the sata/ssd/mem/wan tuning profiles
  and the checked-in ``configs/tuned-<profile>.json`` overlays that
  ``python -m repro bench ... --tuned-profile`` applies.

``python -m repro tune`` is the CLI front-end; the ``fig-tune``
experiment measures tuned-vs-hand-tuned deltas.  See ``TUNING.md``.
"""

from .objective import ObjectiveSpec, objective_from_report, objective_score
from .profiles import (PROFILES, TuneProfile, activate_tuned_profile,
                       clear_tuned_profile, get_profile, load_tuned_config,
                       load_tuned_values, tuned_config_path,
                       write_tuned_config)
from .registry import (KNOBS, Knob, apply_values, config_values, get_knob,
                       knob_names, searched_knobs, validate_registry)

__all__ = [
    "KNOBS", "Knob", "knob_names", "get_knob", "searched_knobs",
    "apply_values", "config_values", "validate_registry",
    "ObjectiveSpec", "objective_score", "objective_from_report",
    "PROFILES", "TuneProfile", "get_profile", "tuned_config_path",
    "load_tuned_values", "load_tuned_config", "write_tuned_config",
    "activate_tuned_profile", "clear_tuned_profile",
]
