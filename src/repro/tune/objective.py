"""The tuner's scalar objective.

A trial's score combines the evaluator's end-to-end metrics (the same
numbers ``BENCH_report.json`` summarizes: p50 latency, sustained
throughput, errors) with the per-phase latency attribution ``repro.obs``
produces for the run.  The phase term is what makes the objective
*targeted*: the profile names the phases that dominate its latency
(fig9 SATA: ``log_force`` at 0.70 share), and a fraction
(``phase_emphasis``) of the mean time spent in those phases is charged
again on top of the end-to-end p50 — a millisecond saved in the
dominating phase is worth a bit more than one saved anywhere else,
steering the search toward the hardware's actual bottleneck without
letting attribution wins outvote real end-to-end latency.

The phase term deliberately charges the focus phases' *absolute* mean
time, not their share of the total.  An earlier share-based form
(``p50 * (1 + emphasis * focus_share)``) was gameable: a knob that
*adds* latency in a non-focus phase (say a longer batch window) shrinks
the focus phases' relative share and can lower the score while making
every real metric worse.  Absolute time is immune — adding time
elsewhere cannot reduce it.

Scores are minimized.  The formula is deliberately simple enough to
hand-compute (``tests/tune/test_objective.py`` does exactly that)::

    score = p50_ms + phase_emphasis * focus_ms
            - throughput_weight * throughput / 1000
            + error_penalty * errors / max(ops, 1)

where ``focus_ms`` is the summed mean latency of the spec's focus
phases for the traced op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ObjectiveSpec", "focus_ms", "focus_share", "objective_score",
           "objective_from_report"]


@dataclass(frozen=True)
class ObjectiveSpec:
    """Weights for one profile's objective (see module docstring)."""

    #: phases whose mean time is charged on top of p50 (the ones that
    #: dominate this profile's latency, per BENCH_report.json)
    focus_phases: Tuple[str, ...] = ("log_force",)
    #: extra cost per ms spent in the focus phases.  Deliberately a
    #: *steering* weight, well below 1.0: at 1.0 the focus term rivals
    #: p50 itself and the search will trade real end-to-end latency for
    #: attribution wins (e.g. longer batch windows shrink log_force's
    #: mean while making every client wait longer).
    phase_emphasis: float = 0.25
    #: ms of p50 one kreq/s of throughput is worth
    throughput_weight: float = 0.5
    #: ms added per unit error *rate* — any failed op must dominate
    error_penalty: float = 1000.0
    #: which traced op the phase table comes from
    op: str = "write"

    def to_json(self) -> dict:
        return {"focus_phases": list(self.focus_phases),
                "phase_emphasis": self.phase_emphasis,
                "throughput_weight": self.throughput_weight,
                "error_penalty": self.error_penalty,
                "op": self.op}


def focus_ms(phases: Dict[str, dict], spec: ObjectiveSpec) -> float:
    """Summed mean latency (ms) of the spec's focus phases.

    ``phases`` is one op's ``{phase: {mean_ms, share, ...}}`` mapping in
    the shape :func:`repro.obs.phase_summary` produces (and
    ``BENCH_report.json`` embeds).  Missing phases contribute 0.
    """
    return sum(float(phases[p]["mean_ms"]) for p in spec.focus_phases
               if p in phases)


def focus_share(phases: Dict[str, dict], spec: ObjectiveSpec) -> float:
    """Summed share of the spec's focus phases (ledger color only — the
    score charges absolute time, see the module docstring)."""
    return sum(float(phases[p]["share"]) for p in spec.focus_phases
               if p in phases)


def objective_score(metrics: Dict[str, float], phases: Dict[str, dict],
                    spec: ObjectiveSpec) -> float:
    """Scalar score (lower is better) for one trial.

    ``metrics`` needs ``p50_ms``, ``throughput``, ``errors`` and
    ``ops``; ``phases`` is the traced op's phase table (may be empty —
    e.g. an all-errors trial traces nothing — in which case the phase
    term is 0 and the error penalty does the judging).
    """
    latency = (float(metrics["p50_ms"])
               + spec.phase_emphasis * focus_ms(phases, spec))
    throughput = (spec.throughput_weight
                  * float(metrics["throughput"]) / 1000.0)
    errors = (spec.error_penalty * float(metrics.get("errors", 0))
              / max(float(metrics.get("ops", 0)), 1.0))
    return latency - throughput + errors


def objective_from_report(experiment: dict, series: str,
                          spec: ObjectiveSpec = ObjectiveSpec(),
                          ) -> float:
    """Score a ``BENCH_report.json`` experiment entry directly.

    Reads the named series' summary (``low_load_mean_ms`` stands in for
    p50 when the summary carries no p50) plus the entry's ``phases``
    section.  This is the bridge between offline tuning runs and the
    committed baseline: the same objective that drives the tuner can be
    evaluated over a checked-in report, making the scores comparable.
    """
    summary = experiment["series"][series]
    metrics = {
        "p50_ms": summary.get("low_load_p50_ms",
                              summary["low_load_mean_ms"]),
        "throughput": summary["peak_throughput_rps"],
        "errors": 0,
        "ops": 1,
    }
    phase_section = experiment.get("phases", {}).get(spec.op, {})
    return objective_score(metrics, phase_section.get("phases", {}),
                           spec)
