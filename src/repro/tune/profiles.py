"""Tuning profiles and the checked-in tuned configs.

A :class:`TuneProfile` bundles what one tuning run needs: the base
(hand-tuned) config for a hardware profile, the deterministic evaluator
shape (nodes, closed-loop threads, ops per trial — the per-trial budget
cap), the phase-weighted objective, the knobs the search walks, and an
optional multi-DC topology.  Four profiles mirror the repo's benchmark
matrix: ``sata`` / ``ssd`` / ``mem`` (flat, Figs. 9/13/16) and ``wan``
(3 datacenters, fig-wan's link model).

Winning configs are checked in under ``configs/tuned-<profile>.json``
and loadable two ways:

* :func:`load_tuned_config` — a ready :class:`SpinnakerConfig` for
  programmatic use;
* ``python -m repro bench ... --tuned-profile <name>`` — every
  Spinnaker cluster a bench run builds gets the tuned overlay applied
  (see :func:`activate_tuned_profile` and ``bench/harness.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..core.config import SpinnakerConfig
from ..sim.disk import DiskProfile
from ..sim.topology import Topology
from .objective import ObjectiveSpec
from .registry import Value, apply_values, get_knob

__all__ = ["TuneProfile", "PROFILES", "DETUNED_START", "get_profile",
           "CONFIG_DIR", "tuned_config_path", "load_tuned_values",
           "load_tuned_config", "write_tuned_config",
           "activate_tuned_profile", "clear_tuned_profile",
           "active_overlay"]

#: repo-root configs/ directory holding the tuned overlays
CONFIG_DIR = Path(__file__).resolve().parents[3] / "configs"


def _wan_topology(n_nodes: int, n_dcs: int = 3,
                  wan_one_way: float = 0.02) -> Topology:
    """A small 3-DC topology in the fig-wan mold (symmetric links are
    enough for tuning; the asymmetry in fig-wan probes routing, not
    knobs)."""
    topo = Topology(wan_one_way=wan_one_way, preferred_dc="dc0")
    for i in range(n_nodes):
        topo.place(f"node{i}", f"dc{i % n_dcs}")
    return topo


@dataclass(frozen=True)
class TuneProfile:
    """Everything one deterministic tuning run needs."""

    name: str
    #: builds the hand-tuned base config the search starts from
    base_config: Callable[[], SpinnakerConfig]
    #: knobs the coordinate descent walks, in order
    searched: Tuple[str, ...]
    objective: ObjectiveSpec
    #: evaluator shape — one trial is one closed-loop load point
    n_nodes: int = 5
    threads: int = 24
    ops_per_thread: int = 40
    warmup_ops: int = 8
    #: builds the (topology, placement) pair; None = flat cluster
    topology: Optional[Callable[[int], Topology]] = None
    placement: str = "ring"
    doc: str = ""


_BATCH_KNOBS = ("propose_batching", "propose_batch_max_records",
                "propose_batch_window", "propose_batch_adaptive",
                "group_commit")
_PROTO_KNOBS = ("commit_period", "piggyback_commits")

#: A deliberately bad starting overlay for recovery runs: batching and
#: group commit off, commit broadcasts nearly stalled.  fig-tune's
#: recovery arm starts the search here and must climb back to within
#: noise of the hand-tuned optimum — proof the search, not the starting
#: point, does the work.  Every value is legal (in range) but outside
#: the candidate grids' sweet spot.
DETUNED_START: Dict[str, Value] = {
    "propose_batching": False,
    "group_commit": False,
    "commit_period": 10.0,
}


PROFILES: Dict[str, TuneProfile] = {
    "sata": TuneProfile(
        name="sata",
        base_config=lambda: SpinnakerConfig(
            log_profile=DiskProfile.sata_log()),
        searched=_BATCH_KNOBS + _PROTO_KNOBS,
        objective=ObjectiveSpec(focus_phases=("log_force",)),
        doc="dedicated SATA logging disk (fig9); log_force dominates "
            "(0.70 share), so batching and group commit are the levers"),
    "ssd": TuneProfile(
        name="ssd",
        base_config=lambda: SpinnakerConfig(
            log_profile=DiskProfile.ssd_log()),
        searched=_BATCH_KNOBS + _PROTO_KNOBS,
        objective=ObjectiveSpec(
            focus_phases=("replicate_rtt", "quorum_wait")),
        doc="flash log (fig13); forces are cheap, so the replication "
            "round trip and quorum wait dominate"),
    "mem": TuneProfile(
        name="mem",
        base_config=lambda: SpinnakerConfig(
            log_profile=DiskProfile.memory_log()),
        searched=_BATCH_KNOBS + _PROTO_KNOBS,
        objective=ObjectiveSpec(
            focus_phases=("propose", "replicate_rtt")),
        threads=32,
        doc="main-memory log (fig16); per-message CPU cost dominates, "
            "the regime proposal batching was built for"),
    "wan": TuneProfile(
        name="wan",
        base_config=lambda: SpinnakerConfig(
            log_profile=DiskProfile.ssd_log()),
        searched=_PROTO_KNOBS + ("propose_batch_max_records",
                                 "propose_batch_window"),
        objective=ObjectiveSpec(
            focus_phases=("replicate_rtt", "quorum_wait"),
            throughput_weight=0.1),
        n_nodes=6, threads=12, ops_per_thread=30,
        topology=_wan_topology, placement="spread",
        doc="3-DC spread placement over ~20 ms WAN links (fig-wan); "
            "the quorum ack crosses a WAN link, so the commit "
            "broadcast cadence and batching amortization are what's "
            "left to tune"),
}


def get_profile(name: str) -> TuneProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown tuning profile {name!r}; choices: "
                       f"{', '.join(sorted(PROFILES))}") from None


# ---------------------------------------------------------------------------
# Checked-in tuned configs
# ---------------------------------------------------------------------------

def tuned_config_path(name: str, config_dir: Optional[Path] = None
                      ) -> Path:
    get_profile(name)  # validate the name
    return (config_dir or CONFIG_DIR) / f"tuned-{name}.json"


def load_tuned_values(name: str, config_dir: Optional[Path] = None
                      ) -> Dict[str, Value]:
    """The tuned knob overlay for ``name`` (validated against the
    registry)."""
    path = tuned_config_path(name, config_dir)
    with open(path) as fh:
        payload = json.load(fh)
    values: Dict[str, Value] = {}
    for key, value in sorted(payload["values"].items()):
        knob = get_knob(key)
        if knob.type == "int":
            value = int(value)
        elif knob.type == "float":
            value = float(value)
        values[key] = value
    return values


def load_tuned_config(name: str, config_dir: Optional[Path] = None
                      ) -> SpinnakerConfig:
    """The profile's base config with its tuned overlay applied."""
    profile = get_profile(name)
    return apply_values(profile.base_config(),
                        load_tuned_values(name, config_dir))


def write_tuned_config(name: str, values: Dict[str, Value],
                       meta: Optional[dict] = None,
                       config_dir: Optional[Path] = None) -> Path:
    """Write ``configs/tuned-<name>.json`` (values + provenance)."""
    path = tuned_config_path(name, config_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"profile": name, "values": dict(sorted(values.items()))}
    if meta:
        payload["meta"] = meta
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# The --tuned-profile overlay hook
# ---------------------------------------------------------------------------

_ACTIVE: Dict[str, Dict[str, Value]] = {}


def activate_tuned_profile(name: str,
                           config_dir: Optional[Path] = None) -> None:
    """Make every subsequently built bench target overlay the tuned
    values of ``name`` (see ``SpinnakerTarget``).  One profile at a
    time; CLI runs clear it in a ``finally``."""
    _ACTIVE.clear()
    _ACTIVE[name] = load_tuned_values(name, config_dir)


def clear_tuned_profile() -> None:
    _ACTIVE.clear()


def active_overlay() -> Optional[Dict[str, Value]]:
    """The active tuned overlay, or None when no profile is active."""
    if not _ACTIVE:
        return None
    return next(iter(_ACTIVE.values()))
