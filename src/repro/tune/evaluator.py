"""The Evaluator half of the Evaluator/Solver tuner.

One *trial* evaluates one knob overlay: build the profile's base config,
apply the overlay, run one fully traced closed-loop load point on a
fresh deterministic cluster, and fold the result into (metrics, phase
shares, scalar score).  Determinism is the load-bearing property — the
same (profile, overlay, seed) triple always produces bit-identical
numbers, because the simulator is seeded and request tracing provably
does not perturb simulated time (PR 5).  That is what lets coordinate
descent compare trials pairwise without repetitions, and what makes a
tuning run reproducible from its ledger.

The per-trial budget is capped by the profile's evaluator shape
(``threads * (warmup + ops)`` operations); ``scale`` shrinks it the
same way benchmark scales do, so CI can exercise the full search loop
in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import SpinnakerConfig
from .objective import objective_score
from .profiles import TuneProfile
from .registry import Value, apply_values

__all__ = ["TrialEval", "scaled_shape", "evaluate"]


@dataclass(frozen=True)
class TrialEval:
    """Outcome of one trial evaluation."""

    #: LoadPoint-derived metrics: throughput, p50_ms, mean_ms, p95_ms,
    #: ops, errors
    metrics: Dict[str, float]
    #: traced op's ``{phase: share}`` (rounded for ledger stability)
    shares: Dict[str, float]
    #: scalar objective, lower is better
    score: float

    def to_json(self) -> dict:
        return {"metrics": self.metrics, "shares": self.shares,
                "score": self.score}


def scaled_shape(profile: TuneProfile, scale: float):
    """(threads, ops_per_thread, warmup) for one trial at ``scale``."""
    threads = max(2, int(round(profile.threads * scale)))
    ops = max(6, int(round(profile.ops_per_thread * min(1.0, scale))))
    warmup = max(2, int(round(profile.warmup_ops * min(1.0, scale))))
    return threads, ops, warmup


def build_config(profile: TuneProfile,
                 values: Dict[str, Value]) -> SpinnakerConfig:
    return apply_values(profile.base_config(), values)


def evaluate(profile: TuneProfile, values: Dict[str, Value],
             seed: int = 1, scale: float = 1.0,
             config: Optional[SpinnakerConfig] = None) -> TrialEval:
    """Run one deterministic trial and score it.

    ``config`` short-circuits the base-config + overlay construction
    (used by tests to evaluate an exact config object).
    """
    # Imported here: bench.harness reads this package's active tuned
    # overlay, so the module-level dependency must stay one-way.
    from ..bench.harness import SpinnakerTarget, run_load
    from ..bench.workload import write_workload
    from ..obs import RequestTracer, phase_summary
    from .profiles import _ACTIVE

    cfg = config if config is not None else build_config(profile, values)
    threads, ops, warmup = scaled_shape(profile, scale)
    tracer = RequestTracer(sample_every=1)
    topology = (profile.topology(profile.n_nodes)
                if profile.topology is not None else None)
    # An armed --tuned-profile overlay would silently override the very
    # knob values this trial probes (the harness lays it over every
    # config); suspend it for the duration of the trial.
    saved = dict(_ACTIVE)
    _ACTIVE.clear()
    try:
        target = SpinnakerTarget(profile.n_nodes, config=cfg, seed=seed,
                                 request_tracer=tracer,
                                 topology=topology,
                                 placement=(profile.placement
                                            if topology is not None
                                            else "ring"))
        point = run_load(target, write_workload(), threads,
                         ops_per_thread=ops, warmup_ops=warmup,
                         seed=seed)
    finally:
        _ACTIVE.update(saved)
    summary = phase_summary(tracer)
    op_entry = summary.get(profile.objective.op, {})
    phases = op_entry.get("phases", {})
    metrics = {
        "throughput": round(point.throughput, 3),
        "mean_ms": round(point.mean_ms, 4),
        "p50_ms": round(point.p50_ms, 4),
        "p95_ms": round(point.p95_ms, 4),
        "ops": point.ops,
        "errors": point.errors,
    }
    score = objective_score(metrics, phases, profile.objective)
    shares = {name: round(float(row["share"]), 4)
              for name, row in phases.items()}
    return TrialEval(metrics=metrics, shares=shares,
                     score=round(score, 6))
