"""``python -m repro tune`` — the offline protocol-knob tuner.

Runs deterministic coordinate descent for one profile, prints the trial
ledger as a table, and optionally writes the JSON ledger
(``--ledger``) and the winning overlay as the checked-in tuned config
(``--write-config`` → ``configs/tuned-<profile>.json``).  Same seed
and flags → bit-identical ledger.
"""

from __future__ import annotations

import argparse
from typing import List

__all__ = ["main"]


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _print_ledger(result) -> None:
    print(f"{'trial':>5}  {'knob':<26}{'value':>10}  {'score':>10}  "
          f"{'p50 ms':>8}  {'req/s':>8}  {'best':>10}  adopted")
    for trial in result.trials:
        knob = trial.knob or "(baseline)"
        value = "-" if trial.value is None else _fmt_value(trial.value)
        m = trial.eval.metrics
        print(f"{trial.index:>5}  {knob:<26}{value:>10}  "
              f"{trial.eval.score:>10.3f}  {m['p50_ms']:>8.2f}  "
              f"{m['throughput']:>8.0f}  {trial.best_so_far:>10.3f}  "
              f"{'*' if trial.adopted else ''}")


def main(argv: List[str]) -> int:
    from .profiles import PROFILES, get_profile, write_tuned_config
    from .search import tune

    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Offline self-tuning of protocol knobs: coordinate "
                    "descent over the knob registry, scored by a "
                    "phase-weighted objective on deterministic sim "
                    "runs.  Same seed, same ledger.")
    parser.add_argument("--profile", default="sata",
                        choices=sorted(PROFILES),
                        help="hardware/topology profile to tune "
                             "(default sata)")
    parser.add_argument("--seed", type=int, default=1,
                        help="tuner seed: seeds every trial's "
                             "simulation (default 1)")
    parser.add_argument("--max-trials", type=int, default=48,
                        help="hard evaluation budget, baseline "
                             "included (default 48)")
    parser.add_argument("--passes", type=int, default=3,
                        help="max coordinate-descent sweeps over the "
                             "searched knobs (default 3)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="per-trial budget scale, like bench "
                             "--scale (default 1.0)")
    parser.add_argument("--ledger", metavar="FILE",
                        help="write the JSON trial ledger here")
    parser.add_argument("--write-config", action="store_true",
                        help="write the winning overlay to "
                             "configs/tuned-<profile>.json")
    parser.add_argument("--detuned-start", action="store_true",
                        help="start the search from the deliberately "
                             "bad DETUNED_START overlay instead of the "
                             "hand-tuned defaults (recovery demo)")
    parser.add_argument("--list-knobs", action="store_true",
                        help="print the profile's search space and "
                             "exit")
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    if args.list_knobs:
        from .registry import get_knob
        print(f"profile {profile.name}: {profile.doc}")
        print(f"objective focus: "
              f"{', '.join(profile.objective.focus_phases)}")
        for name in profile.searched:
            knob = get_knob(name)
            cands = ", ".join(_fmt_value(c) for c in knob.candidates)
            print(f"  {name:<26} default={_fmt_value(knob.default):<8} "
                  f"grid=[{cands}]")
        return 0

    from .profiles import DETUNED_START
    result = tune(args.profile, seed=args.seed,
                  max_trials=args.max_trials, passes=args.passes,
                  scale=args.scale,
                  start=DETUNED_START if args.detuned_start else None)
    _print_ledger(result)
    base = result.baseline.eval.metrics
    best = result.best_trial.eval.metrics
    print(f"\nprofile {result.profile} (seed {args.seed}): "
          f"{len(result.trials)} trials, "
          f"{'converged' if result.converged else 'budget exhausted'} "
          f"after {result.passes_run} pass(es)")
    print(f"baseline score {result.baseline_score:.3f} "
          f"(p50 {base['p50_ms']:.2f} ms, {base['throughput']:.0f} "
          f"req/s) -> best {result.best_score:.3f} "
          f"(p50 {best['p50_ms']:.2f} ms, {best['throughput']:.0f} "
          f"req/s)")
    if result.best_values:
        print("tuned overlay: " + ", ".join(
            f"{k}={_fmt_value(v)}"
            for k, v in sorted(result.best_values.items())))
    else:
        print("tuned overlay: (defaults already optimal under this "
              "objective)")
    if args.ledger:
        result.write_ledger(args.ledger)
        print(f"wrote {args.ledger}")
    if args.write_config:
        path = write_tuned_config(
            args.profile, result.best_values,
            meta={"seed": args.seed, "scale": args.scale,
                  "trials": len(result.trials),
                  "converged": result.converged,
                  "baseline_score": result.baseline_score,
                  "best_score": result.best_score,
                  "baseline_p50_ms": base["p50_ms"],
                  "best_p50_ms": best["p50_ms"],
                  "baseline_throughput": base["throughput"],
                  "best_throughput": best["throughput"]})
        print(f"wrote {path}")
    return 0
