"""The declarative protocol-knob registry.

Every performance-relevant tunable of :class:`~repro.core.config.
SpinnakerConfig` gets one :class:`Knob` entry: its type, valid range,
the module that consumes it, which trace phase (see ``repro.obs``) it
moves, where it came from (paper section or PR), and — for the knobs
the offline tuner searches — the candidate grid coordinate descent
walks.  ``TUNING.md`` renders this registry as the human-readable knob
inventory; ``tests/test_docs.py`` checks the two never drift apart, and
``tests/tune`` checks every entry against the real config dataclass
(name exists, default matches, range contains the default).

The *calibration constants* (CPU service times, disk profiles) are
deliberately not knobs: they map the simulator onto the paper's
hardware and tuning them would change the question, not the answer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import SpinnakerConfig

__all__ = ["Knob", "KNOBS", "Value", "knob_names", "get_knob",
           "searched_knobs", "apply_values", "config_values",
           "validate_registry", "validate_values"]

Value = Union[bool, int, float]


@dataclass(frozen=True)
class Knob:
    """One tunable protocol parameter."""

    #: field name on :class:`SpinnakerConfig`
    name: str
    #: "bool" | "int" | "float"
    type: str
    #: inclusive valid range (bool knobs use (False, True))
    lo: Value
    hi: Value
    #: module that consumes the knob (repo-relative path)
    module: str
    #: trace phase(s) the knob chiefly moves (names from repro.obs)
    phase: str
    #: paper section or PR that introduced it
    source: str
    #: one-line operator-facing description
    doc: str
    #: candidate grid for the search driver; empty = inventory-only
    #: (documented and overridable, but not searched by default)
    candidates: Tuple[Value, ...] = ()

    @property
    def default(self) -> Value:
        return _DEFAULTS[self.name]

    def contains(self, value: Value) -> bool:
        if self.type == "bool":
            return isinstance(value, bool)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        if self.type == "int" and int(value) != value:
            return False
        return self.lo <= value <= self.hi


_DEFAULTS: Dict[str, Value] = {
    f.name: f.default for f in dataclasses.fields(SpinnakerConfig)
    if f.default is not dataclasses.MISSING
}


#: The complete inventory, grouped roughly by owning layer.  Order is
#: the order the search driver walks coordinates in, so it is part of
#: the tuner's deterministic behaviour — append, don't reshuffle.
KNOBS: Tuple[Knob, ...] = (
    # -- leader proposal batching (core/batching.py, PR 3) --------------
    Knob("propose_batching", "bool", False, True,
         "core/batching.py", "log_force, propose", "PR 3",
         "coalesce concurrent client writes into multi-record proposes "
         "with one batched WAL force and one cumulative ack per peer",
         candidates=(False, True)),
    Knob("propose_batch_max_records", "int", 1, 128,
         "core/batching.py", "log_force", "PR 3 (Fig. 16 ablation)",
         "flush a batch once it holds this many records",
         candidates=(4, 8, 16, 32)),
    Knob("propose_batch_max_bytes", "int", 4096, 1 << 20,
         "core/batching.py", "log_force", "PR 3",
         "flush a batch once it holds this many encoded bytes",
         candidates=(16 * 1024, 64 * 1024, 256 * 1024)),
    Knob("propose_batch_window", "float", 1e-4, 1.6e-2,
         "core/batching.py", "log_force, quorum_wait", "PR 3",
         "longest the leader may hold a write back waiting for company",
         candidates=(0.25e-3, 0.5e-3, 1.0e-3, 2.0e-3, 4.0e-3)),
    Knob("propose_batch_adaptive", "bool", False, True,
         "core/batching.py", "log_force", "PR 3",
         "open the batch window only under queuing pressure; False "
         "waits out the window unconditionally",
         candidates=(False, True)),
    # -- replication protocol (core/replication.py, §5 / §D.1) ----------
    Knob("commit_period", "float", 0.05, 15.0,
         "core/replication.py", "commit_apply (and Table 1 recovery)",
         "§5, Table 1",
         "interval between asynchronous commit broadcasts; recovery "
         "re-proposes the unresolved window this opens",
         candidates=(0.25, 0.5, 1.0)),
    Knob("piggyback_commits", "bool", False, True,
         "core/replication.py", "commit_apply", "§D.1",
         "piggyback commit info on propose messages instead of waiting "
         "for the periodic broadcast",
         candidates=(False, True)),
    Knob("parallel_force_and_propose", "bool", False, True,
         "core/replication.py", "log_force ∥ replicate_rtt", "Fig. 4",
         "the leader forces its log in parallel with sending proposes; "
         "False serializes them (ablation)",
         candidates=(False, True)),
    Knob("acks_needed", "int", 1, 6,
         "core/replication.py", "quorum_wait", "§4",
         "follower acks (beyond the leader's own force) needed to "
         "commit; 1 = majority of 3"),
    Knob("replication_factor", "int", 1, 7,
         "core/partition.py", "replicate_rtt, quorum_wait", "§4",
         "replicas per cohort (structural: resizing an existing "
         "cluster goes through elastic membership, not this knob)"),
    # -- log device (sim/disk.py via core config, [13]) ------------------
    Knob("group_commit", "bool", False, True,
         "sim/disk.py", "log_force", "[13] (App. C)",
         "force requests arriving while the log device is busy are "
         "written together by the next operation",
         candidates=(False, True)),
    # -- storage (storage/engine.py, PR 6) -------------------------------
    Knob("flush_threshold_bytes", "int", 4096, 1 << 30,
         "storage/engine.py", "commit_apply (flush stalls)", "§6",
         "memtable bytes before a flush rolls the log into SSTables"),
    Knob("log_gc_after_flush", "bool", False, True,
         "storage/wal.py", "none (storage footprint)", "PR 6",
         "GC log records once captured in SSTables"),
    # -- chunked catch-up (core/recovery.py, PR 6) ------------------------
    Knob("catchup_chunk_bytes", "int", 4096, 1 << 24,
         "core/recovery.py", "catchup_fetch", "PR 6 (§6.1)",
         "soft byte budget per CatchupChunk"),
    Knob("catchup_chunk_timeout", "float", 0.1, 30.0,
         "core/recovery.py", "catchup_fetch", "PR 6",
         "per-chunk RPC timeout on the chunked catch-up path"),
    Knob("catchup_chunk_retries", "int", 0, 16,
         "core/recovery.py", "catchup_fetch", "PR 6",
         "retries per chunk before the attempt is abandoned"),
    Knob("catchup_retry_backoff", "float", 0.0, 5.0,
         "core/recovery.py", "catchup_fetch", "PR 6",
         "base backoff between chunk retries (doubles per attempt)"),
    Knob("catchup_rpc_timeout", "float", 0.5, 60.0,
         "core/recovery.py", "catchup_fetch", "§6.1",
         "timeout of the final write-blocked delta exchange"),
    # -- coordination & elections (coord/, core/election.py, §4.2/§7) ----
    Knob("session_timeout", "float", 0.5, 30.0,
         "coord/service.py", "none (failure detection delay)", "§4.2",
         "coordination-service session/lease timeout; WAN runs derive "
         "heartbeat budgets from it and the topology RTT (PR 9)"),
    Knob("election_retry", "float", 0.05, 5.0,
         "core/election.py", "none (takeover latency)", "§7",
         "pause between failed election attempts"),
    Knob("takeover_state_timeout", "float", 0.1, 10.0,
         "core/election.py", "none (takeover latency)", "§6",
         "wait for follower log-state replies during takeover"),
    # -- client routing & retries (core/api.py, §3 / PR 9) ---------------
    Knob("client_op_timeout", "float", 1.0, 120.0,
         "core/api.py", "route", "§3",
         "end-to-end client operation deadline"),
    Knob("client_max_retries", "int", 0, 1000,
         "core/api.py", "route", "§3",
         "attempts before an operation fails with RequestTimeout"),
    Knob("client_retry_backoff", "float", 1e-3, 1.0,
         "core/api.py", "route", "PR 9",
         "base retry backoff; later retries grow exponentially with "
         "equal-jitter"),
    Knob("client_retry_backoff_cap", "float", 1e-3, 10.0,
         "core/api.py", "route", "PR 9",
         "ceiling on the exponential retry step"),
    Knob("client_try_timeout", "float", 0.1, 30.0,
         "core/api.py", "route", "PR 9",
         "per-try RPC timeout floor (scaled by the topology RTT)"),
    Knob("client_map_timeout", "float", 0.1, 30.0,
         "core/api.py", "route", "PR 9",
         "cohort-map refresh RPC timeout floor"),
    Knob("client_rtt_multiplier", "float", 1.0, 16.0,
         "core/api.py", "route", "PR 9",
         "worst-case round trips one try may take before timing out"),
    # -- data model (core/partition.py, §8.3) ----------------------------
    Knob("order_preserving_keys", "bool", False, True,
         "core/partition.py", "read_serve (range scans)", "§8.3",
         "route keys order-preservingly (enables range scans) instead "
         "of hashed (spreads load; the read-routing trade-off)"),
)

_BY_NAME: Dict[str, Knob] = {k.name: k for k in KNOBS}


def knob_names() -> List[str]:
    return [k.name for k in KNOBS]


def get_knob(name: str) -> Knob:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown knob {name!r}; see repro.tune.registry"
                       ) from None


def searched_knobs() -> List[Knob]:
    """Knobs with a candidate grid (the default search space)."""
    return [k for k in KNOBS if k.candidates]


def validate_registry() -> None:
    """Check the registry against the real config dataclass."""
    fields = {f.name for f in dataclasses.fields(SpinnakerConfig)}
    for knob in KNOBS:
        if knob.name not in fields:
            raise AssertionError(
                f"knob {knob.name!r} is not a SpinnakerConfig field")
        if knob.name not in _DEFAULTS:
            raise AssertionError(
                f"knob {knob.name!r} has a factory default; registry "
                f"cannot express it")
        if not knob.contains(knob.default):
            raise AssertionError(
                f"default {knob.default!r} of {knob.name!r} outside "
                f"its declared range [{knob.lo}, {knob.hi}]")
        for cand in knob.candidates:
            if not knob.contains(cand):
                raise AssertionError(
                    f"candidate {cand!r} of {knob.name!r} outside its "
                    f"declared range")


def validate_values(values: Dict[str, Value]) -> None:
    """Raise on unknown knob names or out-of-range values."""
    for name, value in values.items():
        knob = get_knob(name)
        if not knob.contains(value):
            raise ValueError(
                f"{name}={value!r} outside valid range "
                f"[{knob.lo}, {knob.hi}] ({knob.type})")


def apply_values(config: SpinnakerConfig,
                 values: Dict[str, Value]) -> SpinnakerConfig:
    """A copy of ``config`` with the knob overlay applied (validated)."""
    validate_values(values)
    out = dataclasses.replace(config)
    for name, value in values.items():
        setattr(out, name, value)
    return out.validate()


def config_values(config: SpinnakerConfig,
                  names: Optional[Sequence[str]] = None
                  ) -> Dict[str, Value]:
    """The registry-known knob values of ``config`` (for ledgers)."""
    picked = names if names is not None else knob_names()
    return {name: getattr(config, name) for name in picked}
