"""The replication protocol state machine (§5, Fig. 4).

One :class:`CohortReplica` exists per (node, key range) pair and owns the
node's role in that cohort — leader or follower — plus the commit queue,
storage engine and protocol handlers.

Steady state (Fig. 4):

* a client write reaches the **leader**, which appends a log record and
  forces it, *and in parallel* appends the write to the commit queue and
  sends a propose message to both followers;
* each **follower** forces a log record, appends to its commit queue, and
  acks;
* after its own force plus at least one ack, the leader applies the write
  to its memtable (committing it) and replies to the client — there is no
  separate commit record, recovery re-proposals guarantee durability;
* periodically, the leader sends an asynchronous **commit message**; the
  followers apply pending writes up to the given LSN and save that
  last-committed LSN with a non-forced log write.

Strongly consistent reads are served only by the leader; timeline reads
by any replica (possibly stale until the next commit message).

Tracing: when a client request carries a
:class:`~repro.obs.trace.TraceContext`, the leader attributes its side
of the write to spans — ``route`` (arrival to pipeline entry),
``propose`` (pipeline entry to propose fan-out), ``log_force`` (force
submit to durable), ``replicate_rtt`` (propose to first covering ack)
and ``quorum_wait`` (local durability to group commit) — tracked in
``_traces`` keyed by the write group's top LSN, and truncated on crash
or step-down.  See ``OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.events import Event
from ..sim.process import all_of, timeout
from ..sim.resources import serve
from ..storage.lsn import LSN
from ..storage.records import CommitMarker, WriteRecord
from .batching import ProposalBatcher
from .commitqueue import CommitQueue
from .datamodel import GetResult, PutResult
from .messages import (Ack, ClientGet, ClientMultiWrite, ClientWrite, Commit,
                       Propose)
from .partition import INTERNAL_KEY_PREFIX, MEMBERSHIP_KEY, Cohort

__all__ = ["CohortReplica", "Role"]


class Role:
    """Replica roles; OFFLINE only while the node is down."""

    LEADER = "leader"
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    RECOVERING = "recovering"
    OFFLINE = "offline"


def _err(code: str, hint: Optional[str] = None) -> Dict:
    return {"ok": False, "code": code, "hint": hint}


def _wan_hop(node, ctx) -> Dict:
    """Extra fields for a ``route`` span: ``{"wan_hop": True}`` when the
    serving node sits in a different datacenter than the request's
    origin (the client crossed the WAN to reach us — see
    OBSERVABILITY.md).  Empty on flat networks and local serves."""
    topo = node.network.topology
    if topo is not None and not topo.same_dc(ctx.origin, node.name):
        return {"wan_hop": True}
    return {}


def _ok(result) -> Dict:
    return {"ok": True, "result": result}


class _WriteTrace:
    """Leader-side trace state for one in-flight write group."""

    __slots__ = ("ctx", "propose_span", "force_span", "rtt_span",
                 "force_done")

    def __init__(self, ctx):
        self.ctx = ctx
        self.propose_span = None
        self.force_span = None
        self.rtt_span = None
        self.force_done = None


class CohortReplica:
    """This node's participation in one cohort."""

    def __init__(self, node, cohort: Cohort):
        self.node = node
        self.cohort = cohort
        self.cohort_id = cohort.cohort_id
        self.engine = node.make_engine(cohort.cohort_id)
        self.queue = CommitQueue(acks_needed=node.config.acks_needed)
        self.batcher = ProposalBatcher(self)
        self.role = Role.RECOVERING
        self.epoch = 0
        self.leader: Optional[str] = None
        self.open_for_writes = False
        self.committed_lsn = LSN.zero()
        self.next_seq = 1
        self.electing = False
        self.candidate_path: Optional[str] = None
        self.write_block: Optional[Event] = None
        self._last_commit_broadcast = LSN.zero()
        self.last_broadcast_at = 0.0   # benchmarks time failovers off this
        # Records at or below this LSN may be absent from the local log:
        # they arrived as shipped SSTables during catch-up (§6.1), not as
        # log records.  The log-prefix auditors respect this floor.
        # Advanced durably per catch-up chunk (CatchupMarker), so a crash
        # mid-install resumes from the last applied chunk.
        self.catchup_floor = LSN.zero()
        # Volatile snapshot-paging state for an in-flight chunked
        # catch-up: the max table LSN received so far, valid only for
        # the (leader, manifest_id) generation in ``catchup_source``.
        # A crash resets both; resume restarts paging from the durable
        # floor.
        self.snapshot_seen = LSN.zero()
        self.catchup_source: Optional[Tuple[str, int]] = None
        self._resyncing = False
        #: set while this leader is executing a membership change
        self.migrating = False
        #: in-flight request-trace state, write-group top LSN -> state;
        #: insertion order == LSN order (writes enter in LSN order)
        self._traces: Dict[LSN, _WriteTrace] = {}
        # counters
        self.writes_served = 0
        self.reads_served = 0
        self.proposes_handled = 0
        self.resyncs = 0
        self.catchup_chunks_ingested = 0
        self.catchup_tables_ingested = 0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.role == Role.LEADER

    def peers(self) -> List[str]:
        return [m for m in self.cohort.members if m != self.node.name]

    def set_leader(self, leader: Optional[str]) -> None:
        self.leader = leader
        if leader == self.node.name:
            self.role = Role.LEADER
        elif self.role in (Role.LEADER, Role.CANDIDATE):
            self.role = Role.FOLLOWER

    def alloc_lsn(self) -> LSN:
        lsn = LSN(self.epoch, self.next_seq)
        self.next_seq += 1
        return lsn

    def latest_version(self, key: bytes, colname: bytes) -> int:
        """Current version of a column, *including* pipelined pending
        writes, so version numbers stay monotonic under concurrency."""
        pending = self.queue.latest_pending_for(key, colname)
        if pending is not None:
            return 0 if pending.tombstone else pending.version
        return self.engine.version_of(key, colname)

    # ------------------------------------------------------------------
    # Write blocking (the §6.1 "momentarily blocks new writes")
    # ------------------------------------------------------------------
    def block_writes(self) -> None:
        if self.write_block is None:
            self.write_block = Event(self.node.sim)

    def unblock_writes(self) -> None:
        block, self.write_block = self.write_block, None
        if block is not None and not block.triggered:
            block.succeed()

    # ------------------------------------------------------------------
    # Leader: client writes
    # ------------------------------------------------------------------
    def handle_client_write(self, req):
        """Process generator for a ClientWrite/ClientMultiWrite request."""
        node, cfg = self.node, self.node.config
        msg = req.payload
        if not self.is_leader:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        if not self.open_for_writes:
            req.respond(_err("unavailable", self.leader), size=64)
            return
        while self.write_block is not None:
            yield self.write_block
            if not self.is_leader or not self.open_for_writes:
                req.respond(_err("not-leader", self.leader), size=64)
                return
        yield from serve(node.cpu, cfg.write_leader_service)
        if not self.is_leader or not self.open_for_writes:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        # A membership change may have moved the key while we waited
        # (the migration drain ends exactly here): re-route the client.
        if node.replica_for_key(msg.key) is not self:
            req.respond({"ok": False, "code": "wrong-node",
                         "map_version": node.partitioner.version}, size=64)
            return
        # Conditional writes pay a read + version compare first (§5.1).
        column_ops = self._column_ops(msg)
        if any(expected is not None for _, _, expected in column_ops):
            yield from serve(node.cpu, cfg.conditional_check_service)
            for colname, _value, expected in column_ops:
                if expected is None:
                    continue
                actual = self.latest_version(msg.key, colname)
                if actual != expected:
                    req.respond(
                        {"ok": False, "code": "version-mismatch",
                         "expected": expected, "actual": actual},
                        size=64)
                    return
        ctx = msg.trace
        if ctx is not None:
            self._trace_route(ctx)
        records = self._make_records(msg, column_ops)
        if cfg.parallel_force_and_propose:
            done = self._replicate(records, ctx=ctx)
        else:
            # Ablation: force the leader's log *before* proposing, as a
            # naive implementation would — serializing the two disk
            # forces on the critical path.
            force_start = node.sim.now
            forces = [node.wal.append(r, force=True) for r in records]
            yield all_of(node.sim, forces)
            if ctx is not None:
                node.request_tracer.span_at(
                    ctx, "log_force", node.name, start=force_start,
                    records=len(records))
            done = self._replicate(records, already_logged=True, ctx=ctx)
        yield done
        self.writes_served += 1
        req.respond(_ok(PutResult(version=records[-1].version)), size=64)

    # ------------------------------------------------------------------
    # Leader: multi-operation transactions (§8.2 extension)
    # ------------------------------------------------------------------
    def handle_client_txn(self, req):
        """Process generator for a ClientTransaction request.

        Multiple rows of one cohort, committed atomically: one batch log
        force, one propose, contiguous LSNs — the commit queue then
        commits all records in the same advance step.
        """
        node, cfg = self.node, self.node.config
        txn = req.payload
        if not self.is_leader or not self.open_for_writes:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        while self.write_block is not None:
            yield self.write_block
            if not self.is_leader or not self.open_for_writes:
                req.respond(_err("not-leader", self.leader), size=64)
                return
        yield from serve(node.cpu, cfg.write_leader_service
                         + 0.05e-3 * max(0, len(txn.ops) - 1))
        if not self.is_leader or not self.open_for_writes:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        for op in txn.ops:
            owner = node.replica_for_key(op.key)
            if owner is not self:
                req.respond({"ok": False, "code": "cross-cohort",
                             "hint": None}, size=64)
                return
        if any(op.expected_version is not None for op in txn.ops):
            yield from serve(node.cpu, cfg.conditional_check_service)
            for op in txn.ops:
                if op.expected_version is None:
                    continue
                actual = self.latest_version(op.key, op.colname)
                if actual != op.expected_version:
                    req.respond(
                        {"ok": False, "code": "version-mismatch",
                         "expected": op.expected_version,
                         "actual": actual}, size=64)
                    return
        records: List[WriteRecord] = []
        staged: Dict[Tuple[bytes, bytes], int] = {}
        for op in txn.ops:
            base = staged.get((op.key, op.colname))
            if base is None:
                base = self.latest_version(op.key, op.colname)
            version = base + 1
            staged[(op.key, op.colname)] = version
            records.append(WriteRecord(
                lsn=self.alloc_lsn(), cohort_id=self.cohort_id,
                key=op.key, colname=op.colname,
                value=None if op.tombstone else op.value,
                version=version, timestamp=node.sim.now,
                tombstone=op.tombstone))
        ctx = txn.trace
        if ctx is not None:
            self._trace_route(ctx)
        done = self._replicate(records, atomic=True, ctx=ctx)
        yield done
        self.writes_served += 1
        req.respond(_ok(PutResult(version=records[-1].version)), size=64)

    @staticmethod
    def _column_ops(msg) -> List[Tuple[bytes, Optional[bytes],
                                       Optional[int]]]:
        """Normalize single- and multi-column writes to (col, value,
        expected_version) triples."""
        if isinstance(msg, ClientWrite):
            return [(msg.colname, msg.value, msg.expected_version)]
        if isinstance(msg, ClientMultiWrite):
            expected = msg.expected_versions or (None,) * len(msg.columns)
            return [(col, value, exp)
                    for (col, value), exp in zip(msg.columns, expected)]
        raise TypeError(f"unexpected write message {msg!r}")

    def _make_records(self, msg, column_ops) -> List[WriteRecord]:
        records = []
        for colname, value, _expected in column_ops:
            version = self.latest_version(msg.key, colname) + 1
            records.append(WriteRecord(
                lsn=self.alloc_lsn(), cohort_id=self.cohort_id,
                key=msg.key, colname=colname,
                value=None if msg.tombstone else value,
                version=version, timestamp=self.node.sim.now,
                tombstone=msg.tombstone))
            # Make the pipelined version visible to subsequent ops in
            # this same batch by staging into the queue inside
            # _replicate; multi-column batches never repeat a column.
        return records

    def _replicate(self, records: List[WriteRecord],
                   already_logged: bool = False,
                   atomic: bool = False, ctx=None) -> Event:
        """Fig. 4, leader side: force + queue + propose, all in parallel.

        Returns an event that fires when every record has committed.
        ``atomic`` forces the batch with a single log operation (§8.2:
        multi-operation transactions must never persist partially).
        ``ctx`` (a sampled request's trace context) registers the write
        group in ``_traces`` for per-phase attribution.
        """
        node, cfg = self.node, self.node.config
        done = Event(node.sim)
        remaining = len(records)
        top = records[-1].lsn
        state = None
        if ctx is not None:
            state = _WriteTrace(ctx)
            state.propose_span = node.request_tracer.start(
                ctx, "propose", node.name, records=len(records),
                queue_depth=len(self.queue))
            self._traces[top] = state

        def on_commit(_record: WriteRecord) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                if state is not None:
                    self._finish_write_trace(top)
                if not done.triggered:
                    done.succeed()

        for record in records:
            self.queue.add(record, on_commit=on_commit)
        if already_logged:
            if state is not None:
                state.force_done = node.sim.now
            for record in records:
                self._on_local_force(record.lsn)
        elif cfg.propose_batching:
            # Batched pipeline: the batcher owns the force + propose and
            # keeps submitted groups indivisible, so ``atomic`` holds.
            self.batcher.submit(records)
            return done
        elif atomic:
            if state is not None:
                state.force_span = node.request_tracer.start(
                    ctx, "log_force", node.name, records=len(records))
            batch_ev = node.wal.append_batch(records)

            def _all_forced(_ev, lsns=[r.lsn for r in records]):
                self._trace_force_done(lsns[-1])
                for lsn in lsns:
                    self.queue.mark_forced(lsn)
                self._advance()

            batch_ev.add_callback(_all_forced)
        else:
            if state is not None:
                # One span covers the group: per-record forces complete
                # in submit order, so the top LSN's force ends it.
                state.force_span = node.request_tracer.start(
                    ctx, "log_force", node.name, records=len(records))
            for record in records:
                force_ev = node.wal.append(record, force=True)
                force_ev.add_callback(
                    lambda _ev, lsn=record.lsn: self._on_local_force(lsn))
        self.send_propose(records)
        return done

    def send_propose(self, records: Sequence[WriteRecord]) -> None:
        """Fan one (possibly multi-record) propose out to the peers."""
        node, cfg = self.node, self.node.config
        propose = Propose(
            cohort_id=self.cohort_id, epoch=self.epoch,
            records=tuple(records),
            committed_lsn=(self.committed_lsn
                           if cfg.piggyback_commits else None))
        size = sum(r.encoded_size() for r in records) + 64
        if self._traces:
            tracer = node.request_tracer
            for record in records:
                state = self._traces.get(record.lsn)
                if state is None:
                    continue
                if state.propose_span is not None:
                    tracer.finish(state.propose_span,
                                  batch=len(records))
                if state.rtt_span is None:
                    state.rtt_span = tracer.start(
                        state.ctx, "replicate_rtt", node.name,
                        peers=len(self.peers()))
        for peer in self.peers():
            ack_ev = node.endpoint.request(peer, propose, size=size)
            ack_ev.add_callback(self._on_ack)

    def _on_local_force(self, lsn: LSN) -> None:
        self._trace_force_done(lsn)
        self.queue.mark_forced(lsn)
        self._advance()

    def _on_ack(self, ev: Event) -> None:
        if not ev._ok:
            ev.defuse()
            return
        ack = ev._value
        # lint: allow(stale-epoch) — Ack LSNs embed the epoch (App. B)
        if not isinstance(ack, Ack) or ack.cohort_id != self.cohort_id:
            return
        self.queue.add_ack_upto(ack.lsn, ack.sender)
        self._trace_acked(ack.lsn)
        self._advance()

    def _advance(self) -> None:
        """Commit the ready prefix; apply and notify."""
        committed = self.queue.advance_leader()
        for record in committed:
            self.engine.apply(record)
        if committed:
            self.committed_lsn = self.queue.committed_lsn
            for record in committed:
                if record.key == MEMBERSHIP_KEY:
                    self.node.on_membership_commit(record)
            self.node.maybe_flush(self)
            self.batcher.on_progress()

    # ------------------------------------------------------------------
    # Request tracing (no-ops unless a request carried a TraceContext;
    # every hook is guarded so the untraced path costs one branch)
    # ------------------------------------------------------------------
    def _trace_route(self, ctx) -> None:
        """Close the ``route`` phase: client send (this attempt) up to
        the instant the write enters the replication pipeline."""
        node = self.node
        start = (ctx.last_sent_at if ctx.last_sent_at is not None
                 else ctx.root.start)
        node.request_tracer.span_at(ctx, "route", node.name, start=start,
                                    **_wan_hop(node, ctx))

    def _trace_force_done(self, lsn: LSN) -> None:
        """The write group topped by ``lsn`` is locally durable: close
        its ``log_force`` span and stamp the ``quorum_wait`` start."""
        if not self._traces:
            return
        state = self._traces.get(lsn)
        if state is None:
            return
        if state.force_span is not None:
            self.node.request_tracer.finish(state.force_span)
        if state.force_done is None:
            state.force_done = self.node.sim.now

    def _trace_acked(self, lsn: LSN) -> None:
        """A follower ack covering ``lsn`` arrived: close the
        ``replicate_rtt`` span of every group it covers (acks are
        cumulative; ``_traces`` is in ascending top-LSN order)."""
        if not self._traces:
            return
        tracer = self.node.request_tracer
        for top, state in self._traces.items():
            if top > lsn:
                break
            span = state.rtt_span
            if span is not None and span.end is None:
                tracer.finish(span)

    def _finish_write_trace(self, top: LSN) -> None:
        """The whole group committed: emit ``quorum_wait`` (local
        durability to group commit) and ``commit_apply``, close any
        straggler spans, and stamp the reply rendezvous."""
        state = self._traces.pop(top, None)
        if state is None:
            return
        node = self.node
        tracer = node.request_tracer
        now = node.sim.now
        ctx = state.ctx
        if state.propose_span is not None:
            tracer.finish(state.propose_span)
        if state.rtt_span is not None:
            tracer.finish(state.rtt_span)
        start = state.force_done if state.force_done is not None else now
        tracer.span_at(ctx, "quorum_wait", node.name, start=start, end=now)
        # The leader applies committed records inline in _advance (no
        # queueing in this sim), so the span is a zero-length marker.
        tracer.span_at(ctx, "commit_apply", node.name, start=now, end=now)
        ctx.server_done_at = now

    def _clear_traces(self) -> None:
        """Crash / step-down: close in-flight write traces as truncated
        so half-finished phases are visible in the trace, not leaked."""
        if not self._traces:
            return
        tracer = self.node.request_tracer
        for state in self._traces.values():
            for span in (state.propose_span, state.force_span,
                         state.rtt_span):
                if span is not None:
                    tracer.truncate(span)
        self._traces.clear()

    # ------------------------------------------------------------------
    # Leader: periodic commit messages
    # ------------------------------------------------------------------
    def commit_loop(self):
        """Long-running leader process: broadcast commit messages."""
        node, cfg = self.node, self.node.config
        epoch = self.epoch
        while self.is_leader and self.epoch == epoch:
            yield timeout(node.sim, cfg.commit_period)
            if not self.is_leader or self.epoch != epoch:
                return
            self.broadcast_commit()

    def broadcast_commit(self) -> None:
        self.last_broadcast_at = self.node.sim.now
        lsn = self.committed_lsn
        if lsn <= self._last_commit_broadcast:
            return
        node = self.node
        node.wal.append(CommitMarker(lsn=lsn, cohort_id=self.cohort_id,
                                     committed_lsn=lsn), force=False)
        msg = Commit(cohort_id=self.cohort_id, epoch=self.epoch, lsn=lsn)
        for peer in self.peers():
            node.endpoint.send(peer, msg, size=48)
        self._last_commit_broadcast = lsn

    # ------------------------------------------------------------------
    # Follower: proposes and commits
    # ------------------------------------------------------------------
    def handle_propose(self, req):
        """Process generator for a Propose request (Fig. 4, follower)."""
        node, cfg = self.node, self.node.config
        msg: Propose = req.payload
        if msg.epoch < self.epoch:
            return  # stale leader; no ack
        if self.role == Role.RECOVERING:
            return  # not caught up: accepting would create log gaps (§6.1)
        if msg.epoch > self.epoch:
            self.epoch = msg.epoch
            self.set_leader(req.src)
        yield from serve(node.cpu, cfg.write_follower_service
                         + cfg.propose_record_service
                         * (len(msg.records) - 1))
        if self.role not in (Role.FOLLOWER, Role.CANDIDATE):
            return
        missing = [
            record for record in msg.records
            if not node.wal.is_skipped(self.cohort_id, record.lsn)
            and not node.wal.contains(self.cohort_id, record.lsn)]
        last = node.wal.last_lsn(self.cohort_id)
        forces = []
        if (len(missing) > 1 and len(missing) == len(msg.records)
                and all(r.lsn > last for r in missing)):
            # Multi-operation transaction: force atomically (§8.2).
            forces.append(node.wal.append_batch(missing))
        else:
            # ``backfill``: a takeover re-proposal may fill a gap below
            # our last LSN (we logged later records, missed this one).
            forces.extend(node.wal.append(record, force=True,
                                          backfill=record.lsn <= last)
                          for record in missing)
        for record in msg.records:
            if not node.wal.is_skipped(self.cohort_id, record.lsn):
                self.queue.add(record)
        if forces:
            yield all_of(node.sim, forces)
        if msg.committed_lsn is not None:
            self._apply_commit_info(msg.committed_lsn)
        self.proposes_handled += 1
        top = max(r.lsn for r in msg.records)
        req.respond(Ack(cohort_id=self.cohort_id, epoch=self.epoch,
                        lsn=top, sender=node.name), size=48)

    def handle_commit(self, src: str, msg: Commit) -> None:
        """Synchronous handler for the one-way commit message."""
        if msg.epoch < self.epoch:
            return
        if self.role == Role.RECOVERING:
            # Not caught up: we may lack the records this commit covers
            # (proposes are dropped while recovering), so advancing f.cmt
            # here would hide them from catch-up forever.  Catch-up
            # delivers the same commit point with the records (§6.1).
            return
        if msg.epoch > self.epoch:
            self.epoch = msg.epoch
            self.set_leader(src)
        self._apply_commit_info(msg.lsn)

    def _held_through(self, upto: LSN) -> LSN:
        """The largest committable LSN ``<= upto`` such that every LSN in
        ``(committed_lsn, result]`` is locally held (in the log) or
        logically truncated (skip list).

        Sequence numbers of committed, non-skipped records are dense:
        every leader allocates consecutive seqs continuing from its last
        log record, and takeover re-proposals keep their original LSNs.
        A missing seq therefore means a propose this replica never
        received — committing past it would silently lose the record.
        """
        wal = self.node.wal
        held = {rec.lsn.seq: rec.lsn
                for rec in wal.write_records(self.cohort_id,
                                             after=self.committed_lsn,
                                             upto=upto)}
        result = self.committed_lsn
        for seq in range(self.committed_lsn.seq + 1, upto.seq + 1):
            lsn = held.get(seq)
            if lsn is None:
                break
            result = lsn
        return min(result, upto)

    def _apply_commit_info(self, upto: LSN) -> None:
        if upto <= self.committed_lsn:
            return
        verified = (upto if self.is_leader else self._held_through(upto))
        if verified > self.committed_lsn:
            committed = self.queue.apply_commit(verified)
            for record in committed:
                self.engine.apply(record)
            self.committed_lsn = max(self.committed_lsn, verified)
            self.node.wal.append(
                CommitMarker(lsn=verified, cohort_id=self.cohort_id,
                             committed_lsn=verified), force=False)
            if committed:
                for record in committed:
                    if record.key == MEMBERSHIP_KEY:
                        self.node.on_membership_commit(record)
                self.node.charge_background(
                    len(committed) * self.node.config.commit_apply_service)
                self.node.maybe_flush(self)
        if verified < upto:
            # Commit info outran our log: at least one propose in
            # (verified, upto] never reached us (lost message or a gap
            # opened while we were down).  Re-sync from the leader.
            self._start_resync(upto)

    def _start_resync(self, upto: LSN) -> None:
        """Demote to RECOVERING and drive catch-up until it succeeds.

        Used when a follower detects a log gap below the cohort's commit
        point.  Catch-up fetches the missing records from the leader and
        then restores FOLLOWER; meanwhile proposes are dropped, which is
        safe (the leader only needs a quorum) and cannot widen the gap.
        """
        if self.role != Role.FOLLOWER or self._resyncing:
            return
        from .recovery import follower_catchup  # cycle: recovery imports us
        node = self.node
        self._resyncing = True
        self.role = Role.RECOVERING
        self.resyncs += 1
        node.trace("resync", "log gap below commit point",
                   cohort=self.cohort_id, cmt=str(self.committed_lsn),
                   upto=str(upto))

        def _run():
            try:
                while node.alive and self.role == Role.RECOVERING:
                    ok = yield from follower_catchup(self)
                    if ok:
                        return
                    yield timeout(node.sim, node.config.election_retry)
            finally:
                self._resyncing = False

        node.spawn(_run(), name=f"resync-{self.cohort_id}")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def handle_get(self, req):
        """Process generator for a ClientGet."""
        node, cfg = self.node, self.node.config
        msg: ClientGet = req.payload
        if msg.consistent:
            # A leader-elect mid-takeover has not yet re-proposed the
            # (l.cmt, l.lst] tail, so its memtable can miss committed
            # writes — strong reads must wait for takeover to finish
            # (§6.2), exactly like writes do.
            if not (self.is_leader and self.open_for_writes):
                req.respond(_err("not-leader", self.leader), size=64)
                return
            service = cfg.read_service + cfg.strong_read_overhead
        else:
            if self.role == Role.OFFLINE:
                req.respond(_err("unavailable"), size=64)
                return
            service = cfg.read_service
        serve_start = node.sim.now
        yield from serve(node.cpu, service)
        if msg.consistent and not self.is_leader:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        if msg.consistent and node.replica_for_key(msg.key) is not self:
            # The key's range migrated away mid-request; our copy is no
            # longer authoritative for strong reads.
            req.respond({"ok": False, "code": "wrong-node",
                         "map_version": node.partitioner.version}, size=64)
            return
        cell = self.engine.get(msg.key, msg.colname)
        if cell is None or cell.tombstone:
            result = GetResult.not_found()
            size = 64
        else:
            result = GetResult(value=cell.value, version=cell.version)
            size = 64 + (len(cell.value) if cell.value else 0)
        self.reads_served += 1
        ctx = msg.trace
        if ctx is not None:
            tracer = node.request_tracer
            start = (ctx.last_sent_at if ctx.last_sent_at is not None
                     else ctx.root.start)
            tracer.span_at(ctx, "route", node.name, start=start,
                           end=serve_start, consistent=msg.consistent,
                           **_wan_hop(node, ctx))
            tracer.span_at(ctx, "read_serve", node.name, start=serve_start)
            ctx.server_done_at = node.sim.now
        req.respond(_ok(result), size=size)

    def handle_scan(self, req):
        """Process generator for a ClientScan (ordered range read)."""
        node, cfg = self.node, self.node.config
        msg = req.payload
        if msg.consistent:
            if not self.is_leader:
                req.respond(_err("not-leader", self.leader), size=64)
                return
        elif self.role == Role.OFFLINE:
            req.respond(_err("unavailable"), size=64)
            return
        # Scan unbounded, then filter: after a range split the engine
        # still holds rows that migrated away (plus internal-namespace
        # cells), and a pre-filter limit would let them shadow live rows.
        rows = self.engine.scan(msg.start_key, msg.end_key,
                                limit=len(self.engine.memtable.keys())
                                + sum(len(t.keys())
                                      for t in self.engine.sstables) + 1)
        rng = self.cohort.key_range
        mapper = node.partitioner.key_mapper
        rows = [(key, row) for key, row in rows
                if not key.startswith(INTERNAL_KEY_PREFIX)
                and rng.contains(mapper(key))][:msg.limit]
        service = (cfg.read_service
                   + (cfg.strong_read_overhead if msg.consistent else 0)
                   + cfg.scan_row_service * len(rows))
        serve_start = node.sim.now
        yield from serve(node.cpu, service)
        if msg.consistent and not self.is_leader:
            req.respond(_err("not-leader", self.leader), size=64)
            return
        ctx = msg.trace
        if ctx is not None:
            tracer = node.request_tracer
            start = (ctx.last_sent_at if ctx.last_sent_at is not None
                     else ctx.root.start)
            tracer.span_at(ctx, "route", node.name, start=start,
                           end=serve_start, consistent=msg.consistent,
                           **_wan_hop(node, ctx))
            tracer.span_at(ctx, "read_serve", node.name, start=serve_start,
                           rows=len(rows))
            ctx.server_done_at = node.sim.now
        payload = [
            (key, {col: (cell.value, cell.version)
                   for col, cell in row.items()})
            for key, row in rows
        ]
        size = 64 + sum(
            len(key) + sum(len(v or b"") + len(c) + 16
                           for c, (v, _ver) in cols.items())
            for key, cols in payload)
        self.reads_served += 1
        req.respond(_ok(payload), size=size)

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        self.role = Role.OFFLINE
        self.open_for_writes = False
        self.leader = None
        self.migrating = False
        self._clear_traces()
        self.batcher.clear()
        self.queue.clear()
        self.engine.crash()
        self.electing = False
        self.candidate_path = None
        self.write_block = None
        self._resyncing = False
        # Paging tokens are volatile: resume restarts from the durable
        # floor (CatchupMarker), never from a stale token.
        self.snapshot_seen = LSN.zero()
        self.catchup_source = None

    def step_down(self) -> None:
        """Coordination session lost: we can no longer prove leadership
        (the leader znode is gone or about to be).  Drop to RECOVERING;
        the rejoin path re-resolves leadership and catches us up.  Keeps
        all durable and in-memory replica state — unlike a crash."""
        if self.role == Role.OFFLINE:
            return
        self.role = Role.RECOVERING
        self.leader = None
        self.open_for_writes = False
        self.migrating = False
        self._clear_traces()
        self.batcher.clear()
        self.electing = False
        self.candidate_path = None
        self._resyncing = False
        if self.write_block is not None and not self.write_block.triggered:
            self.write_block.succeed()
        self.write_block = None

    def prepare_restart(self) -> None:
        self.role = Role.RECOVERING
        self.epoch = 0
        self.committed_lsn = LSN.zero()
        self._last_commit_broadcast = LSN.zero()
        self.snapshot_seen = LSN.zero()
        self.catchup_source = None
        # Re-derive the durable catch-up floor from the log's surviving
        # CatchupMarkers, so a crash mid-snapshot-install resumes from
        # the last durably applied chunk.
        self.catchup_floor = self.node.wal.catchup_floor(self.cohort_id)
