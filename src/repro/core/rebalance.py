"""Elastic membership: planning and executing live replica moves.

The paper defers cluster growth to future work (§10); this module builds
it on top of the machinery the paper *does* specify.  A membership change
is one Paxos round in the **source** cohort: the migration leader drains
its commit queue, then replicates a :data:`MEMBERSHIP_KEY` write record
whose value is the encoded :class:`MembershipChange`.  Commit of that
record — observed through every path a replica learns about commits
(leader advance, follower commit info, log replay, catch-up ingestion) —
atomically switches the shared :class:`RangePartitioner` to the next map
version and reconciles the local replica set.  Anything a crash
interrupts is healed by the same observation paths plus the idempotent
driver retry: the change's version guard makes every step replayable.

Two move kinds exist:

* ``split`` — a hot cohort ``[lo, hi)`` splits at ``split_key``; the new
  cohort keeps two *resident* members (which seed their replicas by
  locally filtering the parent's storage at the commit horizon) plus the
  joining node (which catches up from the new cohort's first leader via
  the ordinary §6 machinery — the horizon is its WAL GC floor, so
  catch-up ships SSTables, never a partial log).
* ``replace`` — a member swap; the joiner is bulk-caught-up *before* the
  switch so the commit only has to ship the final delta.

Migration state machine (per change, driven by
:func:`handle_migration_start` on the source leader)::

    IDLE ──MigrationStart──▶ PREPARING       joiner replicas created
      PREPARING ──ok──────▶ CATCHING_UP     (replace only: bulk delta)
      CATCHING_UP ──ok────▶ DRAINING        writes blocked, queue drains
      DRAINING ──empty────▶ COMMITTING      membership record replicated
      COMMITTING ──commit─▶ FINISHING       map switched (commit hook);
                                            old members told, board
                                            published, joiners re-prepared
      FINISHING ──────────▶ IDLE            respond {ok: true}

    any state ──leader lost / peer timeout──▶ IDLE  (respond {ok: false};
                                            the driver retries the plan)

Invariants:

- **Single writer per version.** Change ``v`` only commits on the leader
  holding map version ``v - 1``; stale plans are rejected, and a change
  seen twice (``version <= part.version``) re-runs only the idempotent
  side effects.
- **Replicas before the switch.** Joiner replicas exist (PREPARING)
  before the record commits, so post-switch elections and catch-up
  always have a live endpoint to land on.
- **The commit is the switch.** No node acts on a new map until it
  observes the membership record as *committed* — the same durability
  the paper gives every write.  There is no prepare/commit side channel
  to half-apply.
- **Snapshot at the horizon.** Split residents filter their storage at
  the commit horizon; the joiner's WAL GC floor equals that horizon, so
  catch-up ships SSTables, never a partial log (§6.3 discipline).

Failure cases:

- *Leader crashes mid-migration*: ``migrating`` dies with it; the new
  leader of the source cohort has either (a) no record — the driver's
  retry starts over, or (b) the committed record — retry hits the
  ``already-applied`` path and just re-runs side effects.
- *Joiner crashes during catch-up*: the prepare/catch-up step times out,
  the round aborts, the driver retries; an already-prepared replica is
  reconciled away if the plan changes.
- *Retired member misses the commit*: it is explicitly sent commit info
  over the old map immediately after commit; if even that is lost, any
  later §6 path (replay, catch-up, gossip of the map version) converges
  it before it serves stale reads, because clients route by map version.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..coord.recipes import CohortMapBoard
from ..coord.znode import CoordError
from ..sim.events import SimulationError
from ..sim.network import RpcTimeout
from ..sim.process import timeout
from ..storage.memtable import Memtable
from ..storage.records import WriteRecord
from ..storage.sstable import SSTable
from .messages import Commit, MigrationPrepare, MigrationStart
from .partition import (INTERNAL_KEY_PREFIX, MEMBERSHIP_KEY, Cohort,
                        KeyRange, MembershipChange, RangePartitioner)
from .recovery import push_catchup
from .replication import Role

__all__ = ["MEMBERSHIP_KEY", "membership_record", "is_membership_record",
           "apply_membership_record", "build_split_snapshot",
           "handle_migration_start", "plan_join", "plan_replace",
           "Rebalancer"]


# ---------------------------------------------------------------------------
# The membership-change log record
# ---------------------------------------------------------------------------

def membership_record(replica, change: MembershipChange) -> WriteRecord:
    """The log record whose commit *is* the membership switch."""
    return WriteRecord(lsn=replica.alloc_lsn(), cohort_id=replica.cohort_id,
                       key=MEMBERSHIP_KEY, colname=b"change",
                       value=change.encode(), version=change.version,
                       timestamp=replica.node.sim.now)


def is_membership_record(record) -> bool:
    return isinstance(record, WriteRecord) and record.key == MEMBERSHIP_KEY


def apply_membership_record(node, record: WriteRecord) -> None:
    """Commit-time hook: switch the map and reconcile local replicas.

    Runs wherever a replica observes the record as committed — the
    migration leader's advance, a follower's commit info, restart replay
    in ``local_recovery``, and ``ingest_catchup``.  All of them funnel
    here, so a replica that misses the original commit message still
    converges the moment any §6 mechanism hands it the record.
    """
    change = MembershipChange.decode(record.value)
    part: RangePartitioner = node.partitioner
    if part.apply_change(change):
        node.trace("rebalance", "membership change applied",
                   version=change.version, kind=change.kind,
                   cohort=change.cohort_id)
    _reconcile_node(node, change, horizon=record.lsn)


def _reconcile_node(node, change: MembershipChange, horizon) -> None:
    """Make ``node``'s replica set agree with the current map for the
    cohorts ``change`` touches.  Idempotent."""
    part: RangePartitioner = node.partitioner
    affected = [change.cohort_id]
    if change.kind == "split" and change.new_cohort_id is not None:
        affected.append(change.new_cohort_id)
    for cid in affected:
        cohort = part.cohort_or_none(cid)
        if cohort is None:
            continue
        replica = node.replicas.get(cid)
        if node.name in cohort.members:
            if replica is not None:
                replica.cohort = cohort     # refreshed range / member set
            elif (change.kind == "split" and cid == change.new_cohort_id
                    and change.cohort_id in node.replicas):
                # Resident member: seed the new range from local data.
                node.create_split_replica(
                    cohort, node.replicas[change.cohort_id], horizon)
            else:
                node.create_replica(cohort)
        elif replica is not None:
            node.retire_replica(replica)


# ---------------------------------------------------------------------------
# Split snapshots
# ---------------------------------------------------------------------------

def build_split_snapshot(engine, new_cohort: Cohort,
                         key_mapper) -> Optional[SSTable]:
    """One SSTable holding the parent engine's cells that fall in the new
    cohort's range, re-stamped with the new cohort id (the engine asserts
    cohort ownership on apply).  LSNs are preserved: every cell predates
    the commit horizon, so the new cohort's log starts strictly above the
    snapshot (Appendix B ordering)."""
    keys = set(engine.memtable.keys())
    for table in engine.sstables:
        keys.update(table.keys())
    rng = new_cohort.key_range
    memtable = Memtable(engine.order)
    for key in sorted(keys):
        if key.startswith(INTERNAL_KEY_PREFIX):
            continue
        if not rng.contains(key_mapper(key)):
            continue
        for colname in sorted(engine.get_row(key)):
            cell = engine.get_row(key)[colname]
            memtable.apply(WriteRecord(
                lsn=cell.lsn, cohort_id=new_cohort.cohort_id, key=key,
                colname=colname, value=cell.value, version=cell.version,
                timestamp=cell.timestamp, tombstone=cell.tombstone))
    if memtable.is_empty:
        return None
    return SSTable.from_memtable(memtable)


# ---------------------------------------------------------------------------
# The migration protocol (runs on the source cohort's leader)
# ---------------------------------------------------------------------------

def handle_migration_start(replica, req):
    """Execute one membership change; spawned per MigrationStart.

    Sequence: guard staleness → prepare joiners (replicas exist before
    the switch, so elections and catch-up have somewhere to land) → for
    replaces, bulk catch-up → drain + commit the membership record
    through the old cohort → push commit info to the *old* member set
    (the commit broadcast already follows the new map) → re-prepare and
    publish the map version on the coordination board.
    """
    node = replica.node
    part: RangePartitioner = node.partitioner
    change: MembershipChange = req.payload.change
    if not replica.is_leader or not replica.open_for_writes:
        req.respond({"ok": False, "code": "not-leader",
                     "hint": replica.leader}, size=64)
        return
    if change.version <= part.version:
        # A previous attempt already committed the switch; only the side
        # effects can be missing.  Re-run them and report success.
        yield from _finish_migration(replica, change)
        req.respond({"ok": True, "code": "already-applied",
                     "version": part.version}, size=64)
        return
    if change.version != part.version + 1:
        req.respond({"ok": False, "code": "stale-plan", "hint": None},
                    size=64)
        return
    if replica.migrating:
        req.respond({"ok": False, "code": "busy", "hint": None}, size=64)
        return
    if change.kind == "replace" and node.name not in change.new_members:
        # Never retire the acting leader mid-round; the planner must
        # transfer leadership first.
        req.respond({"ok": False, "code": "bad-plan", "hint": None},
                    size=64)
        return
    if change.kind == "split":
        resident = [m for m in change.new_members
                    if m in replica.cohort.members]
        if len(resident) < len(change.new_members) - 1:
            req.respond({"ok": False, "code": "bad-plan", "hint": None},
                        size=64)
            return
    replica.migrating = True
    try:
        joiners = [m for m in change.new_members
                   if m not in replica.cohort.members]
        ok = yield from _prepare_joiners(replica, change, joiners)
        if not ok:
            req.respond({"ok": False, "code": "prepare-failed",
                         "hint": None}, size=64)
            return
        if change.kind == "replace":
            ok = yield from _push_catchup(replica, joiners)
            if not ok:
                req.respond({"ok": False, "code": "catchup-failed",
                             "hint": None}, size=64)
                return
        old_peers = replica.peers()
        replica.block_writes()
        try:
            # Check-first drain: prepare/catch-up above yielded for a
            # long time, and an empty queue must not skip the leadership
            # re-check — a deposed leader would otherwise replicate a
            # membership record it has no right to propose.
            while True:
                if not replica.is_leader or not replica.open_for_writes:
                    req.respond({"ok": False, "code": "not-leader",
                                 "hint": replica.leader}, size=64)
                    return
                if len(replica.queue) == 0:
                    break
                yield timeout(node.sim, 0.002)
            record = membership_record(replica, change)
            done = replica._replicate([record])
            yield done
        finally:
            replica.unblock_writes()
        # Commit already ran the switch here (leader advance hook); tell
        # the old member set immediately — the periodic broadcast now
        # follows the *new* map, so a retired member would otherwise
        # never learn it lost its seat.  Use the record's own LSN: our
        # resumption can interleave before committed_lsn is refreshed.
        info = Commit(cohort_id=replica.cohort_id, epoch=replica.epoch,
                      lsn=max(replica.committed_lsn, record.lsn))
        for peer in old_peers:
            node.endpoint.send(peer, info, size=48)
        if change.kind == "replace":
            # Best-effort final delta (includes the membership record);
            # a miss self-heals through gap resync.
            yield from _push_catchup(replica, joiners)
        yield from _finish_migration(replica, change)
        req.respond({"ok": True, "version": part.version}, size=64)
    finally:
        # This process owns the flag: the `busy` gate above makes
        # it the only setter.
        # lint: allow(write-after-yield-unguarded)
        replica.migrating = False


def _target_cohort(replica, change: MembershipChange) -> Cohort:
    """The cohort definition a joiner is prepared with.

    Splits hand out the future child cohort (the joiner is a full member
    of it and may run its first election).  Replaces hand out the
    *current* definition — the joiner is not yet a member, so the
    election gate keeps it a learner until the switch commits.
    """
    if change.kind == "split":
        src = replica.cohort.key_range
        return Cohort(change.new_cohort_id,
                      KeyRange(change.split_key, src.hi),
                      change.new_members)
    return replica.cohort


def _prepare_joiners(replica, change: MembershipChange,
                     joiners: Sequence[str]):
    node, cfg = replica.node, replica.node.config
    prep = MigrationPrepare(cohort=_target_cohort(replica, change),
                            base_epoch=replica.epoch,
                            map_version=node.partitioner.version)
    for member in joiners:
        try:
            ack = yield node.endpoint.request(
                member, prep, size=128, timeout=cfg.takeover_state_timeout)
        except RpcTimeout:
            return False
        if not (isinstance(ack, dict) and ack.get("ok")):
            return False
    return True


def _push_catchup(replica, joiners: Sequence[str]):
    """Leader-driven catch-up push (replace moves), routed through the
    same chunked snapshot-install path as leader takeover: progress a
    joiner makes is durable per chunk and survives retries."""
    for member in joiners:
        try:
            yield from push_catchup(replica, member)
        except (RpcTimeout, SimulationError):
            return False
    return True


def _finish_migration(replica, change: MembershipChange):
    """Idempotent post-commit side effects: re-prepare every member of
    the target cohort (heals joiners that crashed after the original
    prepare) and publish the map version on the coordination board."""
    node, cfg = replica.node, replica.node.config
    part: RangePartitioner = node.partitioner
    # Re-notify retired members (replace): the one-shot post-commit
    # Commit can be lost, and nothing else ever addresses them again.
    retired = [m for m in change.old_members
               if m not in change.new_members]
    if retired and replica.is_leader:
        info = Commit(cohort_id=replica.cohort_id, epoch=replica.epoch,
                      lsn=replica.committed_lsn)
        for member in retired:
            node.endpoint.send(member, info, size=48)
    target_cid = (change.new_cohort_id if change.kind == "split"
                  else change.cohort_id)
    cohort = part.cohort_or_none(target_cid)
    if cohort is not None:
        prep = MigrationPrepare(cohort=cohort, base_epoch=replica.epoch,
                                map_version=part.version)
        for member in cohort.members:
            if member == node.name:
                continue
            try:
                yield node.endpoint.request(
                    member, prep, size=128,
                    timeout=cfg.takeover_state_timeout)
            except RpcTimeout:
                pass    # startup reconciliation / driver retry covers it
    if node.zk is not None:
        try:
            yield from CohortMapBoard(node.zk).publish(part.version)
        except CoordError:
            pass        # the next attempt (or operator read) re-publishes


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def _pick_residents(members: Sequence[str], joiner: str, count: int,
                    topology) -> Tuple[str, ...]:
    """Choose ``count`` resident members to seed a split's child cohort.

    Topology-oblivious: the first ``count`` members (legacy behavior).
    With a topology, prefer residents in datacenters the child cohort
    (joiner included) does not cover yet, so elastic growth preserves
    the DC spread that makes a whole-DC outage survivable; ties keep
    member order.
    """
    pool = [m for m in members if m != joiner]
    if topology is None:
        return tuple(pool[:count])
    picked: List[str] = []
    seen = {topology.dc_of(joiner)}
    for m in pool:
        if len(picked) == count:
            break
        if topology.dc_of(m) not in seen:
            picked.append(m)
            seen.add(topology.dc_of(m))
    for m in pool:
        if len(picked) == count:
            break
        if m not in picked:
            picked.append(m)
    return tuple(picked)


def plan_join(partitioner: RangePartitioner, new_nodes: Sequence[str],
              heat: Optional[Dict[int, float]] = None,
              moves_per_node: int = 1) -> List[MembershipChange]:
    """Plan cohort splits that shift load onto each joining node.

    ``heat`` maps cohort id → observed load (ops served); unknown cohorts
    default to their range width.  Each move splits the currently
    hottest cohort at its range midpoint: the joiner plus two resident
    members form the child cohort, so the residents seed the new range
    from local data and the joiner catches up from whichever of them is
    elected.  The simulated layout/heat is updated between moves so
    successive plans spread across cohorts.  When the partitioner has a
    topology, residents are picked DC-aware (:func:`_pick_residents`).
    """
    cohorts: Dict[int, Cohort] = {c.cohort_id: c
                                  for c in partitioner.cohorts}
    temperature: Dict[int, float] = dict(heat or {})
    for cid in sorted(cohorts):
        rng = cohorts[cid].key_range
        temperature.setdefault(cid, float(rng.hi - rng.lo))
    version = partitioner.version
    next_id = partitioner.next_cohort_id()
    plans: List[MembershipChange] = []
    for name in new_nodes:
        for _ in range(moves_per_node):
            candidates = [cid for cid in sorted(cohorts)
                          if name not in cohorts[cid].members
                          and (cohorts[cid].key_range.hi
                               - cohorts[cid].key_range.lo) >= 2]
            if not candidates:
                break
            victim_id = max(candidates, key=lambda c: temperature[c])
            src = cohorts[victim_id]
            mid = src.key_range.lo + (src.key_range.hi
                                      - src.key_range.lo) // 2
            residents = _pick_residents(
                src.members, name, max(len(src.members) - 1, 1),
                partitioner.topology)
            new_members = (name,) + residents
            version += 1
            change = MembershipChange(
                version=version, kind="split", cohort_id=victim_id,
                new_members=new_members, split_key=mid,
                new_cohort_id=next_id)
            plans.append(change)
            cohorts[victim_id] = Cohort(
                victim_id, KeyRange(src.key_range.lo, mid), src.members)
            cohorts[next_id] = Cohort(
                next_id, KeyRange(mid, src.key_range.hi), new_members)
            half = temperature[victim_id] / 2.0
            temperature[victim_id] = half
            temperature[next_id] = half
            next_id += 1
    return plans


def plan_replace(partitioner: RangePartitioner, cohort_id: int,
                 old_member: str, new_member: str) -> MembershipChange:
    """Plan swapping one member of a cohort for another node."""
    cohort = partitioner.cohort(cohort_id)
    if old_member not in cohort.members:
        raise ValueError(f"{old_member!r} not in cohort {cohort_id}")
    if new_member in cohort.members:
        raise ValueError(f"{new_member!r} already in cohort {cohort_id}")
    members = tuple(new_member if m == old_member else m
                    for m in cohort.members)
    return MembershipChange(version=partitioner.version + 1,
                            kind="replace", cohort_id=cohort_id,
                            new_members=members,
                            old_members=cohort.members)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

class Rebalancer:
    """Harness-side driver: pushes planned changes at cohort leaders and
    retries through crashes until the cluster converges on each one.

    All the safety lives in the protocol (version-guarded, idempotent);
    the driver only supplies liveness — resolve the current leader, send
    :class:`MigrationStart`, back off, re-check convergence, repeat.
    """

    def __init__(self, cluster, name: str = "rebalancer"):
        self.cluster = cluster
        self.endpoint = cluster.network.endpoint(name)
        self.attempts = 0
        self.moves_completed = 0
        self.done = False

    def execute(self, plans: Iterable[MembershipChange],
                move_timeout: float = 120.0, lead_new: bool = True):
        """Process generator: drive each change to convergence, in order.
        With ``lead_new``, split moves end by transferring the child
        cohort's leadership to the joining node (the point of scaling
        out: the new node must *serve*, not just store)."""
        sim = self.cluster.sim
        self.done = False
        for change in plans:
            deadline = sim.now + move_timeout
            while not self.plan_converged(change):
                if sim.now >= deadline:
                    raise SimulationError(
                        f"migration v{change.version} did not converge "
                        f"within {move_timeout}s")
                leader = self.cluster.leader_of(change.cohort_id)
                if leader is None:
                    yield timeout(sim, 0.25)
                    continue
                self.attempts += 1
                # The 10s floor budgets the migration itself (drain +
                # catch-up service time, which dwarfs the wire); the
                # rtt-derived term keeps the budget honest when the
                # leader sits across a WAN link (timeout audit, cf.
                # Network.rtt_bound).
                migration_timeout = (
                    10.0 + 4.0 * self.cluster.network.rtt_bound())
                try:
                    reply = yield self.endpoint.request(
                        leader,
                        MigrationStart(cohort_id=change.cohort_id,
                                       change=change),
                        size=256, timeout=migration_timeout)
                except RpcTimeout:
                    continue
                if not (isinstance(reply, dict) and reply.get("ok")):
                    yield timeout(sim, 0.25)
                    continue
                yield timeout(sim, 0.05)    # let monitors settle
            self.moves_completed += 1
            if lead_new and change.kind == "split":
                yield from self._ensure_leader(
                    change.new_cohort_id, change.new_members[0],
                    sim.now + move_timeout)
        self.done = True

    def plan_converged(self, change: MembershipChange) -> bool:
        cluster = self.cluster
        part: RangePartitioner = cluster.partitioner
        if part.version < change.version:
            return False
        cids = [change.cohort_id]
        if change.kind == "split":
            cids.append(change.new_cohort_id)
        for cid in cids:
            cohort = part.cohort_or_none(cid)
            if cohort is None:
                return False
            if cluster.leader_of(cid) is None:
                return False
            for member in cohort.members:
                node = cluster.nodes.get(member)
                if node is None or not node.alive:
                    return False    # wait out restarts before declaring
                replica = node.replicas.get(cid)
                if replica is None or replica.role not in (Role.LEADER,
                                                           Role.FOLLOWER):
                    return False
            # Retired members must have dropped their replicas.
            for name in sorted(cluster.nodes):
                node = cluster.nodes[name]
                if (name not in cohort.members and node.alive
                        and cid in node.replicas):
                    return False
        return True

    def _ensure_leader(self, cohort_id: int, target: str, deadline: float):
        from .loadbalance import transfer_leadership
        sim = self.cluster.sim
        while sim.now < deadline:
            leader = self.cluster.leader_of(cohort_id)
            if leader == target:
                return True
            if leader is not None:
                node = self.cluster.nodes[leader]
                replica = node.replicas.get(cohort_id)
                tgt = self.cluster.nodes.get(target)
                tgt_replica = (tgt.replicas.get(cohort_id)
                               if tgt is not None and tgt.alive else None)
                if (replica is not None and tgt_replica is not None
                        and tgt_replica.role == Role.FOLLOWER):
                    proc = node.spawn(
                        transfer_leadership(replica, target),
                        f"rebalance-transfer-{cohort_id}")
                    while proc.is_alive and sim.now < deadline:
                        yield timeout(sim, 0.1)
            yield timeout(sim, 0.25)
        return self.cluster.leader_of(cohort_id) == target
