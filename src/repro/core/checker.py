"""History-based consistency checking.

Spinnaker's version numbers make single-key consistency mechanically
checkable: every committed write to a column gets a distinct,
monotonically increasing version.  A :class:`HistoryRecorder` collects
client-observed operations (with invocation/response times), and
:func:`check_strong_history` verifies the strong-consistency contract on
each key:

* **recency** — a strong read returns a version at least as new as any
  write *acknowledged before the read began*;
* **no time travel** — a strong read returns a version no newer than the
  number of writes *started before the read ended* (versions cannot come
  from the future);
* **real-time monotonicity** — for two non-overlapping strong reads,
  the later read never returns an older version.

These are the single-key linearizability conditions for a versioned
register.  The chaos and semantics tests drive real cluster histories
through this checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["HistoryRecorder", "Violation", "check_strong_history"]


@dataclass(frozen=True)
class _Op:
    kind: str           # "read" | "write"
    key: bytes
    start: float
    end: float
    version: int        # version returned (read) or assigned (write)
    ok: bool


@dataclass(frozen=True)
class Violation:
    """One consistency violation found in a history."""

    key: bytes
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule} on {self.key!r}: {self.detail}"


class HistoryRecorder:
    """Collects operations as clients observe them."""

    def __init__(self) -> None:
        self._ops: List[_Op] = []

    def record_write(self, key: bytes, start: float, end: float,
                     version: int, ok: bool = True) -> None:
        self._ops.append(_Op("write", key, start, end, version, ok))

    def record_read(self, key: bytes, start: float, end: float,
                    version: int, ok: bool = True) -> None:
        self._ops.append(_Op("read", key, start, end, version, ok))

    def operations(self, key: Optional[bytes] = None) -> List[_Op]:
        return [op for op in self._ops if key is None or op.key == key]

    def keys(self) -> List[bytes]:
        return sorted({op.key for op in self._ops})

    def __len__(self) -> int:
        return len(self._ops)


def check_strong_history(history: HistoryRecorder) -> List[Violation]:
    """Check the strong-consistency rules; returns violations (empty =
    the history is consistent)."""
    violations: List[Violation] = []
    for key in history.keys():
        ops = history.operations(key)
        writes = [op for op in ops if op.kind == "write" and op.ok]
        reads = sorted((op for op in ops if op.kind == "read" and op.ok),
                       key=lambda op: op.start)
        for read in reads:
            acked_before = [w for w in writes if w.end <= read.start]
            floor = max((w.version for w in acked_before), default=0)
            if read.version < floor:
                violations.append(Violation(
                    key, "recency",
                    f"read at [{read.start:.4f},{read.end:.4f}] returned "
                    f"version {read.version} < acknowledged {floor}"))
            started_before = [w for w in writes if w.start <= read.end]
            ceiling = max((w.version for w in started_before), default=0)
            if read.version > ceiling:
                violations.append(Violation(
                    key, "time-travel",
                    f"read returned version {read.version} but only "
                    f"{ceiling} writes had started"))
        # Real-time monotonicity across non-overlapping reads.
        for earlier, later in zip(reads, reads[1:]):
            if earlier.end <= later.start \
                    and later.version < earlier.version:
                violations.append(Violation(
                    key, "monotonicity",
                    f"read ending {earlier.end:.4f} saw version "
                    f"{earlier.version}, later read saw "
                    f"{later.version}"))
    return violations
