"""History-based consistency checking.

Spinnaker's version numbers make single-key consistency mechanically
checkable: every committed write to a column gets a distinct,
monotonically increasing version.  A :class:`HistoryRecorder` collects
client-observed operations (with invocation/response times), and
:func:`check_strong_history` verifies the strong-consistency contract on
each key:

* **recency** — a strong read returns a version at least as new as any
  write *acknowledged before the read began*;
* **no time travel** — a strong read returns a version no newer than the
  number of writes *started before the read ended* (versions cannot come
  from the future).  A failed (timed-out) write is *indeterminate*: it —
  or its client-level retries — may have committed anyway, so once one
  has started, the ceiling for overlapping-or-later reads is unbounded
  (the standard Jepsen treatment of info-result operations);
* **real-time monotonicity** — for two non-overlapping strong reads,
  the later read never returns an older version.

These are the single-key linearizability conditions for a versioned
register.  The chaos and semantics tests drive real cluster histories
through this checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["HistoryRecorder", "Violation", "check_strong_history"]


@dataclass(frozen=True)
class _Op:
    kind: str           # "read" | "write"
    key: bytes
    start: float
    end: float
    version: int        # version returned (read) or assigned (write)
    ok: bool


@dataclass(frozen=True)
class Violation:
    """One consistency violation found in a history."""

    key: bytes
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule} on {self.key!r}: {self.detail}"


class HistoryRecorder:
    """Collects operations as clients observe them."""

    def __init__(self) -> None:
        self._ops: List[_Op] = []

    def record_write(self, key: bytes, start: float, end: float,
                     version: int, ok: bool = True) -> None:
        self._ops.append(_Op("write", key, start, end, version, ok))

    def record_read(self, key: bytes, start: float, end: float,
                    version: int, ok: bool = True) -> None:
        self._ops.append(_Op("read", key, start, end, version, ok))

    def operations(self, key: Optional[bytes] = None) -> List[_Op]:
        return [op for op in self._ops if key is None or op.key == key]

    def keys(self) -> List[bytes]:
        return sorted({op.key for op in self._ops})

    def __len__(self) -> int:
        return len(self._ops)


def check_strong_history(history: HistoryRecorder) -> List[Violation]:
    """Check the strong-consistency rules; returns violations (empty =
    the history is consistent)."""
    violations: List[Violation] = []
    for key in sorted(history.keys()):
        ops = history.operations(key)
        writes = [op for op in ops if op.kind == "write" and op.ok]
        failed_writes = [op for op in ops
                         if op.kind == "write" and not op.ok]
        reads = sorted((op for op in ops if op.kind == "read" and op.ok),
                       key=lambda op: op.start)
        for read in reads:
            acked_before = [w for w in writes if w.end <= read.start]
            floor = max((w.version for w in acked_before), default=0)
            if read.version < floor:
                violations.append(Violation(
                    key, "recency",
                    f"read at [{read.start:.4f},{read.end:.4f}] returned "
                    f"version {read.version} < acknowledged {floor}"))
            # An indeterminate (failed) write that already started may
            # have committed any number of versions via retries, so the
            # ceiling is only known when none is in play.
            if any(w.start <= read.end for w in failed_writes):
                continue
            started_before = [w for w in writes if w.start <= read.end]
            ceiling = max((w.version for w in started_before), default=0)
            if read.version > ceiling:
                violations.append(Violation(
                    key, "time-travel",
                    f"read returned version {read.version} but only "
                    f"{ceiling} writes had started"))
        # Real-time monotonicity across *all* non-overlapping read pairs,
        # not just adjacent ones: a stale read separated from its witness
        # by an overlapping read in between must still be caught.  Sweep
        # reads in start order, keeping the max version over every read
        # already *ended* — O(n log n) instead of comparing all pairs.
        by_end = sorted(reads, key=lambda op: op.end)
        ended = 0
        witness: Optional[_Op] = None
        for read in reads:   # already sorted by start
            while ended < len(by_end) and by_end[ended].end <= read.start:
                if witness is None or by_end[ended].version > witness.version:
                    witness = by_end[ended]
                ended += 1
            if witness is not None and read.version < witness.version:
                violations.append(Violation(
                    key, "monotonicity",
                    f"read ending {witness.end:.4f} saw version "
                    f"{witness.version}, later read at "
                    f"[{read.start:.4f},{read.end:.4f}] saw "
                    f"{read.version}"))
    return violations
