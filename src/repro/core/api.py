"""The client API (§3): get / put / delete / conditional variants.

Each call is a single-operation transaction.  ``get`` takes a
``consistent`` flag choosing strong (leader-routed, always latest) or
timeline (any replica, possibly stale) consistency.  Version numbers are
managed by the store and surface through ``get``; ``conditional_put`` and
``conditional_delete`` succeed only when the supplied version is still
current, which gives read-modify-write transactions optimistic
concurrency control::

    c = yield from client.get(key, b"c", consistent=True)
    yield from client.conditional_put(key, b"c", new_value, c.version)
    # retry on VersionMismatch

All methods are generator functions for use with ``yield from`` inside
simulation processes.

Routing state machine (per operation, inside :meth:`_call`)
-----------------------------------------------------------
The client works off an immutable
:class:`~repro.core.partition.CohortMap` snapshot plus a per-cohort
leader cache, and walks one request through these transitions until an
``ok`` reply, a terminal error, or the op deadline:

``send -> ok``                 cache target as leader (strong ops), done.
``send -> RpcTimeout``         rotate to the next member (strong) or a
                               random non-timed-out replica (timeline;
                               same-DC replicas preferred on a placed
                               network).
``send -> not-leader/unavailable``  follow the ``hint`` if given, else
                               rotate; jittered exponential backoff
                               (``client_retry_backoff`` doubling up to
                               ``client_retry_backoff_cap``).
``send -> wrong-node``         the replier holds no replica for the key:
                               drop a poisoned leader-cache entry, fetch
                               a fresh map when the reply advertises a
                               newer ``map_version``, re-resolve the
                               cohort (``relocate``), backoff, retry.
``send -> version-mismatch``   raise :class:`VersionMismatch` (terminal;
                               retrying cannot succeed).

Invariants
----------
- At most one attempt of an operation is in flight at a time; retries
  never race each other (matters for tracing and FIFO channels).
- The leader cache only ever holds names that were members of the
  cohort in the snapshot that produced them; map refreshes evict
  entries invalidated by membership changes.
- Total time spent retrying is bounded by ``client_op_timeout`` and
  ``client_max_retries``, whichever trips first; the op then raises
  :class:`RequestTimeout`.

Failure cases: a crashed target costs one ``per_try`` timeout before
rotation; a stale map costs one extra round trip (``GetCohortMap``); a
partitioned client eventually times out every member and surfaces
:class:`RequestTimeout` to the workload.

Elastic membership propagates to clients lazily through the
``wrong-node`` path — there is no broadcast, and the coordination
service is never on the client's path (§4.2).

Tracing: when built with a :class:`~repro.obs.trace.RequestTracer`,
:meth:`_call` opens the root span, stamps ``ctx.last_sent_at`` before
every (re)send so the server can delimit ``route``, and closes the
trace with a ``reply`` span (see ``OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..obs.trace import NullRequestTracer
from ..sim.events import Simulator
from ..sim.network import Endpoint, Network, RpcTimeout
from ..sim.process import timeout
from ..sim.rng import RngRegistry
from .config import SpinnakerConfig
from .datamodel import (DatastoreError, GetResult, RequestTimeout,
                        VersionMismatch)
from .messages import (ClientGet, ClientMultiWrite, ClientScan,
                       ClientWrite, GetCohortMap)
from .partition import CohortMap, RangePartitioner

__all__ = ["SpinnakerClient"]


class SpinnakerClient:
    """A datastore client bound to one (simulated) client machine."""

    #: message type -> trace op label (root span name)
    _TRACE_OPS = {"ClientGet": "read", "ClientScan": "scan",
                  "ClientWrite": "write", "ClientMultiWrite": "write",
                  "ClientTransaction": "txn"}

    def __init__(self, sim: Simulator, network: Network, name: str,
                 partitioner: RangePartitioner, config: SpinnakerConfig,
                 rng: RngRegistry, request_tracer=None):
        self.sim = sim
        self.name = name
        self.request_tracer = (request_tracer if request_tracer is not None
                               else NullRequestTracer())
        self.partitioner = partitioner
        self.config = config
        self.endpoint: Endpoint = network.endpoint(name)
        self._topology = network.topology
        # Per-try budgets derive from the network's round-trip bound:
        # the configured floors (LAN-scale: 2.0s / 1.0s) dominate on a
        # flat network, while a WAN topology raises them so a healthy
        # slow link is never misread as a timeout (a hardcoded 1.0s
        # here once made every cross-DC map refresh a retry storm).
        rtt = network.rtt_bound()
        self._per_try = max(config.client_try_timeout,
                            config.client_rtt_multiplier * rtt)
        self._map_timeout = max(config.client_map_timeout,
                                config.client_rtt_multiplier * rtt)
        self._rng = rng.stream(f"client:{name}")
        self._map: CohortMap = partitioner.snapshot()
        self._leader_cache: Dict[int, str] = {}
        self.ops_completed = 0
        self.retries = 0
        self.map_refreshes = 0

    @property
    def map_version(self) -> int:
        """Version of the routing snapshot this client operates on."""
        return self._map.version

    # ------------------------------------------------------------------
    # Public API (§3)
    # ------------------------------------------------------------------
    def get(self, key: bytes, colname: bytes, consistent: bool = True):
        """Read a column value and its version number."""
        result = yield from self._get(key, colname, consistent)
        return result

    def put(self, key: bytes, colname: bytes, value: bytes):
        """Insert a column value into a row."""
        msg = ClientWrite(key=key, colname=colname, value=value)
        return (yield from self._write(key, msg, 96 + len(value)))

    def delete(self, key: bytes, colname: bytes):
        """Delete a column from a row."""
        msg = ClientWrite(key=key, colname=colname, value=None,
                          tombstone=True)
        return (yield from self._write(key, msg, 96))

    def conditional_put(self, key: bytes, colname: bytes, value: bytes,
                        version: int):
        """Insert only if the column's current version equals ``version``;
        raises :class:`VersionMismatch` otherwise."""
        msg = ClientWrite(key=key, colname=colname, value=value,
                          expected_version=version)
        return (yield from self._write(key, msg, 96 + len(value)))

    def conditional_delete(self, key: bytes, colname: bytes, version: int):
        msg = ClientWrite(key=key, colname=colname, value=None,
                          tombstone=True, expected_version=version)
        return (yield from self._write(key, msg, 96))

    def put_columns(self, key: bytes,
                    columns: Dict[bytes, bytes]):
        """Multi-column put: all columns of one row, one transaction."""
        cols = tuple(sorted(columns.items()))
        msg = ClientMultiWrite(key=key, columns=cols)
        size = 96 + sum(len(v) for _c, v in cols)
        return (yield from self._write(key, msg, size))

    def conditional_put_columns(self, key: bytes,
                                columns: Dict[bytes, bytes],
                                versions: Dict[bytes, int]):
        """Multi-column conditional put (§3): every column's version must
        match or nothing is written."""
        cols = tuple(sorted(columns.items()))
        expected = tuple(versions.get(c) for c, _v in cols)
        msg = ClientMultiWrite(key=key, columns=cols,
                               expected_versions=expected)
        size = 96 + sum(len(v) for _c, v in cols)
        return (yield from self._write(key, msg, size))

    def scan(self, start_key: bytes, end_key: Optional[bytes] = None,
             limit: int = 100, consistent: bool = True):
        """Ordered range read: rows with start_key <= key < end_key, up
        to ``limit``, as a list of (key, {column: GetResult}).

        Requires a cluster built with order-preserving keys
        (``SpinnakerConfig.order_preserving_keys``); raises
        :class:`DatastoreError` otherwise.  Strong scans read each
        cohort's leader; timeline scans read any replica.
        """
        if not self._map.order_preserving:
            raise DatastoreError(
                "range scans require order_preserving_keys=True")
        results = []
        for cohort in self._map.cohorts_for_range(
                start_key, end_key or b"\xff\xff\xff\xff\xff"):
            if len(results) >= limit:
                break
            msg = ClientScan(cohort_id=cohort.cohort_id,
                             start_key=start_key, end_key=end_key,
                             limit=limit - len(results),
                             consistent=consistent)
            target = (self._strong_target(cohort) if consistent
                      else self._timeline_target(cohort))
            rows = yield from self._call(
                cohort, msg, 128, target, strong=consistent,
                relocate=lambda cid=cohort.cohort_id:
                    self._map.cohort_or_none(cid))
            for key, columns in rows:
                results.append((key, {
                    col: GetResult(value=value, version=version)
                    for col, (value, version) in columns.items()}))
        return results

    def get_row(self, key: bytes, colnames, consistent: bool = True):
        """Convenience: read several columns of one row."""
        out = {}
        for colname in colnames:
            out[colname] = yield from self.get(key, colname, consistent)
        return out

    # ------------------------------------------------------------------
    # Routing + retry
    # ------------------------------------------------------------------
    def _cohort(self, key: bytes):
        return self._map.locate(key)

    def _strong_target(self, cohort) -> str:
        """The cohort's best-known leader.  A cold cache falls back to
        the map's recorded leader hint before the lowest-named member —
        members[0] alone would bias every fresh client's first contact
        onto the same node."""
        cached = self._leader_cache.get(cohort.cohort_id)
        if cached is not None:
            return cached
        hint = self._map.leader_hint(cohort.cohort_id)
        if hint is not None and hint in cohort.members:
            return hint
        return cohort.members[0]

    def _next_target(self, cohort, current: str) -> str:
        members = list(cohort.members)
        try:
            idx = members.index(current)
        except ValueError:
            return members[0]
        return members[(idx + 1) % len(members)]

    def _timeline_target(self, cohort, exclude=None) -> str:
        """A random replica; ``exclude`` (a member name or a collection
        of them) drops replicas that just timed out so retries cannot
        keep hammering crashed nodes.  Falls back to the full member
        list if exclusion would leave nobody.

        On a placed network, nearest-replica routing: replicas in this
        client's own datacenter are preferred (timeline reads tolerate
        staleness, so they never need to cross the WAN when a local
        copy exists — the latency side of the §3 consistency menu).
        """
        members = cohort.members
        if exclude:
            if isinstance(exclude, str):
                exclude = (exclude,)
            alive = [m for m in members if m not in exclude]
            if alive:
                members = alive
        if self._topology is not None:
            my_dc = self._topology.dc_of(self.name)
            local = [m for m in members
                     if self._topology.dc_of(m) == my_dc]
            if local:
                members = local
        return self._rng.choice(members)

    def _refresh_map(self, source: str):
        """Fetch a newer routing snapshot from ``source`` (which just
        told us ours is stale).  ``yield from`` me; True on upgrade."""
        try:
            reply = yield self.endpoint.request(
                source, GetCohortMap(), size=64,
                timeout=self._map_timeout)
        except RpcTimeout:
            return False
        if not (isinstance(reply, dict) and reply.get("ok")):
            return False
        snapshot: CohortMap = reply["map"]
        if snapshot.version <= self._map.version:
            return False
        self._map = snapshot
        self.map_refreshes += 1
        # Drop leader-cache entries invalidated by membership changes.
        for cid in sorted(self._leader_cache):
            cohort = snapshot.cohort_or_none(cid)
            if (cohort is None
                    or self._leader_cache[cid] not in cohort.members):
                del self._leader_cache[cid]
        return True

    def _get(self, key: bytes, colname: bytes, consistent: bool):
        cohort = self._cohort(key)
        msg = ClientGet(key=key, colname=colname, consistent=consistent)
        target = (self._strong_target(cohort) if consistent
                  else self._timeline_target(cohort))
        result = yield from self._call(cohort, msg, 96, target,
                                       strong=consistent,
                                       relocate=lambda:
                                           self._map.locate(key))
        return result

    def _write(self, key: bytes, msg, size: int):
        cohort = self._cohort(key)
        target = self._strong_target(cohort)
        result = yield from self._call(cohort, msg, size, target,
                                       strong=True,
                                       relocate=lambda:
                                           self._map.locate(key))
        return result

    def _call(self, cohort, msg, size: int, target: str, strong: bool,
              relocate=None):
        """Send with retries; root-span bracket when tracing is on.
        ``relocate`` re-resolves the cohort from the (possibly
        refreshed) map snapshot after a ``wrong-node`` reply; without it
        the client can only rotate members."""
        tracer = self.request_tracer
        ctx = None
        if tracer.enabled:
            op = self._TRACE_OPS.get(type(msg).__name__, "op")
            ctx = tracer.begin(op, self.name)
            if ctx is not None:
                msg = replace(msg, trace=ctx)
        try:
            result = yield from self._call_loop(cohort, msg, size, target,
                                                strong, relocate, ctx)
        except BaseException as exc:
            if ctx is not None:
                tracer.finish(ctx.root, error=type(exc).__name__)
            raise
        if ctx is not None:
            start = (ctx.server_done_at if ctx.server_done_at is not None
                     else self.sim.now)
            tracer.span_at(ctx, "reply", self.name, start=start)
            tracer.finish(ctx.root)
        return result

    def _call_loop(self, cohort, msg, size: int, target: str, strong: bool,
                   relocate, ctx):
        cfg = self.config
        deadline = self.sim.now + cfg.client_op_timeout
        attempt = 0
        timed_out: set = set()
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0 or attempt > cfg.client_max_retries:
                raise RequestTimeout(
                    f"{type(msg).__name__} gave up after {attempt} tries")
            per_try = min(remaining, self._per_try)
            if ctx is not None:
                ctx.last_sent_at = self.sim.now
            try:
                reply = yield self.endpoint.request(target, msg, size=size,
                                                    timeout=per_try)
            except RpcTimeout:
                attempt += 1
                self.retries += 1
                timed_out.add(target)
                target = (self._next_target(cohort, target) if strong
                          else self._timeline_target(cohort,
                                                     exclude=timed_out))
                continue
            if reply.get("ok"):
                if strong:
                    self._leader_cache[cohort.cohort_id] = target
                self.ops_completed += 1
                return reply["result"]
            code = reply.get("code")
            if code == "version-mismatch":
                raise VersionMismatch(reply["expected"], reply["actual"])
            if code == "wrong-node":
                attempt += 1
                self.retries += 1
                if self._leader_cache.get(cohort.cohort_id) == target:
                    # The replier holds no replica here; a cache entry
                    # pointing at it is poison, not a leader.
                    del self._leader_cache[cohort.cohort_id]
                stale = reply.get("map_version", 0) > self._map.version
                if stale:
                    yield from self._refresh_map(target)
                moved = relocate() if relocate is not None else None
                if moved is not None:
                    cohort = moved
                    target = (self._strong_target(cohort) if strong
                              else self._timeline_target(cohort))
                else:
                    target = self._next_target(cohort, target)
                yield timeout(self.sim, self._backoff(attempt, deadline))
                continue
            if code in ("not-leader", "unavailable"):
                attempt += 1
                self.retries += 1
                hint = reply.get("hint")
                if strong and hint and hint != target:
                    target = hint
                    self._leader_cache[cohort.cohort_id] = hint
                else:
                    # No hint: rotate — re-asking the same non-leader
                    # would just burn the op deadline.
                    target = self._next_target(cohort, target)
                yield timeout(self.sim, self._backoff(attempt, deadline))
                continue
            raise DatastoreError(f"unexpected error {code!r}")

    def _backoff(self, attempt: int, deadline: float) -> float:
        """Jittered exponential backoff for retry ``attempt`` (1-based),
        clamped to the op deadline.

        The first few attempts stay at the base step — routine, brief
        unavailability (a migration draining writes, a leader handoff)
        should be ridden out at full pace, not slept through.  Persistent
        failure then doubles the step up to ``client_retry_backoff_cap``.
        Equal-jitter in ``[step/2, step]``: bounded below so a retry
        always makes progress, randomized above so clients that all
        failed at the same instant (a healed whole-DC partition) do not
        re-arrive as a synchronized thundering herd.
        """
        cfg = self.config
        step = min(cfg.client_retry_backoff * (2.0 ** max(attempt - 4, 0)),
                   cfg.client_retry_backoff_cap)
        wait = step * (0.5 + 0.5 * self._rng.random())
        return max(0.0, min(wait, deadline - self.sim.now))
