"""The client API (§3): get / put / delete / conditional variants.

Each call is a single-operation transaction.  ``get`` takes a
``consistent`` flag choosing strong (leader-routed, always latest) or
timeline (any replica, possibly stale) consistency.  Version numbers are
managed by the store and surface through ``get``; ``conditional_put`` and
``conditional_delete`` succeed only when the supplied version is still
current, which gives read-modify-write transactions optimistic
concurrency control::

    c = yield from client.get(key, b"c", consistent=True)
    yield from client.conditional_put(key, b"c", new_value, c.version)
    # retry on VersionMismatch

All methods are generator functions for use with ``yield from`` inside
simulation processes.  Routing: the client caches each cohort's leader
and follows ``not-leader`` hints; timeline reads pick a random live
replica.  The coordination service is never on the client's path (§4.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.events import Simulator
from ..sim.network import Endpoint, Network, RpcTimeout
from ..sim.process import timeout
from ..sim.rng import RngRegistry
from .config import SpinnakerConfig
from .datamodel import (DatastoreError, GetResult, RequestTimeout,
                        VersionMismatch)
from .messages import (ClientGet, ClientMultiWrite, ClientScan,
                       ClientWrite)
from .partition import RangePartitioner

__all__ = ["SpinnakerClient"]


class SpinnakerClient:
    """A datastore client bound to one (simulated) client machine."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 partitioner: RangePartitioner, config: SpinnakerConfig,
                 rng: RngRegistry):
        self.sim = sim
        self.name = name
        self.partitioner = partitioner
        self.config = config
        self.endpoint: Endpoint = network.endpoint(name)
        self._rng = rng.stream(f"client:{name}")
        self._leader_cache: Dict[int, str] = {}
        self.ops_completed = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Public API (§3)
    # ------------------------------------------------------------------
    def get(self, key: bytes, colname: bytes, consistent: bool = True):
        """Read a column value and its version number."""
        result = yield from self._get(key, colname, consistent)
        return result

    def put(self, key: bytes, colname: bytes, value: bytes):
        """Insert a column value into a row."""
        msg = ClientWrite(key=key, colname=colname, value=value)
        return (yield from self._write(key, msg, 96 + len(value)))

    def delete(self, key: bytes, colname: bytes):
        """Delete a column from a row."""
        msg = ClientWrite(key=key, colname=colname, value=None,
                          tombstone=True)
        return (yield from self._write(key, msg, 96))

    def conditional_put(self, key: bytes, colname: bytes, value: bytes,
                        version: int):
        """Insert only if the column's current version equals ``version``;
        raises :class:`VersionMismatch` otherwise."""
        msg = ClientWrite(key=key, colname=colname, value=value,
                          expected_version=version)
        return (yield from self._write(key, msg, 96 + len(value)))

    def conditional_delete(self, key: bytes, colname: bytes, version: int):
        msg = ClientWrite(key=key, colname=colname, value=None,
                          tombstone=True, expected_version=version)
        return (yield from self._write(key, msg, 96))

    def put_columns(self, key: bytes,
                    columns: Dict[bytes, bytes]):
        """Multi-column put: all columns of one row, one transaction."""
        cols = tuple(sorted(columns.items()))
        msg = ClientMultiWrite(key=key, columns=cols)
        size = 96 + sum(len(v) for _c, v in cols)
        return (yield from self._write(key, msg, size))

    def conditional_put_columns(self, key: bytes,
                                columns: Dict[bytes, bytes],
                                versions: Dict[bytes, int]):
        """Multi-column conditional put (§3): every column's version must
        match or nothing is written."""
        cols = tuple(sorted(columns.items()))
        expected = tuple(versions.get(c) for c, _v in cols)
        msg = ClientMultiWrite(key=key, columns=cols,
                               expected_versions=expected)
        size = 96 + sum(len(v) for _c, v in cols)
        return (yield from self._write(key, msg, size))

    def scan(self, start_key: bytes, end_key: Optional[bytes] = None,
             limit: int = 100, consistent: bool = True):
        """Ordered range read: rows with start_key <= key < end_key, up
        to ``limit``, as a list of (key, {column: GetResult}).

        Requires a cluster built with order-preserving keys
        (``SpinnakerConfig.order_preserving_keys``); raises
        :class:`DatastoreError` otherwise.  Strong scans read each
        cohort's leader; timeline scans read any replica.
        """
        if not self.partitioner.order_preserving:
            raise DatastoreError(
                "range scans require order_preserving_keys=True")
        results = []
        for cohort in self.partitioner.cohorts_for_range(
                start_key, end_key or b"\xff\xff\xff\xff\xff"):
            if len(results) >= limit:
                break
            msg = ClientScan(cohort_id=cohort.cohort_id,
                             start_key=start_key, end_key=end_key,
                             limit=limit - len(results),
                             consistent=consistent)
            target = (self._strong_target(cohort) if consistent
                      else self._timeline_target(cohort))
            rows = yield from self._call(cohort, msg, 128, target,
                                         strong=consistent)
            for key, columns in rows:
                results.append((key, {
                    col: GetResult(value=value, version=version)
                    for col, (value, version) in columns.items()}))
        return results

    def get_row(self, key: bytes, colnames, consistent: bool = True):
        """Convenience: read several columns of one row."""
        out = {}
        for colname in colnames:
            out[colname] = yield from self.get(key, colname, consistent)
        return out

    # ------------------------------------------------------------------
    # Routing + retry
    # ------------------------------------------------------------------
    def _cohort(self, key: bytes):
        return self.partitioner.locate(key)

    def _strong_target(self, cohort) -> str:
        return self._leader_cache.get(cohort.cohort_id, cohort.members[0])

    def _next_target(self, cohort, current: str) -> str:
        members = list(cohort.members)
        try:
            idx = members.index(current)
        except ValueError:
            return members[0]
        return members[(idx + 1) % len(members)]

    def _timeline_target(self, cohort) -> str:
        return self._rng.choice(cohort.members)

    def _get(self, key: bytes, colname: bytes, consistent: bool):
        cohort = self._cohort(key)
        msg = ClientGet(key=key, colname=colname, consistent=consistent)
        target = (self._strong_target(cohort) if consistent
                  else self._timeline_target(cohort))
        result = yield from self._call(cohort, msg, 96, target,
                                       strong=consistent)
        return result

    def _write(self, key: bytes, msg, size: int):
        cohort = self._cohort(key)
        target = self._strong_target(cohort)
        result = yield from self._call(cohort, msg, size, target,
                                       strong=True)
        return result

    def _call(self, cohort, msg, size: int, target: str, strong: bool):
        cfg = self.config
        deadline = self.sim.now + cfg.client_op_timeout
        attempt = 0
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0 or attempt > cfg.client_max_retries:
                raise RequestTimeout(
                    f"{type(msg).__name__} gave up after {attempt} tries")
            per_try = min(remaining, 2.0)
            try:
                reply = yield self.endpoint.request(target, msg, size=size,
                                                    timeout=per_try)
            except RpcTimeout:
                attempt += 1
                self.retries += 1
                target = (self._next_target(cohort, target) if strong
                          else self._timeline_target(cohort))
                continue
            if reply.get("ok"):
                if strong:
                    self._leader_cache[cohort.cohort_id] = target
                self.ops_completed += 1
                return reply["result"]
            code = reply.get("code")
            if code == "version-mismatch":
                raise VersionMismatch(reply["expected"], reply["actual"])
            if code in ("not-leader", "unavailable", "wrong-node"):
                attempt += 1
                self.retries += 1
                hint = reply.get("hint")
                if strong and hint and hint != target:
                    target = hint
                    self._leader_cache[cohort.cohort_id] = hint
                else:
                    target = self._next_target(cohort, target)
                yield timeout(self.sim, cfg.client_retry_backoff)
                continue
            raise DatastoreError(f"unexpected error {code!r}")
