"""The commit queue (§4.1): pending writes awaiting quorum.

A main-memory structure tracking writes that have been proposed but not
yet committed.  The leader's queue additionally tracks, per write, its
local log force and follower acks, and *commits strictly in LSN order*:
a write at the head commits once it is locally durable and at least one
follower has acked — later writes must wait for earlier ones, which is
what makes conditional puts deterministic across the cohort (§5.1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Set

from ..storage.lsn import LSN
from ..storage.records import WriteRecord

__all__ = ["CommitQueue", "PendingWrite"]


class PendingWrite:
    """One queued write and its replication progress."""

    __slots__ = ("record", "forced", "acks", "on_commit")

    def __init__(self, record: WriteRecord,
                 on_commit: Optional[Callable[[WriteRecord], None]] = None):
        self.record = record
        self.forced = False                # our own log force completed
        self.acks: Set[str] = set()        # followers that acked
        self.on_commit = on_commit

    def ready(self, acks_needed: int) -> bool:
        return self.forced and len(self.acks) >= acks_needed


class CommitQueue:
    """LSN-ordered pending writes for one cohort on one node."""

    def __init__(self, acks_needed: int = 1):
        self.acks_needed = acks_needed
        self._entries: "OrderedDict[LSN, PendingWrite]" = OrderedDict()
        self.committed_lsn = LSN.zero()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lsn: LSN) -> bool:
        return lsn in self._entries

    # ------------------------------------------------------------------
    def add(self, record: WriteRecord,
            on_commit: Optional[Callable[[WriteRecord], None]] = None
            ) -> PendingWrite:
        """Queue a proposed write (idempotent by LSN)."""
        entry = self._entries.get(record.lsn)
        if entry is not None:
            if on_commit is not None:
                entry.on_commit = on_commit
            return entry
        entry = PendingWrite(record, on_commit)
        self._entries[record.lsn] = entry
        # Proposals arrive in LSN order over in-order channels; recovery
        # re-proposals can interleave with nothing (cohort is closed),
        # so insertion order == LSN order.  Assert cheaply.
        return entry

    def mark_forced(self, lsn: LSN) -> None:
        entry = self._entries.get(lsn)
        if entry is not None:
            entry.forced = True

    def add_ack(self, lsn: LSN, follower: str) -> None:
        entry = self._entries.get(lsn)
        if entry is not None:
            entry.acks.add(follower)

    def add_ack_upto(self, lsn: LSN, follower: str) -> None:
        """Cumulative ack: the follower has durably logged everything at
        or below ``lsn`` (proposals travel over in-order channels, so an
        ack for a batch covers every earlier pending write too)."""
        for pending_lsn, entry in self._entries.items():
            if pending_lsn > lsn:
                break
            entry.acks.add(follower)

    # ------------------------------------------------------------------
    def advance_leader(self) -> List[WriteRecord]:
        """Commit the longest ready prefix (leader rule).

        Returns records committed by this call, in LSN order; their
        ``on_commit`` callbacks have been invoked.
        """
        committed: List[WriteRecord] = []
        while self._entries:
            lsn, entry = next(iter(self._entries.items()))
            if not entry.ready(self.acks_needed):
                break
            self._entries.popitem(last=False)
            self.committed_lsn = lsn
            committed.append(entry.record)
            if entry.on_commit is not None:
                entry.on_commit(entry.record)
        return committed

    def apply_commit(self, upto: LSN) -> List[WriteRecord]:
        """Commit everything at or below ``upto`` (follower rule, on a
        commit message).  Returns the committed records in LSN order."""
        committed: List[WriteRecord] = []
        while self._entries:
            lsn, entry = next(iter(self._entries.items()))
            if lsn > upto:
                break
            self._entries.popitem(last=False)
            self.committed_lsn = max(self.committed_lsn, lsn)
            committed.append(entry.record)
            if entry.on_commit is not None:
                entry.on_commit(entry.record)
        if upto > self.committed_lsn:
            self.committed_lsn = upto
        return committed

    def pending_older_than(self, lsn: LSN, limit: int) -> int:
        """Number of pending entries strictly below ``lsn``, capped at
        ``limit`` — the proposal batcher's congestion probe.  Entries are
        LSN-ordered, so this is O(limit), not O(queue depth)."""
        count = 0
        for pending_lsn in self._entries:
            if pending_lsn >= lsn or count >= limit:
                break
            count += 1
        return count

    # ------------------------------------------------------------------
    def drop(self, lsn: LSN) -> Optional[WriteRecord]:
        """Remove a pending write that was discarded (logical truncation)."""
        entry = self._entries.pop(lsn, None)
        return entry.record if entry is not None else None

    def pending_lsns(self) -> List[LSN]:
        return list(self._entries)

    def pending_records(self) -> List[WriteRecord]:
        return [e.record for e in self._entries.values()]

    def latest_pending_for(self, key: bytes,
                           colname: bytes) -> Optional[WriteRecord]:
        """The newest pending write to (key, column), if any — used by the
        leader to assign version numbers consistently when writes to the
        same column are pipelined."""
        latest: Optional[WriteRecord] = None
        for entry in self._entries.values():
            rec = entry.record
            if rec.key == key and rec.colname == colname:
                latest = rec
        return latest

    def clear(self) -> None:
        self._entries.clear()
