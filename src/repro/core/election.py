"""Leader election via the coordination service (§7, Fig. 7).

Per cohort, election state lives under ``/cohorts/<r>``:

* ``candidates/`` — sequential ephemeral znodes, one per candidate, each
  holding the candidate's last LSN (n.lst);
* ``leader`` — ephemeral znode naming the leader (its deletion, via
  session expiry, is the failure signal that triggers re-election);
* ``epoch`` — persistent counter, bumped by the winner before it accepts
  writes, so new LSNs exceed anything previously used (Appendix B).

The protocol: announce yourself under ``candidates/``, wait until a
majority of the cohort appears, pick the candidate with the max n.lst
(znode sequence numbers break ties), and let the winner atomically claim
``leader`` (ephemeral create — losers of the create race just follow).
The winner then runs leader takeover (Fig. 6).

Safety argument (§7.2): a committed write is in the logs of ≥ 2 of 3
nodes; ≥ 2 nodes participate in the election; hence some participant
holds the last committed write, and the max-n.lst rule makes that node
(or one at least as current) the leader.
"""

from __future__ import annotations

from ..sim.events import Event
from ..sim.process import timeout
from ..storage.lsn import LSN
from ..coord.znode import (BadVersionError, CoordError, NoNodeError,
                           NodeExistsError)
from .partition import preference_order
from .recovery import leader_takeover
from .replication import Role

__all__ = ["run_election", "leader_monitor", "cohort_zk_path"]


def cohort_zk_path(cohort_id: int) -> str:
    return f"/cohorts/{cohort_id}"


def _candidate_seq(name: str) -> int:
    return int(name.rsplit("-", 1)[1])


def run_election(replica):
    """One election round; ``yield from`` me.

    Returns the leader's name if one was determined this round (by us
    winning, or by reading ``leader``), or None if the round was
    inconclusive (caller — the leader monitor — retries).
    """
    node, cfg = replica.node, replica.node.config
    zk = node.zk
    sim = node.sim
    root = cohort_zk_path(replica.cohort_id)
    if node.name not in replica.cohort.members:
        # A prepared joiner (replace move, pre-switch) is a learner, not
        # a voter: its near-empty log must never count toward the
        # majority whose max-n.lst rule guarantees a committed-data
        # holder wins (§7.2).  It follows whatever leader emerges.
        return None
    if node.replicas.get(replica.cohort_id) is not replica:
        return None     # retired (or replaced) while the monitor slept
    if replica.electing:
        return None
    replica.electing = True
    try:
        if replica.role != Role.LEADER:
            replica.role = (Role.CANDIDATE
                            if replica.role == Role.FOLLOWER
                            else replica.role)
        yield from zk.ensure_path(f"{root}/candidates")
        # Lines 1 & 4: announce our last LSN in a sequential ephemeral
        # znode.  If our candidate znode from a previous round still
        # exists with the same n.lst we keep it — deleting and recreating
        # every round can livelock two candidates that keep invalidating
        # each other's view of /candidates mid-round.
        # First announcement in a round: stagger by placement order so
        # that when every candidate ties on n.lst (bootstrap, preloaded
        # clusters) the sequence-number tie-break resolves to the
        # base-range owner (Fig. 2), spreading leadership one cohort per
        # node.  On a placed topology with a preferred (client-majority)
        # datacenter, preference_order puts that DC's replicas first so
        # bootstrap leadership lands next to the clients.  Pure timing
        # bias — whenever logs differ the max-n.lst rule dominates.
        order = preference_order(replica.cohort.members,
                                 node.network.topology)
        position = order.index(node.name)
        if position and replica.candidate_path is None:
            yield timeout(sim, 0.04 * position)
        n_lst = node.n_lst(replica.cohort_id)
        announce = str(n_lst.to_int()).encode()
        reuse = False
        if replica.candidate_path is not None:
            try:
                data, _ = yield from zk.get(replica.candidate_path)
                if data == announce:
                    reuse = True
                else:
                    yield from zk.delete(replica.candidate_path)
            except CoordError:
                pass
        if not reuse:
            replica.candidate_path = yield from zk.create(
                f"{root}/candidates/c-", data=announce,
                ephemeral=True, sequential=True)
        node.trace("election", "candidate announced",
                   cohort=replica.cohort_id, n_lst=str(n_lst))
        my_name = replica.candidate_path.rsplit("/", 1)[1]
        # Line 5: wait for a majority of the cohort.
        majority = cfg.majority
        while True:
            changed = Event(sim)

            def _on_change(_ev, target=changed):
                if not target.triggered:
                    target.succeed()

            kids = yield from zk.get_children(f"{root}/candidates",
                                              watcher=_on_change)
            if len(kids) >= majority:
                break
            yield changed
            if not node.alive:
                return None
        # Line 6: the candidate with the max n.lst wins; znode sequence
        # numbers break ties (lowest wins — first to announce).
        candidates = []
        for kid in kids:
            try:
                data, _version = yield from zk.get(
                    f"{root}/candidates/{kid}")
            except NoNodeError:
                continue  # candidate died (or re-announced) mid-round
            candidates.append((LSN.from_int(int(data)),
                               -_candidate_seq(kid), kid))
        if len(candidates) < majority:
            # Our snapshot went stale mid-round; back off with jitter so
            # two candidates cannot invalidate each other in lockstep.
            yield timeout(sim, cfg.election_retry
                          * node.rng_stream.uniform(0.1, 0.5))
            return None
        candidates.sort(reverse=True)
        winner = candidates[0][2]
        if winner == my_name:
            # Lines 7-9: claim leadership and take over.
            try:
                yield from zk.create(f"{root}/leader",
                                     data=node.name.encode(),
                                     ephemeral=True)
            except NodeExistsError:
                data, _ = yield from zk.get(f"{root}/leader")
                replica.set_leader(data.decode())
                return replica.leader
            yield from _bump_epoch(replica, zk, root)
            replica.set_leader(node.name)
            node.trace("election", "won election",
                       cohort=replica.cohort_id, epoch=replica.epoch)
            yield from leader_takeover(replica)
            return node.name
        # Line 11: learn the new leader (bounded wait; monitor retries).
        try:
            data, _ = yield from zk.get(f"{root}/leader")
        except NoNodeError:
            yield timeout(sim, cfg.election_retry)
            try:
                data, _ = yield from zk.get(f"{root}/leader")
            except NoNodeError:
                return None  # winner may have died; run another round
        replica.set_leader(data.decode())
        node.trace("election", "following", cohort=replica.cohort_id,
                   leader=replica.leader)
        return replica.leader
    finally:
        # This process owns the flag: the re-entrancy gate at the
        # top makes it the only setter.
        # lint: allow(write-after-yield-unguarded)
        replica.electing = False


def _bump_epoch(replica, zk, root: str):
    """Increment the cohort's epoch before accepting writes (App. B).

    The new epoch must exceed both the stored value and any epoch this
    node has locally witnessed (in its log, or via messages) — a restart
    can know a higher epoch than a coordination service that lost its
    ``epoch`` znode would otherwise hand out.
    """
    while True:
        try:
            data, version = yield from zk.get(f"{root}/epoch")
        except NoNodeError:
            try:
                yield from zk.create(f"{root}/epoch", b"0")
            except NodeExistsError:
                pass
            continue
        new_epoch = max(int(data), replica.epoch) + 1
        try:
            yield from zk.set_data(f"{root}/epoch",
                                   str(new_epoch).encode(), version=version)
        except BadVersionError:
            continue  # somebody raced us; re-read
        # Merge, don't assign: the CAS yielded, and a message handler
        # may have adopted an even higher epoch in the meantime.
        replica.epoch = max(replica.epoch, new_epoch)
        return


def assume_leadership(replica):
    """Take over after being *named* leader by a graceful transfer
    (:func:`repro.core.loadbalance.transfer_leadership`).

    Re-owns the ``leader`` znode under our own session (it belonged to
    the old leader's), bumps the epoch, and runs the standard takeover —
    which is trivial here because the old leader drained its queue, but
    re-running it keeps one code path and one safety argument.
    """
    node = replica.node
    zk = node.zk
    root = cohort_zk_path(replica.cohort_id)
    try:
        yield from zk.delete(f"{root}/leader")
    except CoordError:
        pass
    try:
        yield from zk.create(f"{root}/leader", data=node.name.encode(),
                             ephemeral=True)
    except NodeExistsError:
        # A concurrent election beat us to it; follow whoever won.
        try:
            data, _ = yield from zk.get(f"{root}/leader")
            replica.set_leader(data.decode())
        except NoNodeError:
            pass
        return
    yield from _bump_epoch(replica, zk, root)
    replica.set_leader(node.name)
    yield from leader_takeover(replica)


def leader_monitor(replica):
    """Long-running per-replica process: tracks ``leader``, reacts to its
    deletion by running an election, and (on restarts) drives follower
    catch-up once a leader is known.  Spawned by the node at (re)start."""
    from .recovery import follower_catchup  # local import: cycle with node
    node, cfg = replica.node, replica.node.config
    sim = node.sim
    root = cohort_zk_path(replica.cohort_id)
    zk = node.zk
    while node.alive and node.zk is zk:
        if node.replicas.get(replica.cohort_id) is not replica:
            return      # replica retired (or replaced) under us
        changed = Event(sim)

        def _on_change(_ev, target=changed):
            if not target.triggered:
                target.succeed()

        try:
            data, _ = yield from zk.get(f"{root}/leader",
                                        watcher=_on_change)
        except NoNodeError:
            # No leader: stop hinting clients at the dead one, then elect.
            if replica.leader != node.name:
                replica.leader = None
            result = yield from run_election(replica)
            if result is None:
                yield timeout(sim, cfg.election_retry)
            continue
        except CoordError:
            yield timeout(sim, cfg.election_retry)
            continue
        leader = data.decode()
        if leader != node.name:
            replica.set_leader(leader)
            if replica.role == Role.RECOVERING:
                ok = yield from follower_catchup(replica)
                if not ok:
                    yield timeout(sim, cfg.election_retry)
                    continue
        elif replica.role != Role.LEADER or not replica.open_for_writes:
            # We were *named* leader (graceful transfer) but have not
            # assumed the role yet: re-own the znode and take over.
            yield from assume_leadership(replica)
        # Wait for the leader znode to change or vanish.
        yield changed
