"""Online leadership rebalancing — the §10 future-work item.

All writes (and strong reads) for a cohort hit its leader (§8.3), so
leader *placement* is Spinnaker's load-balancing lever.  After failures,
leadership drifts: the node that takes over a dead peer's cohort ends up
leading two ranges while the revived peer leads none.  This module adds:

* :func:`transfer_leadership` — a graceful, zero-loss handoff protocol:
  the leader drains its commit queue with writes momentarily blocked,
  verifies the successor holds every committed write, then names the
  successor in the cohort's ``leader`` znode.  The successor re-owns the
  znode under its own session, bumps the epoch and runs the normal
  takeover (trivial: nothing is unresolved), so the safety argument is
  exactly the election's.
* :func:`plan_rebalance` — a pure planner that proposes transfers to
  even out per-node leader counts, preferring each cohort's base-range
  owner (Fig. 2 placement).

Interrupted handoffs degrade to ordinary failure handling.  If the old
leader dies mid-transfer the leader znode disappears with its session
and a regular election picks the max-n.lst survivor.  The reverse hole
— the successor dying *after* being named but *before* re-owning the
znode (which until then still belongs to the old leader's session, so
its death deletes nothing) — is closed by a watchdog on the old leader:
if the cohort epoch has not been bumped within a session timeout of the
handoff, the old leader deletes the znode it still owns, and the
ordinary election takes over.  Committed writes are never at risk: the
drain step finished before the successor was named, so every survivor
of the quorum holds them and the max-n.lst rule finds one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..coord.znode import CoordError
from ..sim.events import SimulationError
from ..sim.network import RpcTimeout
from ..sim.process import timeout
from .election import cohort_zk_path
from .recovery import push_catchup

__all__ = ["transfer_leadership", "plan_rebalance"]


def transfer_leadership(replica, successor: str):
    """Hand this cohort's leadership to ``successor``; ``yield from`` me.

    Returns True on success.  Returns False (leaving the current leader
    in place) if the replica is not an open leader, the successor is not
    a cohort peer, or the successor cannot be verified caught-up.
    """
    node, cfg = replica.node, replica.node.config
    if not replica.is_leader or not replica.open_for_writes:
        return False
    if successor not in replica.peers():
        return False
    zk = node.zk
    root = cohort_zk_path(replica.cohort_id)
    replica.block_writes()
    try:
        # 1. Drain: every accepted write must commit before we hand off.
        while len(replica.queue) > 0:
            yield timeout(node.sim, 0.002)
            if not replica.is_leader:
                return False
        # 2. Verify the successor is caught up to l.cmt; top it up if
        #    not (chunked push — same path as takeover and rebalance).
        try:
            yield from push_catchup(replica, successor)
        except (RpcTimeout, SimulationError):
            return False
        # The push yields for as long as the successor needs: we may
        # have been deposed meanwhile (session loss, rival election).
        # Naming a successor on a znode we no longer stand behind would
        # overwrite the *real* leader's claim — re-check before acting.
        if not replica.is_leader:
            return False
        # 3. Name the successor.  From here on we bounce writes with the
        #    new hint; the successor's monitor sees the change and runs
        #    the takeover path under a fresh epoch.
        try:
            yield from zk.set_data(f"{root}/leader", successor.encode())
        except CoordError:
            return False
        # Past the commit point: the znode names the successor, so
        # closing writes here is mandatory under every interleaving.
        # lint: allow(write-after-yield-unguarded)
        replica.open_for_writes = False
        epoch_at_handoff = replica.epoch
        replica.set_leader(successor)
        node.spawn(_handoff_watchdog(replica, successor, epoch_at_handoff),
                   f"handoff-watchdog-{replica.cohort_id}")
        node.trace("replication", "leadership transferred",
                   cohort=replica.cohort_id, to=successor)
        return True
    finally:
        replica.unblock_writes()


# The handoff-time epoch is deliberately a snapshot: any later bump
# means *someone* (successor or a fresh election) took over.
# lint: allow(stale-guard-across-yield)
def _handoff_watchdog(replica, successor: str, epoch_at_handoff: int):
    """Guard a graceful handoff against the successor dying mid-way.

    Until the successor re-owns the ``leader`` znode (bumping the epoch
    in the process), the znode still belongs to the *old* leader's
    session — so a successor crash deletes nothing and would leave the
    cohort leaderless forever.  Watch for the epoch bump; if it has not
    happened within a session timeout, delete the znode we still own so
    the ordinary election takes over.
    """
    node, cfg = replica.node, replica.node.config
    zk = node.zk
    root = cohort_zk_path(replica.cohort_id)
    deadline = node.sim.now + cfg.session_timeout
    while node.alive and node.zk is zk:
        try:
            data, _ = yield from zk.get(f"{root}/epoch")
            if int(data) > epoch_at_handoff:
                return          # successor assumed leadership; disarm
        except CoordError:
            pass
        if node.sim.now >= deadline:
            break
        yield timeout(node.sim, cfg.election_retry / 2)
    if not node.alive or node.zk is not zk:
        return
    try:
        data, _ = yield from zk.get(f"{root}/leader")
    except CoordError:
        return                  # already gone: an election is underway
    if data.decode() != successor:
        return                  # somebody else took over meanwhile
    node.trace("replication", "handoff watchdog: successor never "
               "assumed leadership; forcing election",
               cohort=replica.cohort_id, successor=successor)
    try:
        yield from zk.delete(f"{root}/leader")
    except CoordError:
        pass


def plan_rebalance(partitioner, leaders: Dict[int, Optional[str]],
                   max_leaders_per_node: Optional[int] = None
                   ) -> List[Tuple[int, str, str]]:
    """Plan transfers to even out leadership.

    ``leaders`` maps cohort id → current leader (None entries are
    skipped: an election is already pending there).  Returns a list of
    ``(cohort_id, from_node, to_node)`` moves.  The target ceiling
    defaults to ⌈cohorts / nodes⌉ (one, for the standard layout).
    """
    nodes = list(partitioner.nodes)
    if max_leaders_per_node is None:
        max_leaders_per_node = -(-len(partitioner.cohorts) // len(nodes))
    counts = {name: 0 for name in nodes}
    for leader in leaders.values():
        if leader is not None:
            counts[leader] += 1
    moves: List[Tuple[int, str, str]] = []
    # Prefer giving each cohort back to its base-range owner (Fig. 2).
    for cohort in partitioner.cohorts:
        leader = leaders.get(cohort.cohort_id)
        if leader is None or counts[leader] <= max_leaders_per_node:
            continue
        candidates = [m for m in cohort.members if m != leader]
        candidates.sort(key=lambda m: (counts[m],
                                       cohort.members.index(m)))
        target = candidates[0]
        if counts[target] >= max_leaders_per_node:
            continue
        moves.append((cohort.cohort_id, leader, target))
        counts[leader] -= 1
        counts[target] += 1
    return moves
