"""A Spinnaker node (§4.1, Fig. 3).

Each node hosts, for every cohort it belongs to (three, with default
placement): a storage engine (memtables + SSTables), a commit queue, and
the replication / leader-election / recovery state machines.  All cohorts
share one write-ahead log on a dedicated logging device, one CPU pool,
one network endpoint, and one coordination-service session (whose expiry
is how the rest of the cluster learns this node died).

Crash semantics: ``crash()`` kills every in-flight handler process, drops
the volatile log tail and memtables, and takes the endpoint and log
device offline.  ``restart()`` boots a fresh incarnation that runs local
recovery and rejoins its cohorts through the §6 protocols.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..coord.client import CoordClient
from ..coord.recipes import GroupMembership
from ..sim.disk import LogDevice
from ..sim.events import Simulator
from ..sim.network import Network, Request
from ..sim.process import Process, ProcessKilled, spawn
from ..sim.resources import Resource, serve
from ..sim.rng import RngRegistry
from ..storage.engine import StorageEngine
from ..storage.lsn import LSN
from ..storage.records import (CatchupMarker, CheckpointRecord,
                               CommitMarker)
from ..storage.wal import SharedLog
from .config import SpinnakerConfig
from .election import cohort_zk_path, leader_monitor
from .messages import (Ack, CatchupChunk, CatchupFinal, CatchupRequest,
                       ClientGet, ClientMultiWrite, ClientScan,
                       ClientTransaction, ClientWrite, Commit, GetCohortMap,
                       MigrationPrepare, MigrationStart, Propose,
                       TakeoverState, WhoIsLeader)
from .partition import Cohort, RangePartitioner
from .rebalance import (apply_membership_record, build_split_snapshot,
                        handle_migration_start)
from .recovery import (build_catchup_chunk, chunk_wire_size,
                       ingest_catchup, local_recovery)
from .replication import CohortReplica, Role

__all__ = ["SpinnakerNode"]


class SpinnakerNode:
    """One server in the cluster."""

    def __init__(self, sim: Simulator, network: Network, rng: RngRegistry,
                 name: str, partitioner: RangePartitioner,
                 config: SpinnakerConfig, coord_name: str = "coord",
                 tracer=None, request_tracer=None):
        from ..obs.trace import NullRequestTracer
        from ..sim.tracing import NullTracer
        self.tracer = tracer if tracer is not None else NullTracer()
        self.request_tracer = (request_tracer if request_tracer is not None
                               else NullRequestTracer())
        self.sim = sim
        self.network = network
        self.name = name
        self.partitioner = partitioner
        self.config = config
        self.coord_name = coord_name
        self.endpoint = network.endpoint(name)
        self.endpoint.on_request(self._dispatch)
        self.cpu = Resource(sim, capacity=config.cores_per_node)
        self.rng_stream = rng.stream(f"node:{name}")
        self.device = LogDevice(sim, rng, f"{name}-log",
                                profile=config.log_profile,
                                group_commit=config.group_commit)
        self.wal = SharedLog(self.device)
        self.replicas: Dict[int, CohortReplica] = {
            cohort.cohort_id: CohortReplica(self, cohort)
            for cohort in partitioner.cohorts_of_node(name)
        }
        self.zk: Optional[CoordClient] = None
        self.membership: Optional[GroupMembership] = None
        self.alive = False
        self.incarnation = 0
        self.session_losses = 0
        #: live handler processes in spawn order (dict-as-ordered-set:
        #: crash() must interrupt them deterministically, and set
        #: iteration order would vary run to run)
        self._procs: Dict[Process, None] = {}
        self._monitors: Dict[int, Process] = {}
        #: failures of handler processes that were NOT deliberate kills —
        #: tests assert this stays empty (protocol bugs surface here)
        self.failures: List[BaseException] = []
        #: ledger of catch-up chunks this node served as leader; chaos
        #: schedules assert resume behaviour (nothing re-shipped below a
        #: restarted follower's durable floor)
        self.catchup_served: deque = deque(maxlen=256)

    # ------------------------------------------------------------------
    # Process supervision
    # ------------------------------------------------------------------
    def spawn(self, gen, name: str = "") -> Process:
        """Start a handler process tracked for crash-time termination."""
        proc = spawn(self.sim, gen, name=f"{self.name}:{name}")
        self._procs[proc] = None

        def _done(ev):
            self._procs.pop(proc, None)
            if not ev._ok:
                ev.defuse()
                if not isinstance(ev._value, ProcessKilled):
                    self.failures.append(ev._value)

        proc.add_callback(_done)
        return proc

    def trace(self, category: str, message: str, **fields) -> None:
        """Emit a protocol trace event attributed to this node."""
        self.tracer.emit(category, self.name, message, **fields)

    def charge_background(self, cpu_time: float) -> None:
        """Charge asynchronous CPU work (memtable applies etc.)."""
        if cpu_time <= 0:
            return

        def _work():
            yield from serve(self.cpu, cpu_time)

        self.spawn(_work(), "bg")

    # ------------------------------------------------------------------
    # Engines & helpers
    # ------------------------------------------------------------------
    def make_engine(self, cohort_id: int) -> StorageEngine:
        return StorageEngine(
            cohort_id, flush_threshold_bytes=self.config.
            flush_threshold_bytes)

    def n_lst(self, cohort_id: int) -> LSN:
        """The node's 'last LSN' advertised in elections.  When the log
        rolled over (or the node caught up via shipped SSTables) the
        checkpoint dominates the log tail."""
        replica = self.replicas[cohort_id]
        return max(self.wal.last_lsn(cohort_id),
                   replica.engine.checkpoint_lsn)

    def replica_for_key(self, key: bytes) -> Optional[CohortReplica]:
        cohort = self.partitioner.locate(key)
        return self.replicas.get(cohort.cohort_id)

    def maybe_flush(self, replica: CohortReplica) -> None:
        """Flush the replica's memtable once it crosses the threshold;
        checkpoint durably, then roll over the covered log records."""
        engine = replica.engine
        if not engine.needs_flush() or getattr(replica, "_flushing", False):
            return
        replica._flushing = True

        def _flush():
            try:
                ckpt = engine.flush()
                if ckpt is None:
                    return
                ev = self.wal.append(CheckpointRecord(
                    lsn=ckpt, cohort_id=replica.cohort_id,
                    checkpoint_lsn=ckpt), force=True)
                if ev is not None:
                    yield ev
                if self.config.log_gc_after_flush:
                    dropped = self.wal.gc_through(replica.cohort_id, ckpt)
                else:
                    dropped = 0
                self.trace("storage", "flush",
                           cohort=replica.cohort_id,
                           checkpoint=str(ckpt), log_records_gcd=dropped)
            finally:
                replica._flushing = False

        self.spawn(_flush(), f"flush-{replica.cohort_id}")

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def on_membership_commit(self, record) -> None:
        """A membership-change record committed at one of this node's
        replicas (any observation path): switch the map, reconcile."""
        apply_membership_record(self, record)

    def create_replica(self, cohort: Cohort) -> CohortReplica:
        """Instantiate an empty replica (a joiner; catch-up fills it)."""
        replica = CohortReplica(self, cohort)
        self.replicas[cohort.cohort_id] = replica
        self._ensure_monitor(replica)
        return replica

    def create_split_replica(self, cohort: Cohort, source: CohortReplica,
                             horizon: LSN) -> CohortReplica:
        """Seed a child-cohort replica from the parent's local storage.

        Every cell at or below ``horizon`` (the membership record's LSN)
        moves over inside one filtered SSTable; the child's WAL view is
        GC'd through the horizon so its log starts strictly above the
        snapshot and catch-up for later joiners ships SSTables rather
        than a log prefix it does not have.
        """
        replica = CohortReplica(self, cohort)
        table = build_split_snapshot(source.engine, cohort,
                                     self.partitioner.key_mapper)
        if table is not None:
            replica.engine.ingest_sstable(table)
        self.wal.gc_through(cohort.cohort_id, horizon)
        # Best-effort restart hints; if lost, catch-up re-ships the
        # tables.  The catch-up marker lets a restart resume from the
        # seeded horizon instead of re-installing the snapshot.
        self.wal.append(CommitMarker(lsn=horizon,
                                     cohort_id=cohort.cohort_id,
                                     committed_lsn=horizon), force=False)
        self.wal.append(CatchupMarker(lsn=horizon,
                                      cohort_id=cohort.cohort_id,
                                      floor=horizon), force=False)
        replica.committed_lsn = horizon
        replica.epoch = horizon.epoch
        replica.next_seq = horizon.seq + 1
        replica.catchup_floor = horizon
        self.replicas[cohort.cohort_id] = replica
        self.trace("rebalance", "split replica seeded",
                   cohort=cohort.cohort_id, horizon=str(horizon),
                   rows=0 if table is None else len(table.keys()))
        self._ensure_monitor(replica)
        return replica

    def retire_replica(self, replica: CohortReplica) -> None:
        """This node lost its seat in the cohort: drop the replica and
        release any election znodes our live session still owns (they
        are ephemeral, but our session is healthy — nobody would expire
        them for us)."""
        cid = replica.cohort_id
        self.trace("rebalance", "retiring replica", cohort=cid,
                   role=replica.role)
        self.replicas.pop(cid, None)
        monitor = self._monitors.pop(cid, None)
        if monitor is not None and monitor.is_alive:
            monitor.interrupt("retired")
        candidate_path = replica.candidate_path
        replica.step_down()
        replica.role = Role.OFFLINE
        if self.alive and self.zk is not None:
            self.spawn(self._release_cohort_znodes(self.zk, cid,
                                                   candidate_path),
                       f"retire-{cid}")

    def _release_cohort_znodes(self, zk: CoordClient, cohort_id: int,
                               candidate_path: Optional[str]):
        from ..coord.znode import CoordError, NoNodeError
        from ..sim.network import RpcTimeout
        root = cohort_zk_path(cohort_id)
        if candidate_path is not None:
            try:
                yield from zk.delete(candidate_path)
            except (NoNodeError, CoordError, RpcTimeout):
                pass
        try:
            data, _ = yield from zk.get(f"{root}/leader")
        except (NoNodeError, CoordError, RpcTimeout):
            return
        if data == self.name.encode():
            try:
                yield from zk.delete(f"{root}/leader")
            except (NoNodeError, CoordError, RpcTimeout):
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Start (or restart) the node; returns immediately, recovery
        runs as a process."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        self.trace("node", "boot", incarnation=self.incarnation)
        self.endpoint.restart()
        self.device.restart()
        self.zk = CoordClient(self.sim, self.endpoint,
                              service=self.coord_name,
                              session_timeout=self.config.session_timeout)
        self.zk.on_session_loss = self._on_session_loss
        self.spawn(self._startup(), "startup")

    def _startup(self):
        zk = self.zk
        yield from zk.start()
        # The shared map may have moved while we were down: shed cohorts
        # we no longer belong to, refresh the rest, instantiate empty
        # replicas for new seats (catch-up fills them in).
        self._reconcile_replicas()
        # Local recovery (§6.1 phase 1): all cohorts share one log scan in
        # the real system; we recover them in turn, charging the same CPU.
        for cid in sorted(self.replicas):
            replica = self.replicas.get(cid)
            if replica is None:      # retired by a replayed map change
                continue
            replica.prepare_restart()
            yield from local_recovery(replica)
        # Recovery yields; a session loss meanwhile replaced self.zk and
        # spawned a rejoin that owns the membership from here on.
        if not self.alive or self.zk is not zk:
            return
        self.membership = GroupMembership(zk, "/nodes", self.name)
        yield from self.membership.join()
        self._spawn_monitors()

    def _reconcile_replicas(self) -> None:
        for cid in sorted(self.replicas):
            cohort = self.partitioner.cohort_or_none(cid)
            if cohort is None or self.name not in cohort.members:
                self.trace("rebalance", "dropping retired replica",
                           cohort=cid)
                del self.replicas[cid]
                monitor = self._monitors.pop(cid, None)
                if monitor is not None and monitor.is_alive:
                    monitor.interrupt("retired")
            else:
                self.replicas[cid].cohort = cohort
        for cohort in self.partitioner.cohorts_of_node(self.name):
            if cohort.cohort_id not in self.replicas:
                self.trace("rebalance", "adopting cohort from map",
                           cohort=cohort.cohort_id)
                self.replicas[cohort.cohort_id] = CohortReplica(self,
                                                                cohort)

    def _spawn_monitors(self) -> None:
        for cid in sorted(self.replicas):
            self._ensure_monitor(self.replicas[cid])

    def _ensure_monitor(self, replica: CohortReplica) -> None:
        """Spawn the replica's leader monitor unless one is running."""
        if not self.alive or self.zk is None:
            return
        cid = replica.cohort_id
        existing = self._monitors.get(cid)
        if existing is not None and existing.is_alive:
            return
        self._monitors[cid] = self.spawn(leader_monitor(replica),
                                         f"monitor-{cid}")

    def _on_session_loss(self, zk: CoordClient) -> None:
        """Our coordination session expired (or its lease ran out) while
        the node itself is fine — e.g. partitioned from the coordination
        service.  Ephemeral znodes are gone, so any leadership is forfeit
        *now*: step every replica down before a rival leader can serve,
        then rejoin with a fresh session (§7.2)."""
        if not self.alive or self.zk is not zk:
            return
        self.session_losses += 1
        self.trace("node", "session lost; stepping down")
        for cid in sorted(self._monitors):
            proc = self._monitors[cid]
            if proc.is_alive:
                proc.interrupt("session-loss")
        self._monitors = {}
        # lint: allow(dict-order) — replicas inserted in partitioner order
        for replica in self.replicas.values():
            replica.step_down()
        zk.stop()
        self.membership = None
        self.zk = CoordClient(self.sim, self.endpoint,
                              service=self.coord_name,
                              session_timeout=self.config.session_timeout)
        self.zk.on_session_loss = self._on_session_loss
        self.spawn(self._rejoin(self.zk), "rejoin")

    def _rejoin(self, zk: CoordClient):
        from ..coord.znode import CoordError
        from ..sim.network import RpcTimeout
        from ..sim.process import timeout as sim_timeout
        while self.alive and self.zk is zk:
            try:
                yield from zk.start(
                    rpc_timeout=self.config.session_timeout)
                # start() yields: a loss of *this* session meanwhile has
                # already spawned a successor rejoin — defer to it.
                if not self.alive or self.zk is not zk:
                    return
                self.membership = GroupMembership(zk, "/nodes", self.name)
                yield from self.membership.join()
                break
            except (RpcTimeout, CoordError):
                # Still cut off (or our old ephemerals linger until the
                # previous session expires server-side); retry.
                yield sim_timeout(self.sim, self.config.election_retry)
        if self.alive and self.zk is zk:
            self._spawn_monitors()

    def crash(self) -> None:
        """Fail-stop: lose volatile state, leave the network."""
        if not self.alive:
            return
        self.alive = False
        self.trace("node", "crash")
        for proc in list(self._procs):
            proc.interrupt("crash")
        self._procs.clear()
        self._monitors = {}
        if self.zk is not None:
            self.zk.stop()
            self.zk = None
        self.membership = None
        self.endpoint.crash()
        self.device.crash()
        self.wal.crash()
        # lint: allow(dict-order) — replicas inserted in partitioner order
        for replica in self.replicas.values():
            replica.crash()
        # Sweep any request spans still open here (replica cleanup gets
        # the leader-side write state; this catches the rest) so no
        # trace shows work continuing on a dead machine.
        self.request_tracer.truncate_node(self.name)

    def restart(self) -> None:
        self.boot()

    def lose_disk(self) -> None:
        """Media failure: wipe log and SSTables, then restart from
        nothing — recovery goes straight to catch-up (§6.1)."""
        self.crash()
        self.trace("node", "disk-loss")
        self.wal.wipe()
        for replica in self.replicas.values():
            replica.engine.wipe()
            replica.catchup_floor = LSN.zero()
        self.boot()

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, req: Request) -> None:
        payload = req.payload
        if isinstance(payload, dict) and payload.get("op") == "watch-event":
            if self.zk is not None:
                self.zk.handle_watch_message(payload)
            return
        if isinstance(payload, (ClientGet, ClientWrite, ClientMultiWrite,
                                ClientTransaction)):
            replica = self.replica_for_key(payload.key)
            if replica is None:
                req.respond({"ok": False, "code": "wrong-node",
                             "map_version": self.partitioner.version},
                            size=64)
                return
            if isinstance(payload, ClientGet):
                self.spawn(replica.handle_get(req), "get")
            elif isinstance(payload, ClientTransaction):
                self.spawn(replica.handle_client_txn(req), "txn")
            else:
                self.spawn(replica.handle_client_write(req), "write")
            return
        if isinstance(payload, GetCohortMap):
            snapshot = self.partitioner.snapshot()
            req.respond({"ok": True, "map": snapshot},
                        size=64 + 48 * len(snapshot))
            return
        if isinstance(payload, MigrationPrepare):
            self._handle_migration_prepare(req)
            return
        replica = self.replicas.get(getattr(payload, "cohort_id", -1))
        if replica is None:
            if isinstance(payload, (ClientScan, MigrationStart)):
                req.respond({"ok": False, "code": "wrong-node",
                             "map_version": self.partitioner.version},
                            size=64)
            return
        if isinstance(payload, MigrationStart):
            self.spawn(handle_migration_start(replica, req), "migration")
        elif isinstance(payload, ClientScan):
            self.spawn(replica.handle_scan(req), "scan")
        elif isinstance(payload, Propose):
            self.spawn(replica.handle_propose(req), "propose")
        elif isinstance(payload, Commit):
            replica.handle_commit(req.src, payload)
        # An Ack's LSN embeds its epoch (Appendix B), so stale-epoch
        # acks cannot advance the commit queue past discarded records.
        # lint: allow(stale-epoch)
        elif isinstance(payload, Ack):
            # One-way ack (sent during follower-driven catch-up).
            replica.queue.add_ack_upto(payload.lsn, payload.sender)
            replica._trace_acked(payload.lsn)
            replica._advance()
        elif isinstance(payload, CatchupRequest):
            self.spawn(self._handle_catchup_request(req, replica),
                       "catchup-req")
        elif isinstance(payload, CatchupFinal):
            self.spawn(self._handle_catchup_final(req, replica),
                       "catchup-final")
        elif isinstance(payload, CatchupChunk):
            # Push-driven catch-up: a leader (takeover, rebalance, or
            # handoff) ships us chunks.
            self.spawn(self._handle_takeover_catchup(req, replica),
                       "takeover-catchup")
        elif isinstance(payload, TakeoverState):
            if payload.epoch >= replica.epoch:
                replica.epoch = payload.epoch
            req.respond({"cmt": replica.committed_lsn,
                         "floor": replica.catchup_floor}, size=64)
        elif isinstance(payload, WhoIsLeader):
            req.respond({"leader": replica.leader}, size=64)

    def _handle_migration_prepare(self, req: Request) -> None:
        """Instantiate (or refresh) a replica ahead of a membership
        switch.  Idempotent: an existing replica only has its cohort
        definition refreshed.  When the shared map already includes this
        node for the cohort we trust the map over the (possibly older)
        message payload."""
        payload: MigrationPrepare = req.payload
        cid = payload.cohort.cohort_id
        current = self.partitioner.cohort_or_none(cid)
        definition = (current if current is not None
                      and self.name in current.members else payload.cohort)
        replica = self.replicas.get(cid)
        if replica is None:
            replica = self.create_replica(definition)
            if payload.base_epoch > replica.epoch:
                replica.epoch = payload.base_epoch
            self.trace("rebalance", "prepared joining replica",
                       cohort=cid, base_epoch=payload.base_epoch)
        else:
            replica.cohort = definition
        req.respond({"ok": True, "cmt": replica.committed_lsn}, size=64)

    # ------------------------------------------------------------------
    # Leader-side catch-up handlers (§6.1)
    # ------------------------------------------------------------------
    def _handle_catchup_request(self, req: Request, replica: CohortReplica):
        if not replica.is_leader:
            req.respond({"ok": False, "code": "not-leader",
                         "hint": replica.leader}, size=64)
            return
        yield from serve(self.cpu, self.config.takeover_record_service)
        if not replica.is_leader:
            req.respond({"ok": False, "code": "not-leader",
                         "hint": replica.leader}, size=64)
            return
        chunk = build_catchup_chunk(replica, req.payload)
        req.respond(chunk, size=chunk_wire_size(chunk))

    def _handle_catchup_final(self, req: Request, replica: CohortReplica):
        """Phase B: momentarily block writes so the follower ends fully
        caught up (§6.1), and hand over pending writes for acking.  Only
        the *last delta* is shipped here — a follower whose progress the
        log has rolled past is sent back to unblocked chunking."""
        if not replica.is_leader:
            req.respond({"ok": False, "code": "not-leader",
                         "hint": replica.leader}, size=64)
            return
        f_cmt = req.payload.follower_cmt
        if not self.wal.can_serve_after(replica.cohort_id, f_cmt):
            # The log rolled past the follower between phases; shipping
            # bulk snapshot state under blocked writes would stall the
            # cohort, so redirect to the chunk phase instead.
            req.respond({"ok": False, "code": "behind"}, size=48)
            return
        replica.block_writes()
        try:
            yield from serve(self.cpu, self.config.takeover_record_service)
            final_req = CatchupRequest(
                cohort_id=replica.cohort_id, follower=req.payload.follower,
                follower_cmt=f_cmt, max_bytes=1 << 62)
            chunk = build_catchup_chunk(replica, final_req)
            pending = tuple(replica.queue.pending_records())
            size = (chunk_wire_size(chunk)
                    + sum(r.encoded_size() for r in pending))
            req.respond({"reply": chunk, "pending": pending}, size=size)
        finally:
            replica.unblock_writes()

    def _handle_takeover_catchup(self, req: Request,
                                 replica: CohortReplica):
        chunk: CatchupChunk = req.payload
        if chunk.epoch < replica.epoch:
            req.respond("stale", size=32)
            return
        yield from ingest_catchup(replica, chunk)
        if replica.role in (Role.RECOVERING, Role.CANDIDATE):
            replica.role = Role.FOLLOWER
        replica.set_leader(req.src)
        req.respond({"cmt": replica.committed_lsn,
                     "floor": replica.catchup_floor}, size=64)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        roles = {cid: r.role for cid, r in self.replicas.items()}
        return f"SpinnakerNode({self.name}, alive={self.alive}, {roles})"
