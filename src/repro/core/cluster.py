"""Cluster harness: wires nodes, coordination service, and clients.

This is the deployment layer a test or benchmark interacts with: it
builds the simulator, network, coordination service, partitioner and
nodes, boots everything, and offers convenience queries (who leads cohort
3? is the cluster ready?) plus failure-injection hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..coord.service import CoordinationService
from ..sim.events import SimulationError, Simulator
from ..sim.network import LatencyModel, Network
from ..sim.rng import RngRegistry
from ..sim.tracing import NullTracer
from .api import SpinnakerClient
from .config import SpinnakerConfig
from .node import SpinnakerNode
from .partition import RangePartitioner, key_of, ordered_key_of
from .replication import Role

__all__ = ["SpinnakerCluster"]


class SpinnakerCluster:
    """A complete simulated Spinnaker deployment."""

    def __init__(self, n_nodes: int = 5,
                 config: Optional[SpinnakerConfig] = None,
                 seed: int = 0,
                 node_names: Optional[List[str]] = None,
                 latency: Optional[LatencyModel] = None,
                 topology=None, placement: str = "ring",
                 tracer=None, request_tracer=None):
        self.config = (config or SpinnakerConfig()).validate()
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        #: optional :class:`~repro.sim.topology.Topology` giving every
        #: endpoint a (dc, rack) placement; ``placement`` picks the
        #: replica-placement policy ("ring" | "spread" | "local" — see
        #: ``RangePartitioner``)
        self.topology = topology
        self.network = Network(self.sim, self.rng, latency,
                               topology=topology)
        self.coord = CoordinationService(self.sim, self.network)
        self.tracer = tracer if tracer is not None else NullTracer()
        if getattr(self.tracer, "sim", False) is None:
            self.tracer.sim = self.sim
        from ..obs.trace import NullRequestTracer
        self.request_tracer = (request_tracer if request_tracer is not None
                               else NullRequestTracer())
        self.request_tracer.bind(self.sim, self.rng)
        names = node_names or [f"node{i}" for i in range(n_nodes)]
        mapper = (ordered_key_of if self.config.order_preserving_keys
                  else key_of)
        self.partitioner = RangePartitioner(
            names, replication_factor=self.config.replication_factor,
            key_mapper=mapper, topology=topology, placement=placement)
        self.nodes: Dict[str, SpinnakerNode] = {
            name: SpinnakerNode(self.sim, self.network, self.rng, name,
                                self.partitioner, self.config,
                                tracer=self.tracer,
                                request_tracer=self.request_tracer)
            for name in names
        }
        self._clients: Dict[str, SpinnakerClient] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 60.0) -> None:
        """Boot every node and run until all cohorts have open leaders."""
        # lint: allow(dict-order) — nodes inserted as node0..nodeN-1
        for node in self.nodes.values():
            node.boot()
        self.run_until(self.is_ready, limit=ready_timeout,
                       what="cluster ready")

    def is_ready(self) -> bool:
        """True when every cohort has an open-for-writes leader."""
        return all(self.leader_of(c.cohort_id) is not None
                   for c in self.partitioner.cohorts)

    def run_until(self, predicate: Callable[[], bool], limit: float,
                  step: float = 0.05, what: str = "condition") -> None:
        """Advance simulated time until ``predicate()`` or ``limit``."""
        deadline = self.sim.now + limit
        while not predicate():
            if self.sim.now >= deadline:
                raise SimulationError(
                    f"timed out waiting for {what} at t={self.sim.now}")
            self.sim.run(until=min(self.sim.now + step, deadline))

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> SpinnakerNode:
        """Register and boot a new, cohort-less node.

        The node joins the coordination service's ``/nodes`` group and
        idles; it gains replicas when a rebalancer-driven
        :class:`~repro.core.partition.MembershipChange` naming it
        commits (see :mod:`repro.core.rebalance`)."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        self.partitioner.add_node(name)
        node = SpinnakerNode(self.sim, self.network, self.rng, name,
                             self.partitioner, self.config,
                             tracer=self.tracer,
                             request_tracer=self.request_tracer)
        self.nodes[name] = node
        node.boot()
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def leader_of(self, cohort_id: int) -> Optional[str]:
        """The name of the cohort's open leader, if any."""
        for member in self.partitioner.cohort(cohort_id).members:
            node = self.nodes[member]
            replica = node.replicas.get(cohort_id)
            if (node.alive and replica is not None
                    and replica.role == Role.LEADER
                    and replica.open_for_writes):
                return member
        return None

    def replica(self, node_name: str, cohort_id: int):
        return self.nodes[node_name].replicas[cohort_id]

    def stats(self) -> Dict[str, Dict]:
        """Operational counters per node (reads/writes served, log
        activity, queue depths) plus network totals — the numbers an
        operator dashboard would chart."""
        per_node: Dict[str, Dict] = {}
        for name, node in self.nodes.items():
            per_node[name] = {
                "alive": node.alive,
                "reads_served": sum(r.reads_served
                                    for r in node.replicas.values()),
                "writes_served": sum(r.writes_served
                                     for r in node.replicas.values()),
                "proposes_handled": sum(r.proposes_handled
                                        for r in node.replicas.values()),
                "propose_batches_sent": sum(
                    r.batcher.batches_sent
                    for r in node.replicas.values()),
                "records_batched": sum(
                    r.batcher.records_batched
                    for r in node.replicas.values()),
                "pending_writes": sum(len(r.queue)
                                      for r in node.replicas.values()),
                "leader_of": [cid for cid, r in node.replicas.items()
                              if r.role == Role.LEADER],
                "log_forces": node.device.forces_completed,
                "log_bytes": node.device.bytes_written,
                "flushes": sum(r.engine.flushes
                               for r in node.replicas.values()),
                "sstables": sum(len(r.engine.sstables)
                                for r in node.replicas.values()),
            }
        return {
            "nodes": per_node,
            "network": {
                "messages_sent": self.network.messages_sent,
                "messages_dropped": self.network.messages_dropped,
            },
        }

    def all_failures(self) -> List[BaseException]:
        """Handler-process failures across the cluster (bug detector)."""
        out: List[BaseException] = []
        for node in self.nodes.values():
            out.extend(node.failures)
        return out

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def client(self, name: str = "client0") -> SpinnakerClient:
        client = self._clients.get(name)
        if client is None:
            client = SpinnakerClient(self.sim, self.network, name,
                                     self.partitioner, self.config,
                                     self.rng,
                                     request_tracer=self.request_tracer)
            self._clients[name] = client
        return client

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_node(self, name: str) -> None:
        self.nodes[name].crash()

    def restart_node(self, name: str) -> None:
        self.nodes[name].restart()

    def expire_session_of(self, name: str) -> None:
        """Expire the node's coordination session immediately (skips the
        detection timeout — Table 1 excludes it from recovery time)."""
        node = self.nodes[name]
        session = None
        if node.zk is not None:
            session = node.zk.session
        if session is not None:
            self.coord.expire_session_now(session)

    def kill_leader(self, cohort_id: int,
                    skip_detection: bool = True) -> Optional[str]:
        """Crash the cohort's current leader; returns its name."""
        leader = self.leader_of(cohort_id)
        if leader is None:
            return None
        node = self.nodes[leader]
        session = node.zk.session if node.zk else None
        node.crash()
        if skip_detection and session is not None:
            self.coord.expire_session_now(session)
        return leader
