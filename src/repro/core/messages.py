"""Protocol messages exchanged between clients and Spinnaker nodes.

Client-facing messages (``ClientGet``/``ClientWrite``) and the replication
protocol messages of Fig. 4 (``Propose``/``Ack``/``Commit``) plus the
recovery traffic of §6 (``CatchupRequest``/``CatchupChunk``).  All are
plain frozen dataclasses; the network layer delivers object references,
so immutability matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..storage.lsn import LSN
from ..storage.records import WriteRecord
from .partition import Cohort, MembershipChange

__all__ = [
    "ClientGet", "ClientScan", "ClientWrite", "ClientMultiWrite",
    "ClientTransaction", "TxnOp",
    "Propose", "Ack", "Commit",
    "CatchupRequest", "CatchupChunk", "CatchupFinal", "TakeoverState",
    "SSTableShipment",
    "WhoIsLeader", "GetCohortMap",
    "MigrationStart", "MigrationPrepare",
]


# ---------------------------------------------------------------------------
# Client operations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClientGet:
    key: bytes
    colname: bytes
    consistent: bool          # §3: strong (True) vs timeline (False)
    #: optional causal-tracing context (see ``repro.obs``); None when the
    #: request is unsampled or tracing is off.
    trace: Optional[object] = None


@dataclass(frozen=True)
class ClientScan:
    """Ordered range read over one cohort's key range (extension; needs
    order-preserving keys).  The client splits a multi-cohort scan into
    one of these per cohort, in key order."""

    cohort_id: int
    start_key: bytes
    end_key: Optional[bytes]   # exclusive; None = end of cohort range
    limit: int
    consistent: bool
    trace: Optional[object] = None   # repro.obs TraceContext, if sampled


@dataclass(frozen=True)
class ClientWrite:
    """put / delete / conditionalPut / conditionalDelete (§3, §5.1).

    ``expected_version`` is None for unconditional writes; ``tombstone``
    selects delete.
    """

    key: bytes
    colname: bytes
    value: Optional[bytes]
    tombstone: bool = False
    expected_version: Optional[int] = None
    trace: Optional[object] = None   # repro.obs TraceContext, if sampled


@dataclass(frozen=True)
class ClientMultiWrite:
    """Multi-column variant (§3): all columns of one row, one transaction.

    ``expected_versions`` (parallel to ``columns``) is used by the
    multi-column conditional put; None entries are unconditional.
    """

    key: bytes
    columns: Tuple[Tuple[bytes, Optional[bytes]], ...]  # (col, value)
    tombstone: bool = False
    expected_versions: Optional[Tuple[Optional[int], ...]] = None
    trace: Optional[object] = None   # repro.obs TraceContext, if sampled


@dataclass(frozen=True)
class TxnOp:
    """One operation inside a multi-operation transaction (§8.2)."""

    key: bytes
    colname: bytes
    value: Optional[bytes]
    tombstone: bool = False
    expected_version: Optional[int] = None


@dataclass(frozen=True)
class ClientTransaction:
    """§8.2 extension: several writes, possibly to different rows of the
    same cohort, committed atomically.  The transaction's log records are
    forced as one batch and replicated with one propose, so recovery can
    never surface a prefix of the transaction."""

    ops: Tuple[TxnOp, ...]
    trace: Optional[object] = None   # repro.obs TraceContext, if sampled

    @property
    def key(self) -> bytes:
        """Routing key (all ops must live in the same cohort)."""
        return self.ops[0].key


@dataclass(frozen=True)
class WhoIsLeader:  # lint: allow(dead-message) — sent by external clients
    """Routing helper: ask any cohort member who it thinks leads."""

    cohort_id: int


# ---------------------------------------------------------------------------
# Replication (Fig. 4)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Propose:
    cohort_id: int
    epoch: int
    records: Tuple[WriteRecord, ...]    # group of writes (multi-op batch)
    #: commit-info piggybacking (§D.1 optimization, off by default)
    committed_lsn: Optional[LSN] = None


@dataclass(frozen=True)
class Ack:
    cohort_id: int
    epoch: int
    lsn: LSN          # highest LSN of the proposed batch, now durable
    sender: str = ""  # acking follower (acks are cumulative per sender)


@dataclass(frozen=True)
class Commit:
    """Asynchronous commit message: apply pending writes up to ``lsn``."""

    cohort_id: int
    epoch: int
    lsn: LSN


# ---------------------------------------------------------------------------
# Recovery (§6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CatchupRequest:
    """Follower → leader: one page of the chunked catch-up (§6.1).

    ``floor`` is the follower's durable catch-up floor (state at or
    below it is already installed from shipped SSTables); ``seen`` is
    the volatile paging token — the max ``max_lsn`` of tables received
    so far from the generation named by ``source``.  The leader ships
    the next chunk after ``seen`` when ``source`` matches its own
    ``(leader, manifest_id)`` generation, and otherwise restarts paging
    from ``floor`` — so a leader change or a flush/compaction under an
    in-flight catch-up never replays a stale token, and nothing below
    the durable floor is ever re-shipped.
    """

    cohort_id: int
    follower: str
    follower_cmt: LSN
    floor: LSN = LSN.zero()
    seen: LSN = LSN.zero()
    source: Optional[Tuple[str, int]] = None
    max_bytes: int = 0        # 0 = leader's configured chunk budget


@dataclass(frozen=True)
class CatchupChunk:
    """Leader → follower: one bounded page of committed state.

    ``sstables`` carries the next slice of the leader's snapshot
    manifest (ascending ``(max_lsn, min_lsn, table_id)`` order) when the
    log rolled past the follower; ``floor`` is the new **safe floor**
    the follower may durably advance to after installing them — every
    surviving cell at or below it is contained in shipped tables, even
    with overlapping compacted tables still unshipped.  ``snapshot_seen``
    is the next paging token, valid only for ``source``.

    ``valid_lsns`` lists every live LSN in (valid_after, valid_upto] in
    the leader's log: any record the follower holds in that window that
    is *not* listed was discarded by a leader change and must be
    logically truncated into the skipped-LSN list (§6.1.1).  Windowing
    the truncation per chunk keeps it sound under paging — LSNs above
    ``valid_upto`` are judged by later chunks.

    ``more`` announces further chunks; the follower keeps requesting
    until it clears.
    """

    cohort_id: int
    epoch: int
    committed_lsn: LSN
    leader_lst: LSN
    source: Tuple[str, int]
    sstables: Tuple
    snapshot_seen: LSN
    floor: LSN
    records: Tuple[WriteRecord, ...]
    valid_lsns: Tuple[LSN, ...]
    valid_after: LSN
    valid_upto: LSN
    more: bool


@dataclass(frozen=True)
class CatchupFinal:
    """Follower → leader, second catch-up phase: "I am caught up to
    ``follower_cmt``; block writes momentarily and hand me the **last
    delta only** plus your pending (uncommitted) writes" (§6.1).  The
    leader answers ``behind`` instead if its log rolled past
    ``follower_cmt``, sending the follower back to the chunk phase, so
    the write-blocked window never ships bulk state."""

    cohort_id: int
    follower: str
    follower_cmt: LSN


@dataclass(frozen=True)
class TakeoverState:
    """New leader → follower (Fig. 6, line 4): report your f.cmt."""

    cohort_id: int
    epoch: int


@dataclass(frozen=True)
class SSTableShipment:  # lint: allow(dead-message) — reserved; shipped
    # tables currently ride inside CatchupChunk.sstables (§6.1)
    cohort_id: int
    tables: Tuple


# ---------------------------------------------------------------------------
# Elastic membership (rebalance protocol)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GetCohortMap:
    """Client → any node: send me your current routing snapshot.  Sent
    after a ``wrong-node`` reply whose ``map_version`` outruns the
    client's snapshot."""


@dataclass(frozen=True)
class MigrationStart:
    """Rebalancer → source-cohort leader: execute one
    :class:`~repro.core.partition.MembershipChange`.  Idempotent — the
    leader skips the Paxos round when the change's version has already
    been applied and only re-runs the side effects (prepare + publish)."""

    cohort_id: int
    change: MembershipChange


@dataclass(frozen=True)
class MigrationPrepare:
    """Migration leader → joining node: instantiate a replica for
    ``cohort`` ahead of the membership switch, so the joiner can follow
    the cohort's elections and catch up through the ordinary §6
    machinery.  ``base_epoch`` floors the new replica's epoch at the
    source cohort's, keeping every post-switch LSN above the shipped
    snapshot (Appendix B ordering)."""

    cohort: Cohort
    base_epoch: int
    map_version: int
