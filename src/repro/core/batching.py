"""Leader-side proposal batching: amortize per-message write costs.

Spinnaker's Fig. 4 write path pays, for every client write, one leader
log force, one ``Propose`` round-trip per follower, and one follower CPU
slice.  The log device already amortizes forces (group commit), so at
high load the throughput knee is set by the per-*message* overheads.
The :class:`ProposalBatcher` closes that gap on the propose path:
record groups from independent client writes are coalesced into a
single multi-record ``Propose`` — one batched WAL force
(``SharedLog.append_batch``, all-or-nothing) and one cumulative ack per
peer (``CommitQueue.add_ack_upto`` already treats an ack for a batch's
top LSN as covering every earlier pending write, which is sound because
proposes travel over in-order channels).

Batching must not tax an idle cohort, so the batcher is *adaptive*:

* a group flushes **immediately** while the pipeline is uncongested —
  even with a force in flight, an independent force+propose overlaps
  it and the log device's own group commit absorbs slow media, so the
  low- and mid-load latency profiles are untouched;
* under queuing pressure (several older writes still waiting in the
  commit queue ahead of the buffer), arriving groups coalesce: they
  ride out an in-flight batched force and flush when it completes, or
  — with no force outstanding — a bounded window
  ``propose_batch_window`` opens so company can accumulate.  Commits
  are strictly LSN-ordered, so waiting behind an already-congested
  queue adds little client-visible latency; the window closes early
  (``on_progress``) if the congestion drains first.

Groups submitted together (multi-operation transactions, §8.2) are
indivisible: they always share one force and one propose, preserving
the no-partial-persistence guarantee even when batches are repacked.

Buffer state machine (per leader replica)
-----------------------------------------
::

    EMPTY --submit--> BUFFERED --immediate/limit flush--> EMPTY
    BUFFERED --pressure & force in flight--> RIDING (flush when the
             in-flight force's callback fires)
    BUFFERED --pressure & no force in flight--> WINDOW(timer)
    WINDOW --timer expiry | on_progress drain | limit--> flush -> EMPTY
    any state --clear() on crash/step-down--> EMPTY (generation += 1)

Invariants
----------
- Groups submitted together are indivisible: ``chunk_groups`` never
  splits one, so a multi-operation transaction (§8.2) always shares one
  force and one propose — no partial persistence.
- Buffered records are already in the commit queue but never logged or
  proposed; ``clear()`` drops them from the queue so a later commit
  message cannot commit a phantom.
- ``_inflight_forces`` counts only forces issued by the current
  generation: the generation guard makes a stale force callback (from
  before a crash or step-down) a no-op, so it can neither corrupt the
  accounting nor flush the next incarnation's buffer.
- Batches are LSN-contiguous (submission order is LSN order and order
  is preserved), so a single cumulative ack covers a whole batch.

Failure cases: leadership lost with a window pending → the timer is
cancelled and the buffer dropped; leadership lost with a force in
flight → the force completes against a bumped generation and is
ignored; a flush discovering the replica is no longer leader clears
instead of sending.

Tracing: ``_send`` gives every traced member group a ``log_force`` span
over the shared batched force (see ``OBSERVABILITY.md`` on reading
shared-force spans).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..storage.records import WriteRecord

__all__ = ["ProposalBatcher", "chunk_groups"]


def chunk_groups(groups: Sequence[Sequence[WriteRecord]],
                 max_records: int,
                 max_bytes: int) -> List[List[WriteRecord]]:
    """Pack indivisible record groups into batches within the limits.

    Groups are never split: a single group larger than either limit
    still forms its own (oversized) batch.  Order is preserved, so
    batches stay LSN-contiguous.
    """
    batches: List[List[WriteRecord]] = []
    cur: List[WriteRecord] = []
    cur_bytes = 0
    for group in groups:
        nbytes = sum(r.encoded_size() for r in group)
        if cur and (len(cur) + len(group) > max_records
                    or cur_bytes + nbytes > max_bytes):
            batches.append(cur)
            cur, cur_bytes = [], 0
        cur.extend(group)
        cur_bytes += nbytes
    if cur:
        batches.append(cur)
    return batches


class ProposalBatcher:
    """Coalesces one leader replica's outgoing record groups."""

    __slots__ = ("replica", "_groups", "_buffered_records",
                 "_buffered_bytes", "_inflight_forces", "_window", "_gen",
                 "batches_sent", "records_batched", "max_batch_records",
                 "windows_opened")

    #: commit-queue entries older than the buffer head that count as
    #: congestion; below this the pipelined fast path is kept (a write
    #: may still overlap its immediate predecessors in flight)
    PRESSURE_DEPTH = 2

    def __init__(self, replica):
        self.replica = replica
        self._groups: List[Tuple[WriteRecord, ...]] = []
        self._buffered_records = 0
        self._buffered_bytes = 0
        self._inflight_forces = 0
        #: pending batch-window timer (a Simulator.schedule handle)
        self._window: Optional[list] = None
        self._gen = 0
        # counters (surfaced in cluster stats / benchmarks)
        self.batches_sent = 0
        self.records_batched = 0
        self.max_batch_records = 0
        self.windows_opened = 0

    # ------------------------------------------------------------------
    def submit(self, records: Sequence[WriteRecord]) -> None:
        """Queue one indivisible record group for batched replication.

        The records are already in the commit queue; the batcher owns
        their WAL force and propose fan-out from here.
        """
        cfg = self.replica.node.config
        self._groups.append(tuple(records))
        self._buffered_records += len(records)
        self._buffered_bytes += sum(r.encoded_size() for r in records)
        if (self._buffered_records >= cfg.propose_batch_max_records
                or self._buffered_bytes >= cfg.propose_batch_max_bytes):
            self._flush()
        elif cfg.propose_batch_adaptive and not self._under_pressure():
            # Uncongested pipeline: never delay a write — even with a
            # force in flight, an independent force+propose overlaps it
            # (the log device's own group commit absorbs slow media).
            self._flush()
        elif self._inflight_forces > 0:
            # Congested and a batched force is already in flight: ride
            # it out; its completion callback flushes us (group commit
            # at the propose level).
            pass
        else:
            self._open_window()

    def on_progress(self) -> None:
        """Commit queue advanced: flush early once the congestion that
        opened the window has drained (adaptive mode only)."""
        if (self._window is None or not self._groups
                or self._inflight_forces > 0):
            return
        cfg = self.replica.node.config
        if cfg.propose_batch_adaptive and not self._under_pressure():
            self._flush()

    def clear(self) -> None:
        """Leadership lost (crash or step-down): buffered records were
        never logged nor proposed — drop them from the commit queue so a
        later commit message cannot commit a phantom."""
        self._gen += 1
        self._inflight_forces = 0
        self._cancel_window()
        groups, self._groups = self._groups, []
        self._buffered_records = self._buffered_bytes = 0
        for group in groups:
            for record in group:
                self.replica.queue.drop(record.lsn)

    # ------------------------------------------------------------------
    def _under_pressure(self) -> bool:
        head = self._groups[0][0].lsn
        depth = self.replica.queue.pending_older_than(
            head, limit=self.PRESSURE_DEPTH)
        return depth >= self.PRESSURE_DEPTH

    def _open_window(self) -> None:
        if self._window is not None:
            return
        replica = self.replica
        self.windows_opened += 1
        self._window = replica.node.sim.schedule(
            replica.node.config.propose_batch_window, self._window_expired)

    def _window_expired(self) -> None:
        self._window = None
        if self._groups:
            self._flush()

    def _cancel_window(self) -> None:
        if self._window is not None:
            self.replica.node.sim.cancel(self._window)
            self._window = None

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        self._cancel_window()
        replica = self.replica
        node, cfg = replica.node, replica.node.config
        if not replica.is_leader or not node.alive:
            self.clear()
            return
        groups, self._groups = self._groups, []
        self._buffered_records = self._buffered_bytes = 0
        for batch in chunk_groups(groups, cfg.propose_batch_max_records,
                                  cfg.propose_batch_max_bytes):
            self._send(batch)

    def _send(self, batch: List[WriteRecord]) -> None:
        replica = self.replica
        node = replica.node
        lsns = [record.lsn for record in batch]
        if replica._traces:
            # Every traced member group gets its own ``log_force`` span
            # over the shared batched force: identical [start, end] per
            # member, exactly one span per trace — each request sees the
            # full force it waited on, and per-trace sums never count a
            # force twice.
            tracer = node.request_tracer
            shared = sum(1 for lsn in lsns if lsn in replica._traces)
            for lsn in lsns:
                state = replica._traces.get(lsn)
                if state is not None and state.force_span is None:
                    state.force_span = tracer.start(
                        state.ctx, "log_force", node.name,
                        batch_records=len(batch), traced_members=shared)
        force_ev = node.wal.append_batch(batch)
        self._inflight_forces += 1
        gen = self._gen

        def _forced(_ev) -> None:
            if gen != self._gen:
                return      # a crash/step-down reset the pipeline
            self._inflight_forces -= 1
            for lsn in lsns:
                replica._trace_force_done(lsn)
            for lsn in lsns:
                replica.queue.mark_forced(lsn)
            replica._advance()
            if self._groups and self._window is None:
                self._flush()

        force_ev.add_callback(_forced)
        replica.send_propose(batch)
        self.batches_sent += 1
        self.records_batched += len(batch)
        if len(batch) > self.max_batch_records:
            self.max_batch_records = len(batch)
