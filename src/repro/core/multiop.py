"""Multi-operation transactions — the §8.2 future-work extension.

"The basic idea would be to let a transaction create multiple log
records, but only invoke the replication protocol for a batch of log
records at commit time."  This module implements exactly that for
transactions scoped to a single cohort (the natural unit in a sharded
store): buffered writes, atomically forced as one log batch, replicated
with one propose, committed contiguously by the commit queue.

Usage::

    txn = Transaction(client)
    txn.put(b"account:1", b"balance", b"90")
    txn.put(b"account:2", b"balance", b"110")
    result = yield from txn.commit()

Atomicity guarantees:

* the leader forces all the transaction's log records in one device
  operation (``SharedLog.append_batch``), so a crash can never persist a
  prefix;
* followers do the same on the propose path;
* the commit queue commits in LSN order, and a batch becomes ready as a
  unit, so readers never observe a partially applied transaction at any
  replica.

Known limitation (shared with the paper's sketch): a leader failure in
the middle of takeover re-proposals resolves records one at a time, so a
transaction interrupted *there* could commit partially if a second
failure hits mid-batch; a redo/undo pass (§8.2) would close that window.
"""

from __future__ import annotations

from typing import List, Optional

from .api import SpinnakerClient
from .datamodel import DatastoreError
from .messages import ClientTransaction, TxnOp

__all__ = ["Transaction"]


class Transaction:
    """Buffers writes for a single-cohort, multi-row atomic commit."""

    def __init__(self, client: SpinnakerClient):
        self.client = client
        self._ops: List[TxnOp] = []
        self._cohort_id: Optional[int] = None
        self.committed = False

    # ------------------------------------------------------------------
    def _check_cohort(self, key: bytes) -> None:
        cohort = self.client.partitioner.locate(key)
        if self._cohort_id is None:
            self._cohort_id = cohort.cohort_id
        elif cohort.cohort_id != self._cohort_id:
            raise DatastoreError(
                f"cross-cohort transaction: key {key!r} lives in cohort "
                f"{cohort.cohort_id}, transaction started in "
                f"{self._cohort_id}")

    def _add(self, op: TxnOp) -> "Transaction":
        if self.committed:
            raise DatastoreError("transaction already committed")
        self._check_cohort(op.key)
        self._ops.append(op)
        return self

    # ------------------------------------------------------------------
    def put(self, key: bytes, colname: bytes,
            value: bytes) -> "Transaction":
        return self._add(TxnOp(key=key, colname=colname, value=value))

    def delete(self, key: bytes, colname: bytes) -> "Transaction":
        return self._add(TxnOp(key=key, colname=colname, value=None,
                               tombstone=True))

    def conditional_put(self, key: bytes, colname: bytes, value: bytes,
                        version: int) -> "Transaction":
        return self._add(TxnOp(key=key, colname=colname, value=value,
                               expected_version=version))

    # ------------------------------------------------------------------
    def commit(self):
        """``yield from`` me: atomically commit every buffered op."""
        if self.committed:
            raise DatastoreError("transaction already committed")
        if not self._ops:
            raise DatastoreError("empty transaction")
        msg = ClientTransaction(ops=tuple(self._ops))
        size = 96 + sum((len(op.value) if op.value else 0) + 32
                        for op in self._ops)
        result = yield from self.client._write(msg.key, msg, size)
        self.committed = True
        return result

    def __len__(self) -> int:
        return len(self._ops)
