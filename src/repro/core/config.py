"""Tunable parameters for a Spinnaker deployment.

The service-time constants are the calibration knobs that map the
simulated cluster onto the paper's testbed (Appendix C: two quad-core
2.1 GHz AMD nodes, 1 GbE, dedicated SATA logging disk, Java codebase).
They are deliberately centralized: every benchmark states which config it
ran, and the ablation benches flip individual flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.disk import DiskProfile

__all__ = ["SpinnakerConfig"]


@dataclass
class SpinnakerConfig:
    """All knobs for nodes, the protocol, and the hardware model."""

    # -- replication (§4, §5) -------------------------------------------
    replication_factor: int = 3
    #: leader commits after its own force plus this many follower acks
    acks_needed: int = 1
    #: interval between asynchronous commit messages (§5; Table 1 sweeps it)
    commit_period: float = 1.0
    #: piggyback commit info on propose messages (§D.1 optimization)
    piggyback_commits: bool = False
    #: Fig. 4's key overlap: the leader proposes in parallel with its own
    #: log force.  False serializes them (ablation bench).
    parallel_force_and_propose: bool = True

    # -- proposal batching (leader write pipeline; see core/batching.py) --
    #: coalesce independent client writes into multi-record proposes
    #: with one batched WAL force and one cumulative ack per peer
    propose_batching: bool = True
    #: flush a batch once it holds this many records ...
    propose_batch_max_records: int = 8
    #: ... or this many encoded bytes
    propose_batch_max_bytes: int = 64 * 1024
    #: longest the leader may hold a write back waiting for company
    propose_batch_window: float = 1.0e-3
    #: open the window only under queuing pressure (older writes still
    #: awaiting commit), so an idle cohort never pays it; False waits
    #: out the window unconditionally (fixed-delay ablation)
    propose_batch_adaptive: bool = True
    #: follower CPU cost per *extra* record in a batched propose (the
    #: first record pays the full ``write_follower_service``)
    propose_record_service: float = 0.03e-3

    # -- hardware model ----------------------------------------------------
    cores_per_node: int = 8
    log_profile: DiskProfile = field(default_factory=DiskProfile.sata_log)
    group_commit: bool = True

    # -- CPU service times (calibration; see DESIGN.md) -------------------
    #: per-read CPU+network-stack cost at the serving replica
    read_service: float = 1.8e-3
    #: extra cost of a strongly consistent read at the leader
    #: (leadership check + commit-queue consultation)
    strong_read_overhead: float = 0.3e-3
    #: leader-side cost to marshal a write + run the protocol
    write_leader_service: float = 0.45e-3
    #: follower-side cost to process a propose
    write_follower_service: float = 0.3e-3
    #: extra leader cost of a conditional put's read + version compare
    conditional_check_service: float = 0.9e-3
    #: applying one committed record to the memtable
    commit_apply_service: float = 20e-6
    #: replaying one record during local recovery
    recovery_replay_service: float = 15e-6
    #: leader-side cost to process a catch-up / re-propose round
    takeover_record_service: float = 1.4e-3
    #: per-row cost of an ordered range scan
    scan_row_service: float = 40e-6

    # -- data model ----------------------------------------------------
    #: map row keys to the keyspace preserving byte order (enables range
    #: scans; hashing spreads load better and is the default)
    order_preserving_keys: bool = False

    # -- storage ----------------------------------------------------------
    flush_threshold_bytes: int = 64 * 1024 * 1024
    #: roll over (GC) log records this many bytes after they are
    #: captured in SSTables; 0 disables automatic rollover
    log_gc_after_flush: bool = True

    # -- coordination (§4.2, §7) --------------------------------------------
    session_timeout: float = 2.0
    election_retry: float = 0.5
    catchup_rpc_timeout: float = 5.0
    takeover_state_timeout: float = 1.0

    # -- chunked catch-up (§6.1; see PROTOCOL.md) -----------------------
    #: soft byte budget per CatchupChunk (records + shipped SSTables);
    #: at least one record or table is always shipped to guarantee
    #: progress even when a single item exceeds the budget
    catchup_chunk_bytes: int = 256 * 1024
    #: per-chunk RPC timeout (replaces the one-shot catchup_rpc_timeout
    #: on the chunked path; the final write-blocked delta still uses
    #: catchup_rpc_timeout)
    catchup_chunk_timeout: float = 2.0
    #: retries per chunk before the catch-up attempt is abandoned and
    #: the caller's outer retry loop (leader_monitor / rebalance) kicks in
    catchup_chunk_retries: int = 3
    #: base backoff between chunk retries (doubles per attempt)
    catchup_retry_backoff: float = 0.1

    # -- client ---------------------------------------------------------
    client_op_timeout: float = 10.0
    client_max_retries: int = 8
    #: base retry backoff; after a few base-pace attempts, retry *k*
    #: waits a jittered exponential ``~backoff * 2**(k-4)`` capped by
    #: ``client_retry_backoff_cap`` (and by the remaining op deadline) —
    #: jitter de-synchronizes the retry herd that forms when a
    #: partition heals (see SpinnakerClient._backoff)
    client_retry_backoff: float = 0.02
    #: ceiling on the exponential step — low enough that a client
    #: sleeping through a brief outage (a leaderless migration window,
    #: a healed partition) notices recovery promptly
    client_retry_backoff_cap: float = 0.1
    #: per-try RPC timeout floor; the effective budget is
    #: ``max(floor, client_rtt_multiplier * network.rtt_bound())`` so
    #: WAN-scale round trips never read as spurious RpcTimeouts
    client_try_timeout: float = 2.0
    #: map-refresh (GetCohortMap) RPC timeout floor, scaled the same way
    client_map_timeout: float = 1.0
    #: how many worst-case round trips one try is allowed to take
    #: (covers queueing at a loaded leader on top of the wire time)
    client_rtt_multiplier: float = 4.0

    def validate(self) -> "SpinnakerConfig":
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if not 0 < self.acks_needed < self.replication_factor + 1:
            raise ValueError("acks_needed out of range")
        if self.commit_period <= 0:
            raise ValueError("commit_period must be positive")
        if self.propose_batch_max_records < 1:
            raise ValueError("propose_batch_max_records must be >= 1")
        if self.propose_batch_max_bytes < 1:
            raise ValueError("propose_batch_max_bytes must be >= 1")
        if self.propose_batch_window <= 0:
            raise ValueError("propose_batch_window must be positive")
        if self.catchup_chunk_bytes < 1:
            raise ValueError("catchup_chunk_bytes must be >= 1")
        if self.catchup_chunk_timeout <= 0:
            raise ValueError("catchup_chunk_timeout must be positive")
        if self.catchup_chunk_retries < 0:
            raise ValueError("catchup_chunk_retries must be >= 0")
        if self.catchup_retry_backoff < 0:
            raise ValueError("catchup_retry_backoff must be >= 0")
        if self.client_retry_backoff <= 0:
            raise ValueError("client_retry_backoff must be positive")
        if not (self.client_retry_backoff <= self.client_retry_backoff_cap
                <= self.client_op_timeout):
            raise ValueError("need client_retry_backoff <= "
                             "client_retry_backoff_cap <= "
                             "client_op_timeout")
        if self.client_try_timeout <= 0 or self.client_map_timeout <= 0:
            raise ValueError("client timeout floors must be positive")
        if self.client_rtt_multiplier < 1:
            raise ValueError("client_rtt_multiplier must be >= 1")
        return self

    @property
    def majority(self) -> int:
        return self.replication_factor // 2 + 1
