"""Key-based range partitioning and cohort placement (§4).

Like Bigtable and PNUTS, Spinnaker distributes the rows of a table across
the cluster using range partitioning.  Each node is assigned a *base key
range*, which is replicated on the next N-1 nodes (N = 3 by default) —
chained declustering [16].  The group of nodes replicating one key range
is a **cohort**; cohorts overlap: with nodes A..E, A-B-C serve A's base
range, B-C-D serve B's, and so on.

Keys here are unsigned integers hashed/encoded by the client API layer
from row keys; the keyspace defaults to ``[0, 2**32)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["KeyRange", "Cohort", "RangePartitioner", "key_of"]

KEYSPACE = 1 << 32


def key_of(row_key: bytes) -> int:
    """Map an opaque row key to the integer keyspace (order-oblivious).

    Real Spinnaker range-partitions the raw key order; hashing here keeps
    the benchmark workloads uniformly spread without a key sampler, while
    ``RangePartitioner`` still sees proper ranges.  Use
    :func:`ordered_key_of` (``SpinnakerConfig.order_preserving_keys``)
    when range scans matter more than automatic spread.
    """
    digest = hashlib.sha256(row_key).digest()
    return int.from_bytes(digest[:4], "big")


def ordered_key_of(row_key: bytes) -> int:
    """Order-preserving key mapping: the row key's first four bytes,
    big-endian.  Byte-lexicographic key order then agrees with keyspace
    order at 4-byte-prefix granularity, so a scan visits cohorts in key
    order (rows sharing a 4-byte prefix always land in one cohort)."""
    return int.from_bytes(row_key[:4].ljust(4, b"\x00"), "big")


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval [lo, hi)."""

    lo: int
    hi: int

    def contains(self, key: int) -> bool:
        return self.lo <= key < self.hi

    def __str__(self) -> str:
        return f"[{self.lo},{self.hi})"


@dataclass(frozen=True)
class Cohort:
    """One replicated key range: id, range, and its member nodes.

    ``members[0]`` is the node whose *base* range this is — the bootstrap
    leader preference, not a protocol invariant (leadership moves on
    failures).
    """

    cohort_id: int
    key_range: KeyRange
    members: Tuple[str, ...]


class RangePartitioner:
    """Builds and answers questions about the cluster's cohort layout.

    ``key_mapper`` converts row keys (bytes) to keyspace integers:
    :func:`key_of` (hashing; default) spreads any workload uniformly,
    :func:`ordered_key_of` preserves key order and enables range scans.
    """

    def __init__(self, nodes: Sequence[str], replication_factor: int = 3,
                 keyspace: int = KEYSPACE, key_mapper=key_of):
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if len(nodes) < replication_factor:
            raise ValueError(
                f"need at least {replication_factor} nodes, "
                f"got {len(nodes)}")
        self.nodes = list(nodes)
        self.replication_factor = replication_factor
        self.keyspace = keyspace
        self.key_mapper = key_mapper
        self.order_preserving = key_mapper is ordered_key_of
        self.cohorts: List[Cohort] = []
        n = len(self.nodes)
        step, remainder = divmod(keyspace, n)
        lo = 0
        for i, _node in enumerate(self.nodes):
            hi = lo + step + (1 if i < remainder else 0)
            members = tuple(self.nodes[(i + j) % n]
                            for j in range(replication_factor))
            self.cohorts.append(Cohort(i, KeyRange(lo, hi), members))
            lo = hi
        self._by_node: Dict[str, List[Cohort]] = {}
        for cohort in self.cohorts:
            for member in cohort.members:
                self._by_node.setdefault(member, []).append(cohort)

    # ------------------------------------------------------------------
    def locate(self, row_key: bytes) -> Cohort:
        """The cohort responsible for a row key (via the key mapper)."""
        return self.cohort_for_key(self.key_mapper(row_key))

    def cohorts_for_range(self, start_key: bytes,
                          end_key: bytes) -> List[Cohort]:
        """Cohorts intersecting [start_key, end_key), in key order.

        Requires an order-preserving key mapper.
        """
        if not self.order_preserving:
            raise ValueError("range queries need ordered_key_of; "
                             "construct the partitioner (or cluster) "
                             "with order-preserving keys")
        lo = self.key_mapper(start_key)
        hi = self.key_mapper(end_key) if end_key else self.keyspace - 1
        first = self.cohort_for_key(lo).cohort_id
        last = self.cohort_for_key(min(hi, self.keyspace - 1)).cohort_id
        return [self.cohorts[i] for i in range(first, last + 1)]

    def cohort_for_key(self, key: int) -> Cohort:
        if not 0 <= key < self.keyspace:
            raise ValueError(f"key {key} outside keyspace")
        # Ranges are near-uniform; locate by division then adjust.
        idx = min(int(key * len(self.cohorts) / self.keyspace),
                  len(self.cohorts) - 1)
        while not self.cohorts[idx].key_range.contains(key):
            idx += 1 if key >= self.cohorts[idx].key_range.hi else -1
        return self.cohorts[idx]

    def cohort(self, cohort_id: int) -> Cohort:
        return self.cohorts[cohort_id]

    def cohorts_of_node(self, node: str) -> List[Cohort]:
        """The cohorts this node participates in (3 with N=3)."""
        return list(self._by_node.get(node, []))

    def peers_of(self, node: str, cohort_id: int) -> List[str]:
        return [m for m in self.cohorts[cohort_id].members if m != node]

    def __len__(self) -> int:
        return len(self.cohorts)
