"""Key-based range partitioning and cohort placement (§4).

Like Bigtable and PNUTS, Spinnaker distributes the rows of a table across
the cluster using range partitioning.  Each node is assigned a *base key
range*, which is replicated on the next N-1 nodes (N = 3 by default) —
chained declustering [16].  The group of nodes replicating one key range
is a **cohort**; cohorts overlap: with nodes A..E, A-B-C serve A's base
range, B-C-D serve B's, and so on.

Keys here are unsigned integers hashed/encoded by the client API layer
from row keys; the keyspace defaults to ``[0, 2**32)``.

Elastic membership: the layout is *versioned* and mutable.  The paper
defers "adding nodes" to future work (§10); here a
:class:`MembershipChange` — committed by the affected cohort as an
ordinary log record (see :mod:`repro.core.rebalance`) — splits a cohort
or replaces its member set, bumping :attr:`RangePartitioner.version`.
Clients route off an immutable :class:`CohortMap` snapshot and refresh
it when a node answers ``wrong-node`` with a newer ``map_version``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["KeyRange", "Cohort", "CohortMap", "MembershipChange",
           "RangePartitioner", "key_of", "preference_order",
           "MEMBERSHIP_KEY", "INTERNAL_KEY_PREFIX"]

KEYSPACE = 1 << 32

#: Keys under this prefix are internal bookkeeping rows: scans skip
#: them and split snapshots do not carry them.
INTERNAL_KEY_PREFIX = b"\x00spinnaker/"
#: Row key of membership-change log records.
MEMBERSHIP_KEY = INTERNAL_KEY_PREFIX + b"membership"


def key_of(row_key: bytes) -> int:
    """Map an opaque row key to the integer keyspace (order-oblivious).

    Real Spinnaker range-partitions the raw key order; hashing here keeps
    the benchmark workloads uniformly spread without a key sampler, while
    ``RangePartitioner`` still sees proper ranges.  Use
    :func:`ordered_key_of` (``SpinnakerConfig.order_preserving_keys``)
    when range scans matter more than automatic spread.
    """
    digest = hashlib.sha256(row_key).digest()
    return int.from_bytes(digest[:4], "big")


def ordered_key_of(row_key: bytes) -> int:
    """Order-preserving key mapping: the row key's first four bytes,
    big-endian.  Byte-lexicographic key order then agrees with keyspace
    order at 4-byte-prefix granularity, so a scan visits cohorts in key
    order (rows sharing a 4-byte prefix always land in one cohort)."""
    return int.from_bytes(row_key[:4].ljust(4, b"\x00"), "big")


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval [lo, hi)."""

    lo: int
    hi: int

    def contains(self, key: int) -> bool:
        return self.lo <= key < self.hi

    def __str__(self) -> str:
        return f"[{self.lo},{self.hi})"


@dataclass(frozen=True)
class Cohort:
    """One replicated key range: id, range, and its member nodes.

    ``members[0]`` is the node whose *base* range this is — the bootstrap
    leader preference, not a protocol invariant (leadership moves on
    failures).
    """

    cohort_id: int
    key_range: KeyRange
    members: Tuple[str, ...]


@dataclass(frozen=True)
class MembershipChange:
    """One elastic-membership step, committed as a cohort log record.

    ``version`` is the cohort-map version this change produces; a change
    applies only against version - 1, which makes replay and duplicate
    commits idempotent.  Two kinds:

    * ``split`` — cohort ``cohort_id`` keeps ``[lo, split_key)``; a new
      cohort ``new_cohort_id`` takes ``[split_key, hi)`` with members
      ``new_members`` (two of which must be members of the source cohort,
      so they can seed the new replica from local data).
    * ``replace`` — cohort ``cohort_id``'s member set becomes
      ``new_members`` (same key range).
    """

    version: int
    kind: str                       # "split" | "replace"
    cohort_id: int
    new_members: Tuple[str, ...]
    split_key: Optional[int] = None
    new_cohort_id: Optional[int] = None
    #: pre-change member set (replace only): lets retries re-notify the
    #: retired member, which the post-switch commit broadcast skips
    old_members: Tuple[str, ...] = ()

    def encode(self) -> bytes:
        return json.dumps({
            "version": self.version, "kind": self.kind,
            "cohort_id": self.cohort_id,
            "new_members": list(self.new_members),
            "split_key": self.split_key,
            "new_cohort_id": self.new_cohort_id,
            "old_members": list(self.old_members),
        }, sort_keys=True).encode()

    @staticmethod
    def decode(data: bytes) -> "MembershipChange":
        obj = json.loads(data.decode())
        return MembershipChange(
            version=obj["version"], kind=obj["kind"],
            cohort_id=obj["cohort_id"],
            new_members=tuple(obj["new_members"]),
            split_key=obj.get("split_key"),
            new_cohort_id=obj.get("new_cohort_id"),
            old_members=tuple(obj.get("old_members", ())))


def preference_order(members: Sequence[str], topology) -> Tuple[str, ...]:
    """Leader-preference order for a cohort's members.

    With a placed topology that names a ``preferred_dc`` (the
    datacenter hosting the client majority), replicas in that DC come
    first — the election's announce stagger follows this order, so at
    bootstrap (when every candidate ties on n.lst) leadership lands
    next to the clients and strong writes start from the cheap side of
    the WAN.  Ties keep member order; without a topology this is the
    member tuple unchanged (bit-identical flat behavior).  Pure timing
    bias: whenever logs differ, the max-n.lst rule dominates.
    """
    if topology is None or topology.preferred_dc is None:
        return tuple(members)
    preferred = topology.preferred_dc
    return tuple(sorted(members,
                        key=lambda m: topology.dc_of(m) != preferred))


def _index_for_key(cohorts: Sequence[Cohort], keyspace: int,
                   key: int) -> int:
    """Index (position, not id) of the cohort containing ``key``.

    Ranges are near-uniform at bootstrap; locate by division then walk.
    Splits only make the walk a little longer.
    """
    if not 0 <= key < keyspace:
        raise ValueError(f"key {key} outside keyspace")
    idx = min(int(key * len(cohorts) / keyspace), len(cohorts) - 1)
    while not cohorts[idx].key_range.contains(key):
        idx += 1 if key >= cohorts[idx].key_range.hi else -1
    return idx


class CohortMap:
    """An immutable, versioned snapshot of the cohort layout.

    This is what clients route off: cheap to hand out, safe to keep
    using after the live layout moves on (stale routing is corrected by
    ``wrong-node`` replies carrying the server's ``map_version``).
    ``leader_hints`` seeds cold leader caches with the last leader the
    layout layer heard about per cohort — a hint, never a guarantee.
    """

    def __init__(self, version: int, cohorts: Sequence[Cohort],
                 keyspace: int, key_mapper,
                 leader_hints: Optional[Dict[int, str]] = None):
        self.version = version
        self.cohorts: List[Cohort] = list(cohorts)   # sorted by range.lo
        self.keyspace = keyspace
        self.key_mapper = key_mapper
        self.order_preserving = key_mapper is ordered_key_of
        self.leader_hints: Dict[int, str] = dict(leader_hints or {})
        self._by_id: Dict[int, Cohort] = {
            c.cohort_id: c for c in self.cohorts}

    # -- lookups -------------------------------------------------------
    def locate(self, row_key: bytes) -> Cohort:
        """The cohort responsible for a row key (via the key mapper)."""
        return self.cohort_for_key(self.key_mapper(row_key))

    def cohort_for_key(self, key: int) -> Cohort:
        return self.cohorts[_index_for_key(self.cohorts, self.keyspace,
                                           key)]

    def cohorts_for_range(self, start_key: bytes,
                          end_key: Optional[bytes]) -> List[Cohort]:
        """Cohorts intersecting [start_key, end_key), in key order.

        Requires an order-preserving key mapper.
        """
        if not self.order_preserving:
            raise ValueError("range queries need ordered_key_of; "
                             "construct the partitioner (or cluster) "
                             "with order-preserving keys")
        lo = self.key_mapper(start_key)
        hi = self.key_mapper(end_key) if end_key else self.keyspace - 1
        first = _index_for_key(self.cohorts, self.keyspace, lo)
        last = _index_for_key(self.cohorts, self.keyspace,
                              min(hi, self.keyspace - 1))
        return self.cohorts[first:last + 1]

    def cohort(self, cohort_id: int) -> Cohort:
        return self._by_id[cohort_id]

    def cohort_or_none(self, cohort_id: int) -> Optional[Cohort]:
        return self._by_id.get(cohort_id)

    def leader_hint(self, cohort_id: int) -> Optional[str]:
        return self.leader_hints.get(cohort_id)

    def __len__(self) -> int:
        return len(self.cohorts)


class RangePartitioner:
    """Builds and answers questions about the cluster's cohort layout.

    ``key_mapper`` converts row keys (bytes) to keyspace integers:
    :func:`key_of` (hashing; default) spreads any workload uniformly,
    :func:`ordered_key_of` preserves key order and enables range scans.

    The layout starts at ``version`` 1 and mutates only through
    :meth:`apply_change` — the apply side of a committed
    :class:`MembershipChange` log record.  All lookups answer from the
    current version.
    """

    def __init__(self, nodes: Sequence[str], replication_factor: int = 3,
                 keyspace: int = KEYSPACE, key_mapper=key_of,
                 topology=None, placement: str = "ring"):
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if len(nodes) < replication_factor:
            raise ValueError(
                f"need at least {replication_factor} nodes, "
                f"got {len(nodes)}")
        if placement not in ("ring", "spread", "local"):
            raise ValueError(f"unknown placement policy {placement!r}")
        if placement != "ring" and topology is None:
            raise ValueError(
                f"placement {placement!r} needs a topology")
        if placement == "local" and topology.preferred_dc is None:
            raise ValueError(
                "placement 'local' needs topology.preferred_dc")
        self.nodes = list(nodes)
        self.replication_factor = replication_factor
        self.keyspace = keyspace
        self.key_mapper = key_mapper
        self.order_preserving = key_mapper is ordered_key_of
        self.topology = topology
        self.placement = placement
        self.version = 1
        #: last leader the layout layer heard about, per cohort — seeds
        #: client leader caches (a hint only; elections move leadership)
        self.leader_hints: Dict[int, str] = {}
        self.cohorts: List[Cohort] = []
        n = len(self.nodes)
        step, remainder = divmod(keyspace, n)
        lo = 0
        for i, _node in enumerate(self.nodes):
            hi = lo + step + (1 if i < remainder else 0)
            self.cohorts.append(Cohort(i, KeyRange(lo, hi),
                                       self._members_for(i)))
            lo = hi
        self._reindex()

    def _members_for(self, i: int) -> Tuple[str, ...]:
        """Member set of base cohort ``i``.  ``members[0]`` is always
        ``nodes[i]`` (the base-range owner) under every policy.

        * ``ring`` — chained declustering: the next N-1 nodes in ring
          order (the paper's placement; topology-oblivious).
        * ``spread`` — walk the ring but prefer nodes in datacenters
          the cohort does not cover yet: every cohort spans as many DCs
          as the replication factor allows, so a whole-DC outage never
          takes a majority (cross-DC quorum; writes pay the WAN).
        * ``local`` — put a majority in ``topology.preferred_dc`` and
          spread the rest: strong writes commit inside the client DC
          (local quorum, LAN-speed), at the price of losing write
          availability if the preferred DC goes dark.
        """
        n = len(self.nodes)
        rf = self.replication_factor
        ring = [self.nodes[(i + j) % n] for j in range(n)]
        if self.topology is None or self.placement == "ring":
            return tuple(ring[:rf])
        dc_of = self.topology.dc_of
        members = [ring[0]]
        if self.placement == "local":
            preferred = self.topology.preferred_dc
            local_needed = rf // 2 + 1
            local = sum(1 for m in members if dc_of(m) == preferred)
            for cand in ring[1:]:
                if len(members) == rf or local >= local_needed:
                    break
                if dc_of(cand) == preferred and cand not in members:
                    members.append(cand)
                    local += 1
        # Cover unseen datacenters first ("spread", and the remainder
        # of "local"), then fill from the ring.
        seen = {dc_of(m) for m in members}
        for cand in ring[1:]:
            if len(members) == rf:
                break
            if cand not in members and dc_of(cand) not in seen:
                members.append(cand)
                seen.add(dc_of(cand))
        for cand in ring[1:]:
            if len(members) == rf:
                break
            if cand not in members:
                members.append(cand)
        return tuple(members)

    def _reindex(self) -> None:
        self._by_id: Dict[int, Cohort] = {
            c.cohort_id: c for c in self.cohorts}
        self._by_node: Dict[str, List[Cohort]] = {}
        for cohort in self.cohorts:
            for member in cohort.members:
                self._by_node.setdefault(member, []).append(cohort)

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Register a node that owns no cohorts yet (it gains some when a
        :class:`MembershipChange` naming it commits)."""
        if name not in self.nodes:
            self.nodes.append(name)

    def next_cohort_id(self) -> int:
        return max(c.cohort_id for c in self.cohorts) + 1

    def apply_change(self, change: MembershipChange) -> bool:
        """Mutate the layout to ``change.version``; returns True if this
        call applied it, False if it was already applied (or is from the
        future — the caller sequences changes, so that cannot happen in
        a correct run; we refuse rather than corrupt the map)."""
        if change.version != self.version + 1:
            return False
        cohort = self._by_id.get(change.cohort_id)
        if cohort is None:
            raise ValueError(f"no cohort {change.cohort_id}")
        idx = self.cohorts.index(cohort)
        if change.kind == "split":
            if not cohort.key_range.contains(change.split_key):
                raise ValueError(
                    f"split key {change.split_key} outside {cohort}")
            if change.new_cohort_id in self._by_id:
                raise ValueError(
                    f"cohort id {change.new_cohort_id} already in use")
            left = Cohort(cohort.cohort_id,
                          KeyRange(cohort.key_range.lo, change.split_key),
                          cohort.members)
            right = Cohort(change.new_cohort_id,
                           KeyRange(change.split_key, cohort.key_range.hi),
                           change.new_members)
            self.cohorts[idx:idx + 1] = [left, right]
        elif change.kind == "replace":
            self.cohorts[idx] = Cohort(cohort.cohort_id, cohort.key_range,
                                       change.new_members)
        else:
            raise ValueError(f"unknown change kind {change.kind!r}")
        for member in change.new_members:
            self.add_node(member)
        self.version = change.version
        self._reindex()
        return True

    def record_leader(self, cohort_id: int, name: str) -> None:
        """Remember the cohort's latest known leader (routing hint)."""
        self.leader_hints[cohort_id] = name

    def snapshot(self) -> CohortMap:
        """An immutable routing snapshot of the current layout."""
        return CohortMap(self.version, list(self.cohorts), self.keyspace,
                         self.key_mapper, self.leader_hints)

    # ------------------------------------------------------------------
    def locate(self, row_key: bytes) -> Cohort:
        """The cohort responsible for a row key (via the key mapper)."""
        return self.cohort_for_key(self.key_mapper(row_key))

    def cohorts_for_range(self, start_key: bytes,
                          end_key: bytes) -> List[Cohort]:
        """Cohorts intersecting [start_key, end_key), in key order.

        Requires an order-preserving key mapper.
        """
        if not self.order_preserving:
            raise ValueError("range queries need ordered_key_of; "
                             "construct the partitioner (or cluster) "
                             "with order-preserving keys")
        lo = self.key_mapper(start_key)
        hi = self.key_mapper(end_key) if end_key else self.keyspace - 1
        first = _index_for_key(self.cohorts, self.keyspace, lo)
        last = _index_for_key(self.cohorts, self.keyspace,
                              min(hi, self.keyspace - 1))
        return self.cohorts[first:last + 1]

    def cohort_for_key(self, key: int) -> Cohort:
        return self.cohorts[_index_for_key(self.cohorts, self.keyspace,
                                           key)]

    def cohort(self, cohort_id: int) -> Cohort:
        return self._by_id[cohort_id]

    def cohort_or_none(self, cohort_id: int) -> Optional[Cohort]:
        return self._by_id.get(cohort_id)

    def cohorts_of_node(self, node: str) -> List[Cohort]:
        """The cohorts this node participates in (3 with N=3)."""
        return list(self._by_node.get(node, []))

    def peers_of(self, node: str, cohort_id: int) -> List[str]:
        return [m for m in self._by_id[cohort_id].members if m != node]

    def __len__(self) -> int:
        return len(self.cohorts)
