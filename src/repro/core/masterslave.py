"""Traditional 2-way synchronous master-slave replication (§1.1, Fig. 1).

This module exists to demonstrate *why* Spinnaker uses Paxos: with
master-slave pairs there are failure sequences where the database becomes
unavailable — or silently loses committed writes — with only one node
down at a time.

The protocol modeled here is the textbook one: all writes go to the
master; the master ships the log record to the slave and forces its own
commit record **only after the slave forces it first**.  If the slave is
down, the master continues alone (that is the availability choice that
creates the trap).  Policies on failover:

* ``"safe"`` — a node only serves if it *knows* it has the latest
  database state.  A slave that restarts while the master is down cannot
  know what it missed, so the pair becomes unavailable (Fig. 1d).
* ``"unsafe"`` — the surviving node always serves.  Reads can return
  stale data and committed writes are lost if the master never returns.
* ``"block"`` — writes are refused whenever either node is down; never
  loses data, never serves stale data, but availability suffers on
  *every* single-node failure.

Compare with Spinnaker (§8.1): a Paxos cohort keeps serving through any
single failure *and* any failure sequence that leaves a majority alive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.disk import DiskProfile, LogDevice
from ..sim.events import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry

__all__ = ["MasterSlavePair", "MSUnavailable"]


class MSUnavailable(Exception):
    """The pair cannot serve the request under the configured policy."""


class _MSNode:
    """One half of the pair: a log, a key-value state, and liveness."""

    def __init__(self, sim: Simulator, rng: RngRegistry, name: str,
                 profile: Optional[DiskProfile] = None):
        self.sim = sim
        self.name = name
        self.device = LogDevice(sim, rng, f"{name}-log",
                                profile=profile or DiskProfile.ssd_log())
        self.alive = True
        self.last_lsn = 0
        self.log: List[Tuple[int, bytes, bytes]] = []   # (lsn, key, value)
        self.state: Dict[bytes, bytes] = {}
        #: True while this node is certain it holds the latest committed
        #: state.  Cleared when the node restarts after downtime — it
        #: cannot know what it missed.
        self.in_sync = True

    def force_write(self, lsn: int, key: bytes, value: bytes):
        """Durably log and apply one write; generator (yields the force)."""
        ev = self.device.force(128 + len(key) + len(value))
        yield ev
        self.last_lsn = lsn
        self.log.append((lsn, key, value))
        self.state[key] = value

    def crash(self) -> None:
        self.alive = False
        self.device.crash()

    def restart(self) -> None:
        self.alive = True
        self.device.restart()
        self.in_sync = False  # may have missed writes while down


class MasterSlavePair:
    """A 2-way synchronously replicated store with pluggable failover."""

    POLICIES = ("safe", "unsafe", "block")

    def __init__(self, sim: Simulator, network: Network, rng: RngRegistry,
                 policy: str = "safe",
                 profile: Optional[DiskProfile] = None):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.sim = sim
        self.policy = policy
        self.master = _MSNode(sim, rng, "ms-master", profile)
        self.slave = _MSNode(sim, rng, "ms-slave", profile)
        self._next_lsn = 0
        self.writes_committed = 0

    # ------------------------------------------------------------------
    def _acting(self) -> _MSNode:
        """Which node serves requests right now (or raise)."""
        if self.policy == "block":
            if not (self.master.alive and self.slave.alive):
                raise MSUnavailable("a node is down and policy is 'block'")
            return self.master
        if self.policy == "safe":
            # Only a node that can prove it holds the latest state may
            # serve.  Fig. 1(d): a node that restarted while its peer was
            # down cannot prove that.
            for node in (self.master, self.slave):
                if node.alive and node.in_sync:
                    return node
            raise MSUnavailable(
                "no live node can prove it has the latest state")
        # "unsafe": any survivor serves, stale or not.
        for node in (self.master, self.slave):
            if node.alive:
                return node
        raise MSUnavailable("both nodes down")

    # ------------------------------------------------------------------
    def write(self, key: bytes, value: bytes):
        """Replicated write; generator — ``yield from`` me.

        Returns the commit LSN.  Raises :class:`MSUnavailable` per the
        failover policy.
        """
        node = self._acting()
        self._next_lsn += 1
        lsn = self._next_lsn
        other = self.slave if node is self.master else self.master
        if other.alive:
            if other.last_lsn < node.last_lsn:
                # Peer rejoined while we stayed current: log-ship the gap
                # (one force covers the batch), after which it is in sync.
                for old_lsn, old_key, old_value in node.log:
                    if old_lsn > other.last_lsn:
                        other.log.append((old_lsn, old_key, old_value))
                        other.state[old_key] = old_value
                ev = other.device.force(4096)
                yield ev
                other.last_lsn = node.last_lsn
                other.in_sync = True
            # Synchronous replication: the peer forces first.
            yield from other.force_write(lsn, key, value)
        yield from node.force_write(lsn, key, value)
        if not other.alive:
            other.in_sync = False  # it is now missing this write
        self.writes_committed += 1
        return lsn

    def read(self, key: bytes) -> Optional[bytes]:
        """Read from whichever node is serving (no generator needed)."""
        return self._acting().state.get(key)

    # ------------------------------------------------------------------
    def available_for_writes(self) -> bool:
        try:
            self._acting()
            return True
        except MSUnavailable:
            return False

    def lost_writes(self) -> List[int]:
        """LSNs committed but missing from every live node's log."""
        live_lsns: set = set()
        for node in (self.master, self.slave):
            if node.alive:
                live_lsns.update(lsn for lsn, _k, _v in node.log)
        return [lsn for lsn in range(1, self._next_lsn + 1)
                if lsn not in live_lsns]
