"""Spinnaker's data model and client-visible result/error types (§3).

Data is organized into rows; each row is identified by its key and
contains columns with values and store-managed version numbers.  Keys,
column names and values are opaque bytes.  Version numbers are
monotonically increasing integers assigned by the cohort leader and are
the basis of the optimistic concurrency control offered by
``conditionalPut``/``conditionalDelete``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "GetResult", "PutResult", "Consistency",
    "DatastoreError", "VersionMismatch", "NotLeader", "Unavailable",
    "RequestTimeout",
]


class Consistency:
    """Read consistency levels (§3): the ``consistent`` flag of ``get``."""

    STRONG = "strong"      # routed to the leader; always the latest value
    TIMELINE = "timeline"  # any replica; possibly stale, never out of order


@dataclass(frozen=True)
class GetResult:
    """A read result: the value and its version number."""

    value: Optional[bytes]
    version: int
    found: bool = True

    @classmethod
    def not_found(cls) -> "GetResult":
        return cls(value=None, version=0, found=False)


@dataclass(frozen=True)
class PutResult:
    """A write acknowledgement: the version number that was written."""

    version: int


class DatastoreError(Exception):
    """Base class for errors returned by the datastore API."""

    code = "error"


class VersionMismatch(DatastoreError):
    """conditionalPut/Delete: the supplied version is no longer current."""

    code = "version-mismatch"

    def __init__(self, expected: int, actual: int):
        super().__init__(f"expected version {expected}, found {actual}")
        self.expected = expected
        self.actual = actual


class NotLeader(DatastoreError):
    """The contacted node is not the cohort's leader.

    Carries the node's best guess at the current leader so smart clients
    can re-route without consulting the coordination service (which must
    stay off the critical path, §4.2).
    """

    code = "not-leader"

    def __init__(self, leader_hint: Optional[str] = None):
        super().__init__(f"not leader (hint: {leader_hint})")
        self.leader_hint = leader_hint


class Unavailable(DatastoreError):
    """The cohort cannot serve the request (no quorum / mid-takeover)."""

    code = "unavailable"


class RequestTimeout(DatastoreError):
    """The client gave up waiting."""

    code = "timeout"


def row_to_dict(cells: Dict[bytes, "object"]) -> Dict[bytes, GetResult]:
    """Convert engine cells to client-visible results, hiding tombstones."""
    out: Dict[bytes, GetResult] = {}
    for col, cell in cells.items():
        if cell.tombstone:
            continue
        out[col] = GetResult(value=cell.value, version=cell.version)
    return out
