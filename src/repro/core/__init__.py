"""Spinnaker: the paper's primary contribution.

A range-partitioned, 3-way-replicated datastore whose per-cohort
Multi-Paxos-derived replication protocol is integrated with the shared
write-ahead log and recovery (§5–§7).  Build a cluster with
:class:`SpinnakerCluster`, talk to it with :class:`SpinnakerClient`.
"""

from .config import SpinnakerConfig
from .datamodel import (Consistency, DatastoreError, GetResult, NotLeader,
                        PutResult, RequestTimeout, Unavailable,
                        VersionMismatch)
from .partition import Cohort, KeyRange, RangePartitioner, key_of
from .commitqueue import CommitQueue, PendingWrite
from .replication import CohortReplica, Role
from .node import SpinnakerNode
from .cluster import SpinnakerCluster
from .api import SpinnakerClient
from .multiop import Transaction
from .checker import (HistoryRecorder, Violation,
                      check_strong_history)

__all__ = [
    "SpinnakerConfig", "SpinnakerCluster", "SpinnakerClient", "Transaction",
    "SpinnakerNode", "CohortReplica", "Role",
    "RangePartitioner", "Cohort", "KeyRange", "key_of",
    "CommitQueue", "PendingWrite",
    "Consistency", "GetResult", "PutResult",
    "DatastoreError", "VersionMismatch", "NotLeader", "Unavailable",
    "RequestTimeout",
    "HistoryRecorder", "Violation", "check_strong_history",
]
