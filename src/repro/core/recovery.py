"""Recovery: local replay, follower catch-up, and leader takeover (§6).

Three flows live here, all expressed as process generators over a
:class:`~repro.core.replication.CohortReplica`:

* :func:`local_recovery` — after a restart, re-apply log records from the
  checkpoint through f.cmt (idempotently, honouring the skipped-LSN
  list).  Writes after f.cmt are ambiguous and are left to catch-up.
* :func:`follower_catchup` — the §6.1 catch-up phase, follower-driven:
  advertise f.cmt, ingest committed writes (or shipped SSTables when the
  leader's log rolled over), logically truncate discarded records, then a
  final exchange during which the leader momentarily blocks new writes so
  the follower ends fully caught up.
* :func:`leader_takeover` — Fig. 6: catch both followers up to l.cmt,
  wait for a quorum, re-propose the unresolved writes in (l.cmt, l.lst]
  through the normal protocol, and open the cohort for writes with LSNs
  above anything previously used (the epoch was bumped by the election).
"""

from __future__ import annotations

from ..sim.events import Event, SimulationError
from ..sim.network import RpcTimeout
from ..sim.process import all_of, quorum, spawn, timeout
from ..sim.resources import serve
from ..storage.lsn import LSN
from ..storage.records import CommitMarker
from .batching import chunk_groups
from .messages import (Ack, CatchupFinal, CatchupReply, CatchupRequest,
                       Propose, TakeoverState)
from .partition import MEMBERSHIP_KEY
from .replication import Role

__all__ = ["local_recovery", "follower_catchup", "leader_takeover",
           "build_catchup_reply", "ingest_catchup"]


# ---------------------------------------------------------------------------
# Local recovery (§6.1, phase 1)
# ---------------------------------------------------------------------------

def local_recovery(replica):
    """Re-apply checkpoint..f.cmt from the local log.  ``yield from`` me."""
    node = replica.node
    wal = node.wal
    cohort_id = replica.cohort_id
    f_cmt = wal.last_committed_lsn(cohort_id)
    start = replica.engine.checkpoint_lsn
    records = wal.write_records(cohort_id, after=start, upto=f_cmt)
    for i, record in enumerate(records):
        replica.engine.apply(record)   # idempotent (LSN-ordered cells)
        if i % 64 == 63:               # charge CPU in batches
            yield from serve(node.cpu,
                             64 * node.config.recovery_replay_service)
    node.trace("catchup", "local recovery",
               cohort=cohort_id, replayed=len(records),
               f_cmt=str(f_cmt))
    replica.committed_lsn = f_cmt
    # Replayed membership changes re-run the map switch + reconciliation
    # (both idempotent: the shared map refuses non-successor versions).
    for record in records:
        if record.key == MEMBERSHIP_KEY:
            node.on_membership_commit(record)
    last = wal.last_lsn(cohort_id)
    replica.next_seq = max(replica.next_seq, last.seq + 1)
    # The log tells us which epochs this cohort has seen; elections use
    # this to pick a fresh epoch even after a full-cluster restart.
    replica.epoch = max(replica.epoch, last.epoch)
    return len(records)


# ---------------------------------------------------------------------------
# Catch-up payloads (shared by follower-driven catch-up and takeover)
# ---------------------------------------------------------------------------

def build_catchup_reply(leader_replica, follower_cmt: LSN) -> CatchupReply:
    """Assemble the leader's answer to "my last committed LSN is f.cmt"."""
    node = leader_replica.node
    cohort_id = leader_replica.cohort_id
    wal = node.wal
    l_cmt = leader_replica.committed_lsn
    l_lst = wal.last_lsn(cohort_id)
    sstables = ()
    valid_after = follower_cmt
    if not wal.can_serve_after(cohort_id, follower_cmt):
        # The log rolled past f.cmt: ship SSTables for the gap (§6.1).
        # Log records (and hence valid_lsns) then only cover the range
        # the leader's log retains.
        sstables = tuple(
            leader_replica.engine.sstables_with_writes_after(follower_cmt))
        valid_after = max(follower_cmt,
                          leader_replica.engine.checkpoint_lsn)
    records = tuple(wal.write_records(cohort_id, after=follower_cmt,
                                      upto=l_cmt))
    valid = tuple(r.lsn for r in wal.write_records(cohort_id,
                                                   after=follower_cmt))
    return CatchupReply(cohort_id=cohort_id, epoch=leader_replica.epoch,
                        committed_lsn=l_cmt, leader_lst=l_lst,
                        records=records, valid_lsns=valid,
                        valid_after=valid_after, sstables=sstables)


def ingest_catchup(replica, reply: CatchupReply):
    """Apply a catch-up payload at the follower.  ``yield from`` me.

    Ingests shipped SSTables, logically truncates local records the
    leader does not have (skipped-LSN list, §6.1.1), appends + forces
    missing committed records, applies them, and advances f.cmt.
    """
    node = replica.node
    wal = node.wal
    cohort_id = replica.cohort_id
    if reply.epoch > replica.epoch:
        replica.epoch = reply.epoch
    # 1. Logical truncation: records we hold above f.cmt that the leader
    #    does not list were discarded by a leader change.  Records at or
    #    below valid_after are covered by shipped SSTables, not by
    #    valid_lsns — never truncate those.
    valid = set(reply.valid_lsns)
    floor = max(replica.committed_lsn, reply.valid_after)
    mine = wal.write_records(cohort_id, after=floor)
    to_skip = [r.lsn for r in mine if r.lsn not in valid]
    if to_skip:
        wal.add_skipped(cohort_id, to_skip)
        for lsn in to_skip:
            replica.queue.drop(lsn)
    # 2. SSTables shipped because the leader's log rolled over.  Their
    #    writes never enter our log, so remember the floor below which
    #    local log holes are legitimate (audited by repro.chaos).
    for table in reply.sstables:
        replica.engine.ingest_sstable(table)
    if reply.valid_after > replica.catchup_floor:
        replica.catchup_floor = reply.valid_after
    # 3. Missing committed records: append + force, then apply in order.
    #    ``backfill`` because a record may fall below our last LSN when a
    #    lost propose left a gap with later records already logged.
    forces = []
    for record in reply.records:
        if (not wal.contains(cohort_id, record.lsn)
                and record.lsn > wal.min_retained_lsn(cohort_id)):
            forces.append(wal.append(record, force=True, backfill=True))
    if forces:
        yield all_of(node.sim, forces)
    for record in reply.records:
        replica.engine.apply(record)
        replica.queue.drop(record.lsn)
    new_cmt = max(replica.committed_lsn, reply.committed_lsn)
    if reply.sstables:
        new_cmt = max(new_cmt, max(t.max_lsn for t in reply.sstables))
    if new_cmt > replica.committed_lsn:
        replica.committed_lsn = new_cmt
        wal.append(CommitMarker(lsn=new_cmt, cohort_id=cohort_id,
                                committed_lsn=new_cmt), force=False)
    replica.next_seq = max(replica.next_seq,
                           wal.last_lsn(cohort_id).seq + 1)
    # Membership changes that arrived via catch-up (e.g. a retired member
    # that missed the commit broadcast) take effect now.
    for record in reply.records:
        if record.key == MEMBERSHIP_KEY:
            node.on_membership_commit(record)
    node.trace("catchup", "ingested",
               cohort=cohort_id, records=len(reply.records),
               sstables=len(reply.sstables), truncated=len(to_skip),
               new_cmt=str(replica.committed_lsn))


# ---------------------------------------------------------------------------
# Follower-driven catch-up (§6.1, phase 2)
# ---------------------------------------------------------------------------

def follower_catchup(replica):
    """Catch up from the current leader; ``yield from`` me.

    Returns True on success (replica is now an active follower), False
    if the leader was unreachable or stepped down (caller retries after
    re-resolving leadership).
    """
    node, cfg = replica.node, replica.node.config
    leader = replica.leader
    if leader is None or leader == node.name:
        return False
    # Phase A: bulk catch-up, leader unblocked.
    try:
        reply = yield node.endpoint.request(
            leader, CatchupRequest(cohort_id=replica.cohort_id,
                                   follower=node.name,
                                   follower_cmt=replica.committed_lsn),
            size=96, timeout=cfg.catchup_rpc_timeout)
    except RpcTimeout:
        return False
    if not isinstance(reply, CatchupReply):
        return False
    yield from ingest_catchup(replica, reply)
    # Phase B: final delta with the leader's writes momentarily blocked,
    # plus the leader's pending writes, which we adopt and ack.
    try:
        final = yield node.endpoint.request(
            leader, CatchupFinal(cohort_id=replica.cohort_id,
                                 follower=node.name,
                                 follower_cmt=replica.committed_lsn),
            size=96, timeout=cfg.catchup_rpc_timeout)
    except RpcTimeout:
        return False
    if not isinstance(final, dict) or "reply" not in final:
        return False
    yield from ingest_catchup(replica, final["reply"])
    pending = final["pending"]
    if pending:
        forces = []
        for record in pending:
            if not node.wal.contains(replica.cohort_id, record.lsn):
                forces.append(node.wal.append(record, force=True))
            replica.queue.add(record)
        if forces:
            yield all_of(node.sim, forces)
        top = max(r.lsn for r in pending)
        node.endpoint.send(leader, Ack(cohort_id=replica.cohort_id,
                                       epoch=replica.epoch, lsn=top,
                                       sender=node.name), size=48)
    replica.role = Role.FOLLOWER
    replica.set_leader(leader)
    return True


# ---------------------------------------------------------------------------
# Leader takeover (§6.2, Fig. 6)
# ---------------------------------------------------------------------------

def leader_takeover(replica):
    """Run takeover after winning an election; ``yield from`` me.

    The election already bumped the epoch (stored in the coordination
    service) and set ``replica.epoch``; LSNs issued after takeover are
    therefore greater than anything previously used in the cohort.
    """
    node, cfg = replica.node, replica.node.config
    sim = node.sim
    replica.role = Role.LEADER
    replica.leader = node.name
    replica.open_for_writes = False
    cohort_id = replica.cohort_id
    l_cmt = replica.committed_lsn
    l_lst = node.wal.last_lsn(cohort_id)

    # Lines 3-7: catch each follower up to l.cmt.
    def catch_one(peer: str):
        state = yield node.endpoint.request(
            peer, TakeoverState(cohort_id=cohort_id, epoch=replica.epoch),
            size=64, timeout=cfg.takeover_state_timeout)
        if not isinstance(state, dict) or "cmt" not in state:
            raise SimulationError(f"{peer} gave no takeover state")
        reply = build_catchup_reply(replica, state["cmt"])
        done = yield node.endpoint.request(
            peer, reply,
            size=sum(r.encoded_size() for r in reply.records) + 128,
            timeout=cfg.catchup_rpc_timeout)
        if done != "caught-up":
            raise SimulationError(f"{peer} failed catch-up")
        return peer

    # Line 8: wait until at least one follower is caught up to l.cmt.
    # Retry until a quorum exists — with both followers down the cohort
    # must stay unavailable (§8.1), and a returning follower may also
    # catch itself up and unblock us through the normal ack path.
    caught = None
    while caught is None:
        attempts = [spawn(sim, catch_one(peer), name=f"takeover-{peer}")
                    for peer in replica.peers()]
        try:
            caught = yield quorum(sim, attempts, need=1)
        except SimulationError:
            yield timeout(sim, cfg.election_retry)

    # Line 9: re-propose writes in (l.cmt, l.lst] through the normal
    # replication protocol, batched like the steady-state write pipeline
    # (up to ``propose_batch_max_records`` per round).  Sequential
    # per-round resolution is what keeps recovery time proportional to
    # the commit period (Table 1); batching divides the round count.
    unresolved = node.wal.write_records(cohort_id, after=l_cmt, upto=l_lst)
    if cfg.propose_batching:
        batches = chunk_groups([(r,) for r in unresolved],
                               cfg.propose_batch_max_records,
                               cfg.propose_batch_max_bytes)
    else:
        batches = [[r] for r in unresolved]
    for batch in batches:
        yield from serve(node.cpu, cfg.takeover_record_service)
        self_done = Event(sim)
        state = {"left": len(batch)}

        def _committed(_record, state=state, ev=self_done):
            state["left"] -= 1
            if state["left"] == 0 and not ev.triggered:
                ev.succeed()

        for record in batch:
            replica.queue.add(record, on_commit=_committed)
            replica.queue.mark_forced(record.lsn)  # already durable here
        propose = Propose(cohort_id=cohort_id, epoch=replica.epoch,
                          records=tuple(batch))
        size = sum(r.encoded_size() for r in batch) + 64
        for peer in replica.peers():
            ack_ev = node.endpoint.request(peer, propose, size=size)
            ack_ev.add_callback(replica._on_ack)
        yield self_done

    # Line 10: open the cohort for writes, with fresh LSNs.
    replica.next_seq = max(replica.next_seq, l_lst.seq + 1)
    replica.open_for_writes = True
    # Routing hint for clients whose leader cache is cold (the map layer
    # snapshots it; elections and handoffs keep it current).
    node.partitioner.record_leader(cohort_id, node.name)
    node.trace("takeover", "cohort open for writes",
               cohort=cohort_id, epoch=replica.epoch,
               reproposed=len(unresolved))
    replica.broadcast_commit()
    spawn(sim, replica.commit_loop(), name=f"commit-loop-{cohort_id}")
    return len(unresolved), caught
