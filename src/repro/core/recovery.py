"""Recovery: local replay, chunked follower catch-up, leader takeover (§6).

Three flows live here, all expressed as process generators over a
:class:`~repro.core.replication.CohortReplica`:

* :func:`local_recovery` — after a restart, re-apply log records from the
  checkpoint through f.cmt (idempotently, honouring the skipped-LSN
  list).  Writes after f.cmt are ambiguous and are left to catch-up.
* :func:`follower_catchup` — the §6.1 catch-up phase, follower-driven and
  **chunked**: page bounded :class:`CatchupChunk` exchanges (snapshot
  SSTables first, then log records), advancing ``catchup_floor`` /
  ``committed_lsn`` durably per chunk so a crash mid-install resumes
  from the last applied chunk, then a final exchange — last delta only —
  during which the leader momentarily blocks new writes so the follower
  ends fully caught up.
* :func:`leader_takeover` — Fig. 6: catch both followers up to l.cmt
  (via :func:`push_catchup`, the same chunked snapshot-install path used
  by rebalance replace-moves and leadership handoff), wait for a quorum,
  re-propose the unresolved writes in (l.cmt, l.lst] through the normal
  protocol, and open the cohort for writes with LSNs above anything
  previously used (the epoch was bumped by the election).

Chunk paging safety
-------------------
Compacted SSTables overlap in LSN range, so a follower that installed a
*prefix* of the leader's snapshot manifest may still miss a surviving
cell at an LSN below the newest shipped table.  The leader therefore
ships tables ascending by ``(max_lsn, min_lsn, table_id)`` and computes a
per-chunk **safe floor** — capped at one below the smallest ``min_lsn``
of any unshipped table — and the follower only advances its durable
state to that floor.  The volatile paging token (``seen``/``source``)
names the leader's ``(name, manifest_id)`` generation; when a leader
change or a flush/compaction invalidates it, paging restarts from the
durable floor, so nothing below the floor is ever re-shipped and no
stale token skips a table.
"""

from __future__ import annotations

from ..sim.events import Event, SimulationError
from ..sim.network import RpcTimeout
from ..sim.process import all_of, quorum, spawn, timeout
from ..sim.resources import serve
from ..storage.lsn import LSN, SEQ_BITS
from ..storage.records import CatchupMarker, CommitMarker
from .batching import chunk_groups
from .messages import (Ack, CatchupChunk, CatchupFinal, CatchupRequest,
                       Propose, TakeoverState)
from .partition import MEMBERSHIP_KEY
from .replication import Role

__all__ = ["local_recovery", "follower_catchup", "leader_takeover",
           "push_catchup", "build_catchup_chunk", "ingest_catchup",
           "chunk_wire_size"]

_MAX_SEQ = (1 << SEQ_BITS) - 1
#: "behind" redirects allowed per catch-up attempt before giving the
#: outer retry loop (leader_monitor / rebalance) a turn.
_MAX_FINAL_ROUNDS = 4


def _prev_lsn(lsn: LSN) -> LSN:
    """The greatest LSN strictly below ``lsn``.

    Epochs compare first, so ``(e, s-1)`` dominates every LSN of any
    earlier epoch — a safe exclusive upper bound for "everything below".
    """
    if lsn.seq > 0:
        return LSN(lsn.epoch, lsn.seq - 1)
    if lsn.epoch > 0:
        return LSN(lsn.epoch - 1, _MAX_SEQ)
    return LSN.zero()


# ---------------------------------------------------------------------------
# Local recovery (§6.1, phase 1)
# ---------------------------------------------------------------------------

def local_recovery(replica):
    """Re-apply checkpoint..f.cmt from the local log.  ``yield from`` me."""
    node = replica.node
    wal = node.wal
    cohort_id = replica.cohort_id
    f_cmt = wal.last_committed_lsn(cohort_id)
    start = replica.engine.checkpoint_lsn
    records = wal.write_records(cohort_id, after=start, upto=f_cmt)
    for i, record in enumerate(records):
        replica.engine.apply(record)   # idempotent (LSN-ordered cells)
        if i % 64 == 63:               # charge CPU in batches
            yield from serve(node.cpu,
                             64 * node.config.recovery_replay_service)
    node.trace("catchup", "local recovery",
               cohort=cohort_id, replayed=len(records),
               f_cmt=str(f_cmt))
    # Merge, don't assign: the replay loop yields, and a concurrent
    # ingest may have advanced the commit point past our snapshot.
    replica.committed_lsn = max(replica.committed_lsn, f_cmt)
    # Replayed membership changes re-run the map switch + reconciliation
    # (both idempotent: the shared map refuses non-successor versions).
    for record in records:
        if record.key == MEMBERSHIP_KEY:
            node.on_membership_commit(record)
    last = wal.last_lsn(cohort_id)
    replica.next_seq = max(replica.next_seq, last.seq + 1)
    # The log tells us which epochs this cohort has seen; elections use
    # this to pick a fresh epoch even after a full-cluster restart.
    replica.epoch = max(replica.epoch, last.epoch)
    return len(records)


# ---------------------------------------------------------------------------
# Chunk assembly (leader side)
# ---------------------------------------------------------------------------

def chunk_wire_size(chunk: CatchupChunk) -> int:
    """Honest network size of one chunk: records, tables, and framing."""
    return (sum(r.encoded_size() for r in chunk.records) + 128
            + sum(t.bytes_size for t in chunk.sstables))


def build_catchup_chunk(leader_replica, req: CatchupRequest) -> CatchupChunk:
    """Assemble the next bounded catch-up page for one follower.

    Tables first (when the log rolled past the follower's progress),
    then log records; each page stays near the configured byte budget
    but always carries at least one item so progress is guaranteed.
    """
    node = leader_replica.node
    cohort_id = leader_replica.cohort_id
    wal = node.wal
    engine = leader_replica.engine
    cfg = node.config
    l_cmt = leader_replica.committed_lsn
    l_lst = wal.last_lsn(cohort_id)
    budget = req.max_bytes if req.max_bytes > 0 else cfg.catchup_chunk_bytes
    progress = max(req.follower_cmt, req.floor)
    source = (node.name, engine.manifest_id)
    # The floor only moves when shipped SSTables cover the gap (snapshot
    # branch below): it marks LSNs that may be absent from the
    # follower's *log*.  Serving from the log never raises it.
    floor = req.floor
    # A paging token is only meaningful within the generation it was
    # issued for; otherwise restart paging from the durable progress.
    seen = req.seen if req.source == source else progress
    if seen < progress:
        seen = progress

    sstables = ()
    used = 0
    snapshot_done = True
    if not wal.can_serve_after(cohort_id, progress):
        manifest = engine.manifest()
        horizon = max(progress, manifest.checkpoint_lsn)
        candidates = [t for t in manifest.sstables if t.max_lsn > seen]
        shipped = []
        for table in candidates:
            if (shipped and used + table.bytes_size > budget
                    and table.max_lsn != shipped[-1].max_lsn):
                # Budget exhausted — but tables tied on max_lsn ride in
                # the same page, keeping the exclusive token sound.
                break
            shipped.append(table)
            used += table.bytes_size
        unshipped = candidates[len(shipped):]
        sstables = tuple(shipped)
        if shipped:
            seen = shipped[-1].max_lsn
        if unshipped:
            snapshot_done = False
            # Safe floor: a surviving cell below the smallest unshipped
            # min_lsn must live in an already-shipped table.
            next_min = min(t.min_lsn for t in unshipped)
            floor = max(progress, min(seen, _prev_lsn(next_min)))
        else:
            # Snapshot portion exhausted: the floor jumps to the
            # manifest horizon; the remaining gap comes from the log.
            floor = max(progress, horizon)
            seen = max(seen, floor)

    if snapshot_done:
        base = max(progress, floor)
        gap = wal.write_records(cohort_id, after=base, upto=l_cmt)
        records = []
        for record in gap:
            if records and used + record.encoded_size() > budget:
                break
            records.append(record)
            used += record.encoded_size()
        more = len(records) < len(gap)
        if more:
            valid_upto = records[-1].lsn
            valid = tuple(r.lsn for r in records)
        else:
            # Final page: the truncation window stretches to l.lst so
            # the follower can skip-list records the leader discarded.
            valid_upto = l_lst
            valid = tuple(r.lsn for r in wal.write_records(cohort_id,
                                                           after=base))
        chunk = CatchupChunk(cohort_id=cohort_id,
                             epoch=leader_replica.epoch,
                             committed_lsn=l_cmt, leader_lst=l_lst,
                             source=source, sstables=sstables,
                             snapshot_seen=seen, floor=floor,
                             records=tuple(records), valid_lsns=valid,
                             valid_after=base, valid_upto=valid_upto,
                             more=more)
    else:
        chunk = CatchupChunk(cohort_id=cohort_id,
                             epoch=leader_replica.epoch,
                             committed_lsn=l_cmt, leader_lst=l_lst,
                             source=source, sstables=sstables,
                             snapshot_seen=seen, floor=floor,
                             records=(), valid_lsns=(),
                             valid_after=floor, valid_upto=floor,
                             more=True)
    # Served-chunk ledger: chaos schedules verify resume behaviour (no
    # table shipped at or below the follower's resume floor).
    node.catchup_served.append({
        "t": node.sim.now, "cohort": cohort_id, "follower": req.follower,
        "req_floor": progress, "req_seen": req.seen,
        "source": source, "floor": chunk.floor,
        "table_max_lsns": tuple(t.max_lsn for t in chunk.sstables),
        "records": len(chunk.records), "more": chunk.more,
    })
    return chunk


# ---------------------------------------------------------------------------
# Chunk ingestion (follower side)
# ---------------------------------------------------------------------------

def ingest_catchup(replica, chunk: CatchupChunk):
    """Apply one catch-up chunk at the follower.  ``yield from`` me.

    Ingests the shipped snapshot slice, logically truncates local
    records the leader discarded (skipped-LSN list, §6.1.1 — windowed to
    this chunk's ``(valid_after, valid_upto]``), appends + forces missing
    committed records, applies them, and advances ``catchup_floor`` /
    f.cmt **durably** — a forced :class:`CatchupMarker` is the per-chunk
    durability point, so a crash mid-install resumes from this chunk.
    """
    node = replica.node
    wal = node.wal
    cohort_id = replica.cohort_id
    if chunk.epoch > replica.epoch:
        replica.epoch = chunk.epoch
    # 1. Logical truncation over this chunk's validity window: records
    #    we hold in (valid_after, valid_upto] that the leader does not
    #    list were discarded by a leader change.  Records above the
    #    window are judged by later chunks; records at or below the
    #    floor are covered by shipped SSTables, never truncated.
    to_skip = []
    t_floor = max(replica.committed_lsn, chunk.valid_after)
    if chunk.valid_upto > t_floor:
        valid = set(chunk.valid_lsns)
        mine = wal.write_records(cohort_id, after=t_floor,
                                 upto=chunk.valid_upto)
        to_skip = [r.lsn for r in mine if r.lsn not in valid]
        if to_skip:
            wal.add_skipped(cohort_id, to_skip)
            for lsn in to_skip:
                replica.queue.drop(lsn)
    # 2. Snapshot slice shipped because the leader's log rolled over.
    #    The engine checkpoint is capped at the chunk's safe floor: an
    #    overlapping compacted table still unshipped may hold surviving
    #    cells above it.  Re-ingesting a retried chunk is a no-op.
    for table in chunk.sstables:
        replica.engine.ingest_sstable(table, checkpoint_upto=chunk.floor)
    replica.catchup_tables_ingested += len(chunk.sstables)
    # Volatile paging token for the next request (crash resets it; the
    # durable resume point is the CatchupMarker floor).
    replica.snapshot_seen = chunk.snapshot_seen
    replica.catchup_source = chunk.source
    floor_advanced = chunk.floor > replica.catchup_floor
    if floor_advanced:
        replica.catchup_floor = chunk.floor
        # Our own records at or below the floor are superseded by the
        # installed tables; roll them over so restart replay and the
        # skipped list stay bounded by the gap, not the history.
        wal.gc_through(cohort_id, chunk.floor)
    # 3. Missing committed records: append + force, then apply in order.
    #    ``backfill`` because a record may fall below our last LSN when a
    #    lost propose left a gap with later records already logged.
    min_retained = wal.min_retained_lsn(cohort_id)
    forces = []
    for record in chunk.records:
        if (not wal.contains(cohort_id, record.lsn)
                and record.lsn > min_retained):
            forces.append(wal.append(record, force=True, backfill=True))
    if forces:
        yield all_of(node.sim, forces)
    for record in chunk.records:
        replica.engine.apply(record)
        replica.queue.drop(record.lsn)
    new_cmt = max(replica.committed_lsn, replica.catchup_floor)
    if chunk.records:
        new_cmt = max(new_cmt, chunk.records[-1].lsn)
    if not chunk.more:
        # Final page: everything through the leader's commit point is
        # shipped, already ours, or skip-listed — adopt l.cmt outright.
        new_cmt = max(new_cmt, chunk.committed_lsn)
    cmt_advanced = new_cmt > replica.committed_lsn
    if cmt_advanced:
        replica.committed_lsn = new_cmt
        wal.append(CommitMarker(lsn=new_cmt, cohort_id=cohort_id,
                                committed_lsn=new_cmt), force=False)
    if floor_advanced or cmt_advanced:
        # The per-chunk durability point: one forced marker also lands
        # the non-forced commit marker above (group-commit semantics).
        ev = wal.append(CatchupMarker(lsn=replica.catchup_floor,
                                      cohort_id=cohort_id,
                                      floor=replica.catchup_floor),
                        force=True)
        if ev is not None:
            yield ev
    replica.catchup_chunks_ingested += 1
    replica.next_seq = max(replica.next_seq,
                           wal.last_lsn(cohort_id).seq + 1)
    # Membership changes that arrived via catch-up (e.g. a retired member
    # that missed the commit broadcast) take effect now.
    for record in chunk.records:
        if record.key == MEMBERSHIP_KEY:
            node.on_membership_commit(record)
    node.trace("catchup", "chunk ingested",
               cohort=cohort_id, records=len(chunk.records),
               sstables=len(chunk.sstables), truncated=len(to_skip),
               floor=str(replica.catchup_floor),
               new_cmt=str(replica.committed_lsn), more=chunk.more)


# ---------------------------------------------------------------------------
# Follower-driven catch-up (§6.1, phase 2)
# ---------------------------------------------------------------------------

# `leader` is the retry *target*, not a live guard: a deposed
# addressee rejects the request on epoch mismatch.
# lint: allow(stale-guard-across-yield)
def _request_with_retries(replica, leader, payload, size, ctx,
                          rpc_timeout=None):
    """One catch-up RPC with per-chunk timeout + retry with backoff.

    Returns the reply, or None once retries are exhausted.  ``yield
    from`` me.
    """
    node, cfg = replica.node, replica.node.config
    tracer = node.request_tracer
    rpc_timeout = (cfg.catchup_chunk_timeout if rpc_timeout is None
                   else rpc_timeout)
    for attempt in range(cfg.catchup_chunk_retries + 1):
        span = None
        if ctx is not None:
            span = tracer.start(ctx, "catchup_fetch", node.name,
                                attempt=attempt)
        try:
            reply = yield node.endpoint.request(leader, payload, size=size,
                                                timeout=rpc_timeout)
        except RpcTimeout:
            if span is not None:
                tracer.finish(span, timed_out=True)
            if attempt < cfg.catchup_chunk_retries:
                yield timeout(node.sim,
                              cfg.catchup_retry_backoff * (2 ** attempt))
                continue
            return None
        if span is not None:
            tracer.finish(span)
        return reply
    return None


def follower_catchup(replica):
    """Catch up from the current leader; ``yield from`` me.

    Returns True on success (replica is now an active follower), False
    if the leader was unreachable or stepped down (caller retries after
    re-resolving leadership).  Progress made before a failure is durable
    — the next attempt resumes from the last applied chunk.
    """
    node = replica.node
    leader = replica.leader
    if leader is None or leader == node.name:
        return False
    tracer = node.request_tracer
    ctx = tracer.begin("catchup", node.name) if tracer.enabled else None
    ok = False
    try:
        ok = yield from _catchup_rounds(replica, leader, ctx)
        return ok
    finally:
        if ctx is not None:
            tracer.finish(ctx.root, ok=ok)


# Mid-round uses of `leader` only address RPCs (a deposed peer
# answers with an epoch error); the final role/leader adoption
# re-validates the live attributes before acting.
# lint: allow(stale-guard-across-yield)
def _catchup_rounds(replica, leader, ctx):
    node, cfg = replica.node, replica.node.config
    tracer = node.request_tracer
    for _round in range(_MAX_FINAL_ROUNDS):
        # Phase A: bulk chunks, leader unblocked.
        while True:
            request = CatchupRequest(
                cohort_id=replica.cohort_id, follower=node.name,
                follower_cmt=replica.committed_lsn,
                floor=replica.catchup_floor,
                seen=replica.snapshot_seen,
                source=replica.catchup_source)
            chunk = yield from _request_with_retries(replica, leader,
                                                     request, 96, ctx)
            if not isinstance(chunk, CatchupChunk):
                return False
            span = None
            if ctx is not None and chunk.sstables:
                span = tracer.start(ctx, "snapshot_install", node.name,
                                    tables=len(chunk.sstables))
            yield from ingest_catchup(replica, chunk)
            if span is not None:
                tracer.finish(span, floor=str(replica.catchup_floor))
            if not chunk.more:
                break
        # Phase B: final delta with the leader's writes momentarily
        # blocked, plus the leader's pending writes, which we adopt and
        # ack.  The leader only ever ships the *last delta* here; if its
        # log rolled past us between phases it answers "behind" and we
        # return to unblocked bulk chunks instead.
        final = yield from _request_with_retries(
            replica, leader,
            CatchupFinal(cohort_id=replica.cohort_id, follower=node.name,
                         follower_cmt=replica.committed_lsn),
            96, ctx, rpc_timeout=cfg.catchup_rpc_timeout)
        if isinstance(final, dict) and final.get("code") == "behind":
            continue
        if not isinstance(final, dict) or "reply" not in final:
            return False
        yield from ingest_catchup(replica, final["reply"])
        pending = final["pending"]
        if pending:
            forces = []
            for record in pending:
                if not node.wal.contains(replica.cohort_id, record.lsn):
                    forces.append(node.wal.append(record, force=True))
                replica.queue.add(record)
            if forces:
                yield all_of(node.sim, forces)
            top = max(r.lsn for r in pending)
            node.endpoint.send(leader, Ack(cohort_id=replica.cohort_id,
                                           epoch=replica.epoch, lsn=top,
                                           sender=node.name), size=48)
        # Re-validate before adopting: the rounds above yielded many
        # times, and an election may have promoted us (or named a
        # different leader) meanwhile — clobbering that state with a
        # stale FOLLOWER/leader pair would fork the cohort's view.
        if replica.role is Role.LEADER or (replica.leader is not None
                                           and replica.leader != leader):
            node.trace("catchup", "discarding stale catch-up result",
                       cohort=replica.cohort_id, against=leader,
                       leader=replica.leader)
            return False
        replica.role = Role.FOLLOWER
        replica.set_leader(leader)
        return True
    return False


# ---------------------------------------------------------------------------
# Leader-driven catch-up push (takeover, rebalance, handoff)
# ---------------------------------------------------------------------------

def push_catchup(leader_replica, peer: str):
    """Bring ``peer`` up to this replica's commit point by pushing
    chunks; ``yield from`` me.  Returns the peer name.

    The one bulk-repair path: leader takeover (Fig. 6 lines 3-7),
    rebalance replace-joiners, and leadership handoff all route through
    here, so a far-behind peer is always repaired via the chunked
    snapshot-install protocol.  Raises
    :class:`~repro.sim.events.SimulationError` when the peer cannot be
    caught up (callers' retry loops handle it); chunk progress already
    pushed is durable at the peer and is not re-shipped on retry.
    """
    node, cfg = leader_replica.node, leader_replica.node.config
    cohort_id = leader_replica.cohort_id
    state = yield node.endpoint.request(
        peer, TakeoverState(cohort_id=cohort_id,
                            epoch=leader_replica.epoch),
        size=64, timeout=cfg.takeover_state_timeout)
    if not isinstance(state, dict) or "cmt" not in state:
        raise SimulationError(f"{peer} gave no takeover state")
    follower_cmt = state["cmt"]
    floor = state.get("floor", LSN.zero())
    seen = LSN.zero()
    source = None
    while True:
        yield from serve(node.cpu, cfg.takeover_record_service)
        request = CatchupRequest(cohort_id=cohort_id, follower=peer,
                                 follower_cmt=follower_cmt, floor=floor,
                                 seen=seen, source=source)
        chunk = build_catchup_chunk(leader_replica, request)
        done = None
        for attempt in range(cfg.catchup_chunk_retries + 1):
            try:
                done = yield node.endpoint.request(
                    peer, chunk, size=chunk_wire_size(chunk),
                    timeout=cfg.catchup_chunk_timeout)
                break
            except RpcTimeout:
                if attempt < cfg.catchup_chunk_retries:
                    yield timeout(
                        node.sim,
                        cfg.catchup_retry_backoff * (2 ** attempt))
        if not isinstance(done, dict) or "cmt" not in done:
            raise SimulationError(f"{peer} failed catch-up")
        follower_cmt = done["cmt"]
        floor = done.get("floor", floor)
        seen = chunk.snapshot_seen
        source = chunk.source
        if not chunk.more:
            return peer


# ---------------------------------------------------------------------------
# Leader takeover (§6.2, Fig. 6)
# ---------------------------------------------------------------------------

def leader_takeover(replica):
    """Run takeover after winning an election; ``yield from`` me.

    The election already bumped the epoch (stored in the coordination
    service) and set ``replica.epoch``; LSNs issued after takeover are
    therefore greater than anything previously used in the cohort.
    """
    node, cfg = replica.node, replica.node.config
    sim = node.sim
    replica.role = Role.LEADER
    replica.leader = node.name
    replica.open_for_writes = False
    cohort_id = replica.cohort_id
    l_cmt = replica.committed_lsn
    l_lst = node.wal.last_lsn(cohort_id)

    # Lines 3-7: catch each follower up to l.cmt (chunked push).
    def catch_one(peer: str):
        caught_peer = yield from push_catchup(replica, peer)
        return caught_peer

    # Line 8: wait until at least one follower is caught up to l.cmt.
    # Retry until a quorum exists — with both followers down the cohort
    # must stay unavailable (§8.1), and a returning follower may also
    # catch itself up and unblock us through the normal ack path.
    caught = None
    while caught is None:
        attempts = [spawn(sim, catch_one(peer), name=f"takeover-{peer}")
                    for peer in replica.peers()]
        try:
            caught = yield quorum(sim, attempts, need=1)
        except SimulationError:
            yield timeout(sim, cfg.election_retry)

    # Line 9: re-propose writes in (l.cmt, l.lst] through the normal
    # replication protocol, batched like the steady-state write pipeline
    # (up to ``propose_batch_max_records`` per round).  Sequential
    # per-round resolution is what keeps recovery time proportional to
    # the commit period (Table 1); batching divides the round count.
    unresolved = node.wal.write_records(cohort_id, after=l_cmt, upto=l_lst)
    if cfg.propose_batching:
        batches = chunk_groups([(r,) for r in unresolved],
                               cfg.propose_batch_max_records,
                               cfg.propose_batch_max_bytes)
    else:
        batches = [[r] for r in unresolved]
    for batch in batches:
        yield from serve(node.cpu, cfg.takeover_record_service)
        self_done = Event(sim)
        state = {"left": len(batch)}

        def _committed(_record, state=state, ev=self_done):
            state["left"] -= 1
            if state["left"] == 0 and not ev.triggered:
                ev.succeed()

        for record in batch:
            replica.queue.add(record, on_commit=_committed)
            replica.queue.mark_forced(record.lsn)  # already durable here
        propose = Propose(cohort_id=cohort_id, epoch=replica.epoch,
                          records=tuple(batch))
        size = sum(r.encoded_size() for r in batch) + 64
        for peer in replica.peers():
            ack_ev = node.endpoint.request(peer, propose, size=size)
            ack_ev.add_callback(replica._on_ack)
        yield self_done

    # Line 10: open the cohort for writes, with fresh LSNs.
    replica.next_seq = max(replica.next_seq, l_lst.seq + 1)
    # Takeover runs under the leader monitor; deposal interrupts
    # this process before it can resume.
    # lint: allow(write-after-yield-unguarded)
    replica.open_for_writes = True
    # Routing hint for clients whose leader cache is cold (the map layer
    # snapshots it; elections and handoffs keep it current).
    node.partitioner.record_leader(cohort_id, node.name)
    node.trace("takeover", "cohort open for writes",
               cohort=cohort_id, epoch=replica.epoch,
               reproposed=len(unresolved))
    replica.broadcast_commit()
    spawn(sim, replica.commit_loop(), name=f"commit-loop-{cohort_id}")
    return len(unresolved), caught
