"""Walk a source tree, run every check, apply pragmas and the baseline.

The runner makes two passes.  Pass one collects, across *all* modules,
the names of generator functions handed to ``spawn``-like calls — a
process body is often defined in one module and spawned from another
(``leader_monitor`` lives in ``election.py``, is spawned by
``node.py``).  Pass two lints each module with that global knowledge,
then runs the protocol exhaustiveness checks, filters ``# lint:
allow(...)`` pragmas, and splits what remains against the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .determinism import collect_spawned, lint_source
from .findings import (Baseline, Finding, match_baseline, parse_pragmas,
                       suppressed)
from .protocol import ProtocolSpec, check_protocols

__all__ = ["LintResult", "run_lint", "iter_py_files", "is_sim_visible"]

#: top-level packages whose code never runs inside the simulation
#: (reporting, CLIs, and this analysis suite itself)
NON_SIM_PACKAGES = {"bench", "analysis"}
NON_SIM_FILES = {"__main__.py", "cli.py"}  # CLI front-ends print by design


@dataclass
class LintResult:
    """Outcome of one full lint run."""

    root: Path
    findings: List[Finding] = field(default_factory=list)      # new
    baselined: List[Finding] = field(default_factory=list)
    pragma_suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_raw(self) -> List[Finding]:
        """Every finding before baseline filtering (for --write-baseline)."""
        return sorted(self.findings + self.baselined,
                      key=lambda f: (f.path, f.line, f.rule))


def iter_py_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py")
                  if "__pycache__" not in p.parts)


def is_sim_visible(rel: Path) -> bool:
    """Whether determinism rules for sim-internal code apply to ``rel``."""
    if rel.name in NON_SIM_FILES:
        return False
    return not (rel.parts and rel.parts[0] in NON_SIM_PACKAGES)


def run_lint(root: Path,
             baseline_path: Optional[Path] = None,
             protocols: Optional[Sequence[ProtocolSpec]] = None,
             rules: Optional[Set[str]] = None) -> LintResult:
    """Lint every module under ``root`` plus the protocol catalogs.

    ``rules`` restricts the run to the named rules when given.
    ``protocols=None`` uses :data:`~repro.analysis.protocol.
    DEFAULT_PROTOCOLS` (which self-skip unless their files exist under
    ``root``); pass ``()`` to disable protocol checks entirely.
    """
    root = root.resolve()
    result = LintResult(root=root)
    files = iter_py_files(root)
    sources: Dict[Path, str] = {}
    spawned: Set[str] = set()

    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as err:
            result.parse_errors.append(f"{path}: {err}")
            continue
        sources[path] = text
        spawned |= collect_spawned(tree)

    raw: List[Finding] = []
    for path, text in sources.items():
        rel = path.relative_to(root)
        result.files_checked += 1
        raw.extend(lint_source(text, rel.as_posix(),
                               sim_visible=is_sim_visible(rel),
                               spawned=spawned))
    raw.extend(check_protocols(root, protocols))

    if rules is not None:
        raw = [f for f in raw if f.rule in rules]

    # pragma suppression, per referenced file
    pragma_cache: Dict[str, Dict[int, Set[str]]] = {}
    surviving: List[Finding] = []
    for f in sorted(raw, key=lambda x: (x.path, x.line, x.rule)):
        pragmas = pragma_cache.get(f.path)
        if pragmas is None:
            target = root / f.path
            pragmas = (parse_pragmas(sources.get(target)
                                     if target in sources
                                     else target.read_text(encoding="utf-8"))
                       if target.exists() else {})
            pragma_cache[f.path] = pragmas
        if suppressed(f, pragmas):
            result.pragma_suppressed.append(f)
        else:
            surviving.append(f)

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    result.findings, result.baselined = match_baseline(surviving, baseline)
    return result
