"""Walk a source tree, run every check, apply pragmas and the baseline.

The runner makes two passes.  Pass one collects, across *all* modules,
the names of generator functions handed to ``spawn``-like calls plus
every ``yield from`` delegation edge — a process body is often defined
in one module and spawned from another (``leader_monitor`` lives in
``election.py``, is spawned by ``node.py``), and its delegates
(``run_election`` -> ``_bump_epoch``) may live in yet another.  The
spawn set is closed over the edge graph *across modules* so the
yield-discipline and atomicity rules see the full process closure.
Pass two lints each module with that global knowledge, then runs the
protocol exhaustiveness checks, filters ``# lint: allow(...)``
pragmas, and splits what remains against the baseline (reporting any
baseline entries that no longer match anything as stale).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .atomicity import lint_atomicity
from .determinism import (close_process_names, collect_spawned,
                          collect_yield_edges, lint_source)
from .findings import (Baseline, Finding, match_baseline, parse_pragmas,
                       suppressed)
from .protocol import ProtocolSpec, check_protocols

__all__ = ["LintResult", "run_lint", "iter_py_files", "is_sim_visible"]

#: top-level packages whose code never runs inside the simulation
#: (reporting, CLIs, and this analysis suite itself)
NON_SIM_PACKAGES = {"bench", "analysis", "tune"}
NON_SIM_FILES = {"__main__.py", "cli.py"}  # CLI front-ends print by design


@dataclass
class LintResult:
    """Outcome of one full lint run."""

    root: Path
    findings: List[Finding] = field(default_factory=list)      # new
    baselined: List[Finding] = field(default_factory=list)
    pragma_suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: baseline entries (rule, path, code) that matched nothing — rot
    stale_baseline: List[Tuple[str, str, str]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.findings and not self.parse_errors
                and not self.stale_baseline)

    def all_raw(self) -> List[Finding]:
        """Every finding before baseline filtering (for --write-baseline)."""
        return sorted(self.findings + self.baselined,
                      key=lambda f: (f.path, f.line, f.rule))


def iter_py_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py")
                  if "__pycache__" not in p.parts)


def is_sim_visible(rel: Path) -> bool:
    """Whether determinism rules for sim-internal code apply to ``rel``."""
    if rel.name in NON_SIM_FILES:
        return False
    return not (rel.parts and rel.parts[0] in NON_SIM_PACKAGES)


def run_lint(root: Path,
             baseline_path: Optional[Path] = None,
             protocols: Optional[Sequence[ProtocolSpec]] = None,
             rules: Optional[Set[str]] = None) -> LintResult:
    """Lint every module under ``root`` plus the protocol catalogs.

    ``rules`` restricts the run to the named rules when given.
    ``protocols=None`` uses :data:`~repro.analysis.protocol.
    DEFAULT_PROTOCOLS` (which self-skip unless their files exist under
    ``root``); pass ``()`` to disable protocol checks entirely.
    """
    root = root.resolve()
    result = LintResult(root=root)
    files = iter_py_files(root)
    sources: Dict[Path, str] = {}
    trees: Dict[Path, ast.AST] = {}
    spawned: Set[str] = set()
    edges: Dict[str, Set[str]] = {}

    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as err:
            result.parse_errors.append(f"{path}: {err}")
            continue
        sources[path] = text
        trees[path] = tree
        spawned |= collect_spawned(tree)
        for name, callees in collect_yield_edges(tree).items():
            edges.setdefault(name, set()).update(callees)

    # Close the spawn set over yield-from edges across *all* modules:
    # a generator delegated to from a process body is process code,
    # wherever it is defined.
    process_names = close_process_names(spawned, edges)

    raw: List[Finding] = []
    for path, text in sources.items():
        rel = path.relative_to(root)
        result.files_checked += 1
        sim_visible = is_sim_visible(rel)
        raw.extend(lint_source(text, rel.as_posix(),
                               sim_visible=sim_visible,
                               spawned=process_names))
        if sim_visible:
            raw.extend(lint_atomicity(text, rel.as_posix(),
                                      spawned=process_names))
    raw.extend(check_protocols(root, protocols))

    if rules is not None:
        raw = [f for f in raw if f.rule in rules]

    # pragma suppression, per referenced file
    pragma_cache: Dict[str, Dict[int, Set[str]]] = {}
    surviving: List[Finding] = []
    for f in sorted(raw, key=lambda x: (x.path, x.line, x.rule)):
        pragmas = pragma_cache.get(f.path)
        if pragmas is None:
            target = root / f.path
            if target in sources:
                pragmas = parse_pragmas(sources[target],
                                        trees.get(target))
            elif target.exists():
                pragmas = parse_pragmas(
                    target.read_text(encoding="utf-8"))
            else:
                pragmas = {}
            pragma_cache[f.path] = pragmas
        if suppressed(f, pragmas):
            result.pragma_suppressed.append(f)
        else:
            surviving.append(f)

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    result.findings, result.baselined = match_baseline(surviving, baseline)

    # Stale-baseline hygiene: entries whose budget was never consumed
    # point at findings that no longer exist.  When the run is
    # restricted to a rule subset, only entries for those rules can be
    # judged stale (the others were never given a chance to match).
    if baseline is not None:
        used = Baseline.from_findings(result.baselined).entries
        for key in sorted(baseline.entries):
            if rules is not None and key[0] not in rules:
                continue
            leftover = baseline.entries[key] - used.get(key, 0)
            result.stale_baseline.extend([key] * leftover)
    return result
