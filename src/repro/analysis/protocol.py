"""Protocol exhaustiveness checks over message catalogs and dispatchers.

The replication and baseline protocols dispatch frozen-dataclass
messages through ``isinstance`` chains (``core/node.py::_dispatch``,
``baseline/node.py::_dispatch``, plus the handler methods they call).
Nothing ties the catalog in ``messages.py`` to those chains: add a
message type and forget the branch, and the message is silently dropped
by the endpoint — the classic "partition heals but the follower never
catches up" bug class.  These checks close the loop statically:

``unhandled-message``
    A message type that the protocol *sends* (or defines for sending)
    with no ``isinstance`` branch in any dispatcher module.  Reply-only
    types (returned via ``req.respond``/return annotations) and
    component types (only embedded in other messages' fields) are
    exempt automatically.

``dead-message``
    A message type never constructed anywhere outside its defining
    module — catalog rot, or a protocol feature that silently stopped
    being exercised.

``stale-epoch``
    A dispatcher branch for an epoch-carrying message whose handler
    chain never reads ``.epoch``.  Accepting a message from a deposed
    leader without an epoch check is how split-brain sneaks past the
    coordination service (§7.2 of the paper).

``missing-size``
    A wire call (``req.respond``, ``endpoint.send``,
    ``endpoint.request``) that omits its ``size=`` argument and
    silently bills the transport default to the simulated network —
    the bug class where every reply "weighed" 128 bytes regardless of
    payload.  Calls that pass ``size`` positionally or forward
    ``**kwargs`` are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["ProtocolSpec", "MessageInfo", "DEFAULT_PROTOCOLS",
           "check_protocol", "check_protocols", "missing_size_calls"]

PROTOCOL_RULES: Dict[str, str] = {
    "unhandled-message": "message type sent but matched by no "
                         "dispatcher isinstance branch",
    "dead-message": "message type never constructed outside its "
                    "defining module",
    "stale-epoch": "epoch-carrying message handled without an epoch "
                   "check",
    "missing-size": "wire call omits its size= argument and bills the "
                    "transport default to the simulated network",
}


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol: its message catalog and the modules that dispatch
    and construct its messages (paths relative to the lint root)."""

    name: str
    messages: str
    dispatchers: Tuple[str, ...]
    #: modules searched for constructor calls (in addition to the
    #: dispatchers); usually the whole package
    senders: Tuple[str, ...] = ()


#: The repo's real protocols, relative to ``src/repro``.
DEFAULT_PROTOCOLS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="core",
        messages="core/messages.py",
        dispatchers=("core/node.py", "core/replication.py"),
        senders=("core/api.py", "core/recovery.py", "core/election.py",
                 "core/loadbalance.py", "core/masterslave.py",
                 "core/cluster.py", "core/multiop.py",
                 "core/commitqueue.py", "core/rebalance.py"),
    ),
    ProtocolSpec(
        name="baseline",
        messages="baseline/messages.py",
        dispatchers=("baseline/node.py",),
        senders=("baseline/client.py", "baseline/cluster.py"),
    ),
)


@dataclass
class MessageInfo:
    """What the catalog module declares about one message type."""

    name: str
    line: int
    fields: Set[str] = field(default_factory=set)
    #: message classes referenced inside this class's field annotations
    embeds: Set[str] = field(default_factory=set)


def _annotation_names(node: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            for token in sub.value.replace("[", " ").replace("]", " ") \
                    .replace(",", " ").split():
                names.add(token.strip("'\" "))
    return names


def parse_catalog(source: str, path: str) -> Dict[str, MessageInfo]:
    """Top-level dataclasses of a messages module, with their fields."""
    tree = ast.parse(source, filename=path)
    catalog: Dict[str, MessageInfo] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        is_dataclass = any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Call)
                and isinstance(dec.func, (ast.Name, ast.Attribute))
                and (getattr(dec.func, "id", None) == "dataclass"
                     or getattr(dec.func, "attr", None) == "dataclass"))
            for dec in node.decorator_list)
        if not is_dataclass:
            continue
        info = MessageInfo(name=node.name, line=node.lineno)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                              ast.Name):
                info.fields.add(stmt.target.id)
                info.embeds |= _annotation_names(stmt.annotation)
        catalog[node.name] = info
    # keep only embeds that are sibling message types
    for info in catalog.values():
        info.embeds &= set(catalog) - {info.name}
    return catalog


# ---------------------------------------------------------------------------
# Dispatcher-side facts
# ---------------------------------------------------------------------------

def _isinstance_targets(call: ast.Call) -> Set[str]:
    """Class names matched by an ``isinstance(x, T)`` call."""
    if len(call.args) != 2:
        return set()
    spec = call.args[1]
    names: Set[str] = set()
    candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    for cand in candidates:
        if isinstance(cand, ast.Name):
            names.add(cand.id)
        elif isinstance(cand, ast.Attribute):
            names.add(cand.attr)
    return names


@dataclass
class DispatcherFacts:
    """Everything the checker needs from one dispatcher module."""

    path: str
    handled: Dict[str, int] = field(default_factory=dict)  # type -> line
    #: isinstance line -> method names called in that branch's body
    branch_calls: Dict[str, Set[str]] = field(default_factory=dict)
    #: isinstance line -> whether the branch body references ``epoch``
    branch_epoch: Dict[str, bool] = field(default_factory=dict)
    #: method name -> whether its body references ``epoch``
    method_epoch: Dict[str, bool] = field(default_factory=dict)
    #: method name -> method names it calls
    method_calls: Dict[str, Set[str]] = field(default_factory=dict)
    return_annotations: Set[str] = field(default_factory=set)


def _called_names(nodes: Sequence[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    names.add(func.attr)
                elif isinstance(func, ast.Name):
                    names.add(func.id)
    return names


def _mentions_epoch(nodes: Sequence[ast.stmt]) -> bool:
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Attribute) and sub.attr == "epoch":
                return True
            if isinstance(sub, ast.Name) and sub.id == "epoch":
                return True
    return False


def parse_dispatcher(source: str, path: str) -> DispatcherFacts:
    tree = ast.parse(source, filename=path)
    facts = DispatcherFacts(path=path)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.method_epoch[node.name] = _mentions_epoch(node.body)
            facts.method_calls[node.name] = _called_names(node.body)
            if node.returns is not None:
                facts.return_annotations |= _annotation_names(node.returns)
        if isinstance(node, ast.If):
            test = node.test
            calls = [sub for sub in ast.walk(test)
                     if isinstance(sub, ast.Call)
                     and isinstance(sub.func, ast.Name)
                     and sub.func.id == "isinstance"]
            for call in calls:
                for target in _isinstance_targets(call):
                    facts.handled.setdefault(target, node.lineno)
                    facts.branch_calls.setdefault(target, set()).update(
                        _called_names(node.body))
                    facts.branch_epoch[target] = (
                        facts.branch_epoch.get(target, False)
                        or _mentions_epoch(node.body)
                        or _mentions_epoch([ast.Expr(value=test)]))
    return facts


#: minimum positional-arg count that covers ``size`` positionally
_TRANSPORT_ARITY = {"respond": 2, "send": 3, "request": 3}


def missing_size_calls(source: str, path: str,
                       catalog: Dict[str, MessageInfo],
                       proto: str) -> List[Finding]:
    """Wire calls in one module that omit their ``size=`` argument.

    ``respond`` lives only on request objects, so every receiver
    counts; ``send``/``request`` are matched only on ``endpoint``
    receivers (``self.endpoint``, ``node.endpoint``, a bare
    ``endpoint``) so generator ``.send()`` and the like stay exempt.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        meth = node.func.attr
        arity = _TRANSPORT_ARITY.get(meth)
        if arity is None:
            continue
        if meth in ("send", "request"):
            base = node.func.value
            base_name = base.attr if isinstance(base, ast.Attribute) \
                else base.id if isinstance(base, ast.Name) else ""
            if base_name != "endpoint":
                continue
        if any(kw.arg == "size" or kw.arg is None
               for kw in node.keywords):
            continue              # explicit size, or **kwargs forwards it
        if len(node.args) >= arity:
            continue              # size passed positionally
        payload_idx = 0 if meth == "respond" else 1
        carrying = ""
        if len(node.args) > payload_idx:
            arg = node.args[payload_idx]
            if isinstance(arg, ast.Call):
                fname = getattr(arg.func, "id",
                                getattr(arg.func, "attr", None))
                if fname in catalog:
                    carrying = f" carrying {fname}"
        code = ""
        if 1 <= node.lineno <= len(lines):
            code = lines[node.lineno - 1].strip()
        findings.append(Finding(
            rule="missing-size", path=path, line=node.lineno,
            message=f"[{proto}] {meth}(){carrying} omits size=: "
                    f"{PROTOCOL_RULES['missing-size']}",
            code=code))
    return findings


def _constructed_names(source: str, path: str) -> Set[str]:
    """Class names instantiated anywhere in a module (CamelCase calls)."""
    tree = ast.parse(source, filename=path)
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name and name[:1].isupper():
                names.add(name)
    return names


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------

def check_protocol(spec: ProtocolSpec, root: Path) -> List[Finding]:
    messages_path = root / spec.messages
    source = messages_path.read_text(encoding="utf-8")
    catalog = parse_catalog(source, spec.messages)

    dispatcher_facts: List[DispatcherFacts] = []
    for rel in spec.dispatchers:
        text = (root / rel).read_text(encoding="utf-8")
        dispatcher_facts.append(parse_dispatcher(text, rel))

    findings: List[Finding] = []
    constructed: Set[str] = set()
    reply_types: Set[str] = set()
    for rel in spec.dispatchers + spec.senders:
        full = root / rel
        if not full.exists():
            continue
        text = full.read_text(encoding="utf-8")
        constructed |= _constructed_names(text, rel)
        reply_types |= parse_dispatcher(text, rel).return_annotations
        findings.extend(missing_size_calls(text, rel, catalog, spec.name))

    handled: Set[str] = set()
    for facts in dispatcher_facts:
        handled |= set(facts.handled)

    components = {name for info in catalog.values() for name in info.embeds}

    lines = source.splitlines()

    def catalog_code(info: MessageInfo) -> str:
        if 1 <= info.line <= len(lines):
            return lines[info.line - 1].strip()
        return ""

    for name in sorted(catalog):
        info = catalog[name]
        is_dead = name not in constructed
        if is_dead:
            findings.append(Finding(
                rule="dead-message", path=spec.messages, line=info.line,
                message=f"[{spec.name}] {name} is never constructed "
                        f"outside {spec.messages}: "
                        f"{PROTOCOL_RULES['dead-message']}",
                code=catalog_code(info)))
        if (name not in handled and name not in reply_types
                and name not in components and not is_dead):
            findings.append(Finding(
                rule="unhandled-message", path=spec.messages,
                line=info.line,
                message=f"[{spec.name}] {name} is sent but no dispatcher "
                        f"in {', '.join(spec.dispatchers)} handles it",
                code=catalog_code(info)))

    # stale-epoch: the handler chain of an epoch-carrying message must
    # read .epoch somewhere (the branch itself or a method it calls,
    # resolved by name across the dispatcher modules, one level deep).
    method_epoch: Dict[str, bool] = {}
    method_calls: Dict[str, Set[str]] = {}
    for facts in dispatcher_facts:
        for meth, has in facts.method_epoch.items():
            method_epoch[meth] = method_epoch.get(meth, False) or has
        for meth, calls in facts.method_calls.items():
            method_calls.setdefault(meth, set()).update(calls)

    def chain_checks_epoch(facts: DispatcherFacts, name: str) -> bool:
        if facts.branch_epoch.get(name, False):
            return True
        seen: Set[str] = set()
        frontier = list(facts.branch_calls.get(name, ()))
        while frontier:
            meth = frontier.pop()
            if meth in seen:
                continue
            seen.add(meth)
            if method_epoch.get(meth, False):
                return True
            frontier.extend(method_calls.get(meth, ()))
        return False

    for facts in dispatcher_facts:
        text = (root / facts.path).read_text(encoding="utf-8")
        disp_lines = text.splitlines()
        for name, line in sorted(facts.handled.items()):
            info = catalog.get(name)
            if info is None or "epoch" not in info.fields:
                continue
            if not chain_checks_epoch(facts, name):
                code = ""
                if 1 <= line <= len(disp_lines):
                    code = disp_lines[line - 1].strip()
                findings.append(Finding(
                    rule="stale-epoch", path=facts.path, line=line,
                    message=f"[{spec.name}] {name} carries an epoch but "
                            f"its handler chain never reads it: "
                            f"{PROTOCOL_RULES['stale-epoch']}",
                    code=code))
    return findings


def check_protocols(root: Path,
                    specs: Optional[Sequence[ProtocolSpec]] = None
                    ) -> List[Finding]:
    """Run every protocol spec whose files exist under ``root``."""
    findings: List[Finding] = []
    for spec in (specs if specs is not None else DEFAULT_PROTOCOLS):
        if not (root / spec.messages).exists():
            continue
        findings.extend(check_protocol(spec, root))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
