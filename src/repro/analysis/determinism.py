"""AST determinism lints for simulation-visible code.

The simulator's contract is that a run is a pure function of ``(seed,
config)``.  Python makes that easy to break silently: an ``import
random`` picks up ambient global state, ``time.time()`` leaks the wall
clock, iterating a ``set`` of objects visits them in address order, and
a process that yields a non-:class:`~repro.sim.events.Event` dies at
runtime in whatever schedule happens to reach it first.  Each rule here
catches one of those hazard classes at parse time:

``nondet-import``
    Ambient entropy: importing ``random``/``secrets``/``uuid``/``time``/
    ``datetime``, or calling ``time.time()``, ``datetime.now()``,
    ``os.urandom()``, ``uuid.uuid4()`` etc.  All randomness must come
    from :class:`~repro.sim.rng.RngRegistry` streams.

``real-io``
    Real-world side effects inside the simulation: ``threading`` /
    ``subprocess`` / ``socket`` / ``asyncio`` imports, and ``open()`` /
    ``print()`` / ``input()`` calls.  Sim code talks to the simulated
    network and disks only.

``set-iteration``
    Order-escaping iteration over a ``set``: a ``for`` loop, list
    comprehension, or ``list()``/``tuple()`` materialization of a set
    expression that is not wrapped in ``sorted()``.  Sets of objects
    iterate in address order, which varies run to run.

``dict-order``
    A ``for`` loop over ``.keys()``/``.values()``/``.items()`` whose
    body performs scheduling-visible effects (spawning, scheduling,
    sending, responding, interrupting, crashing...).  Dict order is
    insertion order in CPython, which is deterministic *only if* the
    insertion order itself is; such loops must either ``sorted(...)``
    or carry a pragma justifying the insertion order.

``id-hash-order``
    ``id()`` or ``hash()`` used as an ordering key (``sorted(xs,
    key=id)`` and friends).  Addresses and object hashes vary between
    runs.

``yield-discipline``
    A ``yield`` of a literal/constant inside a *process* body.  Every
    ``yield`` in a generator driven by :class:`~repro.sim.process.Process`
    must produce an ``Event``; yielding ``None`` or a literal is a
    guaranteed runtime failure.  Process bodies are found by tracing
    ``spawn(...)``/``spawn_proc(...)``/``Process(...)`` call sites and
    closing over ``yield from`` edges.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import Finding

__all__ = ["DETERMINISM_RULES", "collect_spawned", "collect_yield_edges",
           "close_process_names", "lint_source"]

DETERMINISM_RULES: Dict[str, str] = {
    "nondet-import": "ambient randomness or wall-clock access; use "
                     "RngRegistry streams and sim.now",
    "real-io": "real I/O or threading inside simulation code",
    "set-iteration": "order-escaping iteration over a set; wrap in "
                     "sorted(...)",
    "dict-order": "dict iteration order feeds scheduling; sort or "
                  "justify insertion order with a pragma",
    "id-hash-order": "id()/hash() used as an ordering key",
    "yield-discipline": "process bodies must yield sim Events, not "
                        "literals",
}

#: modules whose mere import is an entropy hazard
_NONDET_MODULES = {"random", "secrets", "uuid", "time", "datetime"}
#: modules that mean real-world concurrency or I/O
_REAL_IO_MODULES = {"threading", "subprocess", "socket", "asyncio",
                    "multiprocessing", "selectors", "concurrent",
                    "signal"}
#: ``module.attr`` calls that read ambient entropy / wall clock
_NONDET_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "time_ns"), ("time", "monotonic_ns"), ("time", "sleep"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"), ("os", "getrandom"),
    ("uuid", "uuid1"), ("uuid", "uuid3"), ("uuid", "uuid4"),
    ("uuid", "uuid5"),
}
_REAL_IO_CALLS = {"open", "input", "print"}
#: callables whose invocation inside a loop body makes the iteration
#: order scheduling- or message-order-visible
_EFFECT_NAMES = {
    "spawn", "spawn_proc", "schedule", "call_at", "send", "request",
    "respond", "interrupt", "crash", "restart", "boot", "lose_disk",
    "expire_session_now", "succeed", "fail", "block", "heal",
    "set_drop_rate", "set_extra_delay", "step_down", "force", "append",
    # topology: placement insertion order is observable (placed_in_dc),
    # so placing endpoints while iterating a dict is a hazard
    "place",
}
_SPAWN_NAMES = {"spawn", "spawn_proc", "Process"}
#: reducers whose result does not depend on iteration order
_ORDER_INSENSITIVE = {"sorted", "len", "sum", "min", "max", "set",
                      "frozenset", "any", "all"}


def _call_name(func: ast.expr) -> Optional[str]:
    """The bare name a call targets: ``f(...)`` -> f, ``a.b.f(...)`` -> f."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attr_base_name(func: ast.expr) -> Optional[str]:
    """``time.time`` -> 'time'; ``datetime.datetime.now`` -> 'datetime'."""
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


def _is_sorted_wrapped(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and _call_name(node.func) == "sorted")


# ---------------------------------------------------------------------------
# Process-body discovery (for yield-discipline)
# ---------------------------------------------------------------------------

def collect_spawned(tree: ast.AST) -> Set[str]:
    """Names of generator functions handed to ``spawn``-like calls.

    Matches ``spawn(sim, writer(...))``, ``self.spawn(self._flush(), ..)``,
    ``Process(sim, gen(...))`` — the first ``Call`` argument names the
    process body.
    """
    spawned: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node.func) not in _SPAWN_NAMES:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Call):
                name = _call_name(arg.func)
                if name is not None:
                    spawned.add(name)
    return spawned


def collect_yield_edges(tree: ast.AST) -> Dict[str, Set[str]]:
    """``f -> {g, ...}`` when generator ``f`` contains ``yield from g(...)``.

    Used to close the process-name set: a generator delegated to from a
    process body is itself process code.
    """
    edges: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.YieldFrom) and isinstance(sub.value,
                                                            ast.Call):
                callee = _call_name(sub.value.func)
                if callee is not None:
                    edges.setdefault(node.name, set()).add(callee)
    return edges


def close_process_names(spawned: Iterable[str],
                        edges: Dict[str, Set[str]]) -> Set[str]:
    """Transitive closure of the spawned set over yield-from edges."""
    closed = set(spawned)
    frontier = list(closed)
    while frontier:
        name = frontier.pop()
        for callee in edges.get(name, ()):
            if callee not in closed:
                closed.add(callee)
                frontier.append(callee)
    return closed


# ---------------------------------------------------------------------------
# Set-typed expression tracking
# ---------------------------------------------------------------------------

def _annotation_is_set(ann: ast.expr) -> bool:
    if isinstance(ann, ast.Name):
        return ann.id in {"set", "frozenset", "Set", "FrozenSet",
                          "MutableSet"}
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set(ann.value)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return head in {"set", "frozenset", "Set", "FrozenSet",
                        "MutableSet"}
    return False


def _expr_is_set_literalish(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node.func) in {"set", "frozenset"}
    return False


class _SetNames(ast.NodeVisitor):
    """Collect plain names and attribute names bound to set values."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()

    def _record(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _expr_is_set_literalish(node.value):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (_annotation_is_set(node.annotation)
                or (node.value is not None
                    and _expr_is_set_literalish(node.value))):
            self._record(node.target)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# The linter proper
# ---------------------------------------------------------------------------

class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str], sim_visible: bool,
                 process_names: Set[str], set_names: Set[str],
                 set_attrs: Set[str]) -> None:
        self.path = path
        self.lines = lines
        self.sim_visible = sim_visible
        self.process_names = process_names
        self.set_names = set_names
        self.set_attrs = set_attrs
        self.findings: List[Finding] = []
        self._func_stack: List[ast.FunctionDef] = []

    # -- helpers -----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        code = ""
        if 1 <= line <= len(self.lines):
            code = self.lines[line - 1].strip()
        self.findings.append(Finding(rule=rule, path=self.path, line=line,
                                     message=message, code=code))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if _expr_is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        return False

    def _is_dict_view(self, node: ast.expr) -> bool:
        """``x.keys() / .values() / .items()``, possibly list()-wrapped."""
        if (isinstance(node, ast.Call)
                and _call_name(node.func) in {"list", "tuple"}
                and len(node.args) == 1):
            node = node.args[0]
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"keys", "values", "items"}
                and not node.args)

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in _NONDET_MODULES:
                self._emit("nondet-import", node,
                           f"import of {alias.name!r}: "
                           f"{DETERMINISM_RULES['nondet-import']}")
            elif self.sim_visible and root in _REAL_IO_MODULES:
                self._emit("real-io", node,
                           f"import of {alias.name!r}: "
                           f"{DETERMINISM_RULES['real-io']}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if node.level == 0 and root in _NONDET_MODULES:
            self._emit("nondet-import", node,
                       f"import from {node.module!r}: "
                       f"{DETERMINISM_RULES['nondet-import']}")
        elif (node.level == 0 and self.sim_visible
                and root in _REAL_IO_MODULES):
            self._emit("real-io", node,
                       f"import from {node.module!r}: "
                       f"{DETERMINISM_RULES['real-io']}")
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        base = _attr_base_name(node.func)
        if base is not None and (base, name) in _NONDET_CALLS:
            self._emit("nondet-import", node,
                       f"call to {base}.{name}(): "
                       f"{DETERMINISM_RULES['nondet-import']}")
        if (self.sim_visible and isinstance(node.func, ast.Name)
                and name in _REAL_IO_CALLS):
            self._emit("real-io", node,
                       f"call to {name}(): real I/O in simulation code")
        # id()/hash() as ordering keys inside sorted()/min()/max()
        if name in {"sorted", "min", "max"}:
            for kw in node.keywords:
                if kw.arg == "key":
                    self._check_order_key(kw.value)
        # list(s)/tuple(s) over a set expression
        if (self.sim_visible and name in {"list", "tuple"}
                and len(node.args) == 1
                and self._is_set_expr(node.args[0])):
            self._emit("set-iteration", node,
                       f"{name}() over a set: "
                       f"{DETERMINISM_RULES['set-iteration']}")
        self.generic_visit(node)

    def _check_order_key(self, key: ast.expr) -> None:
        hazard = None
        if isinstance(key, ast.Name) and key.id in {"id", "hash"}:
            hazard = key.id
        elif isinstance(key, ast.Lambda):
            for sub in ast.walk(key.body):
                if (isinstance(sub, ast.Call)
                        and _call_name(sub.func) in {"id", "hash"}):
                    hazard = _call_name(sub.func)
                    break
        if hazard is not None:
            self._emit("id-hash-order", key,
                       f"ordering by {hazard}(): "
                       f"{DETERMINISM_RULES['id-hash-order']}")

    # -- iteration ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self.sim_visible and not _is_sorted_wrapped(node.iter):
            if self._is_set_expr(node.iter):
                self._emit("set-iteration", node,
                           "for-loop over a set: "
                           f"{DETERMINISM_RULES['set-iteration']}")
            elif (self._is_dict_view(node.iter)
                    and self._body_has_effects(node.body)):
                self._emit("dict-order", node,
                           "scheduling-visible loop over a dict view: "
                           f"{DETERMINISM_RULES['dict-order']}")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self.sim_visible:
            for gen in node.generators:
                if (self._is_set_expr(gen.iter)
                        and not _is_sorted_wrapped(gen.iter)):
                    self._emit("set-iteration", node,
                               "list comprehension over a set: "
                               f"{DETERMINISM_RULES['set-iteration']}")
        self.generic_visit(node)

    def _body_has_effects(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return True
                if (isinstance(sub, ast.Call)
                        and _call_name(sub.func) in _EFFECT_NAMES):
                    return True
        return False

    # -- yield discipline ---------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        if self.sim_visible and node.name in self.process_names:
            self._check_yields(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_yields(self, func: ast.FunctionDef) -> None:
        # Walk the function body without descending into nested defs:
        # those are separate generators checked on their own visit.
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(sub))
            if not isinstance(sub, ast.Yield):
                continue
            value = sub.value
            bad: Optional[str] = None
            if value is None:
                bad = "bare yield"
            elif isinstance(value, ast.Constant):
                bad = f"yield of constant {value.value!r}"
            elif isinstance(value, (ast.Tuple, ast.List, ast.Dict,
                                    ast.Set, ast.JoinedStr)):
                bad = "yield of a literal container"
            if bad is not None:
                self._emit("yield-discipline", sub,
                           f"{bad} in process {func.name!r}: "
                           f"{DETERMINISM_RULES['yield-discipline']}")


def lint_source(source: str, path: str, sim_visible: bool = True,
                spawned: Iterable[str] = ()) -> List[Finding]:
    """Run every determinism rule over one module's source.

    ``spawned`` carries process-body names discovered in *other*
    modules (a generator defined here may be spawned elsewhere).
    Pragmas and baseline are applied by the runner, not here.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    local_spawned = collect_spawned(tree) | set(spawned)
    edges = collect_yield_edges(tree)
    process_names = close_process_names(local_spawned, edges)
    set_collector = _SetNames()
    set_collector.visit(tree)
    linter = _Linter(path, lines, sim_visible, process_names,
                     set_collector.names, set_collector.attrs)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.line, f.rule))
