"""``python -m repro lint`` — run the static-analysis suite.

Exit status is 0 when the tree is clean (modulo pragmas and the
checked-in baseline) and 1 when any new finding or parse error
survives, so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .atomicity import ATOMICITY_RULES
from .determinism import DETERMINISM_RULES
from .findings import Baseline
from .protocol import PROTOCOL_RULES
from .runner import LintResult, run_lint

__all__ = ["main"]

ALL_RULES = {**DETERMINISM_RULES, **ATOMICITY_RULES, **PROTOCOL_RULES}


def _default_root() -> Path:
    """The installed ``repro`` package's source directory."""
    return Path(__file__).resolve().parent.parent


def _default_baseline(root: Path) -> Optional[Path]:
    """``lint-baseline.json`` next to ``pyproject.toml``, if any."""
    for candidate in (root, *root.parents):
        if (candidate / "pyproject.toml").exists():
            path = candidate / "lint-baseline.json"
            return path if path.exists() else None
    return None


def _format_text(result: LintResult, verbose: bool) -> List[str]:
    lines = [f.format() for f in result.findings]
    lines.extend(f"parse error: {err}" for err in result.parse_errors)
    lines.extend(f"stale baseline entry: [{rule}] {path} :: {code!r} "
                 f"(run --prune-baseline)"
                 for rule, path, code in result.stale_baseline)
    summary = (f"checked {result.files_checked} files: "
               f"{len(result.findings)} new finding(s), "
               f"{len(result.baselined)} baselined, "
               f"{len(result.pragma_suppressed)} pragma-suppressed, "
               f"{len(result.stale_baseline)} stale baseline entries")
    if verbose:
        lines.extend(f"baselined: {f.format()}" for f in result.baselined)
        lines.extend(f"suppressed: {f.format()}"
                     for f in result.pragma_suppressed)
    lines.append(summary)
    lines.append("OK" if result.ok else "FAIL")
    return lines


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Determinism & protocol lint suite.  Flags "
                    "nondeterminism hazards in simulation-visible code "
                    "and unhandled/dead protocol message types.  "
                    "Suppress intentional uses with '# lint: "
                    "allow(<rule>)' or the checked-in baseline.")
    parser.add_argument("path", nargs="?", default=None,
                        help="tree to lint (default: the repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: lint-baseline.json "
                             "next to pyproject.toml)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report pre-existing findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline with every current "
                             "finding and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that no longer "
                             "match any finding and rewrite the file")
    parser.add_argument("--rule", action="append", dest="rules",
                        choices=sorted(ALL_RULES),
                        help="run only the named rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also show baselined/suppressed findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(ALL_RULES):
            print(f"{rule:<20s} {ALL_RULES[rule]}")
        return 0

    root = Path(args.path) if args.path else _default_root()
    if not root.exists():
        print(f"no such path: {root}", file=sys.stderr)
        return 2

    if args.baseline is not None:
        baseline_path: Optional[Path] = Path(args.baseline)
    elif args.no_baseline:
        baseline_path = None
    else:
        baseline_path = _default_baseline(root.resolve())

    rules = set(args.rules) if args.rules else None
    if args.prune_baseline and rules is not None:
        print("--prune-baseline cannot be combined with --rule: a "
              "restricted run cannot tell which entries are stale",
              file=sys.stderr)
        return 2
    if args.prune_baseline and (baseline_path is None
                                or not baseline_path.exists()):
        print("--prune-baseline: no baseline file to prune",
              file=sys.stderr)
        return 2

    result = run_lint(root, baseline_path=baseline_path, rules=rules)

    if args.prune_baseline:
        dropped = len(result.stale_baseline)
        Baseline.from_findings(result.baselined).dump(baseline_path)
        print(f"pruned {dropped} stale entr{'y' if dropped == 1 else 'ies'} "
              f"from {baseline_path} "
              f"({len(result.baselined)} kept)")
        result.stale_baseline = []

    if args.write_baseline:
        target = (Path(args.baseline) if args.baseline
                  else (baseline_path
                        or Path.cwd() / "lint-baseline.json"))
        Baseline.from_findings(result.all_raw()).dump(target)
        print(f"wrote {len(result.all_raw())} finding(s) to {target}")
        return 0

    if args.as_json:
        print(json.dumps({
            "root": str(result.root),
            "files_checked": result.files_checked,
            "findings": [f.to_json() for f in result.findings],
            "baselined": [f.to_json() for f in result.baselined],
            "pragma_suppressed": [f.to_json()
                                  for f in result.pragma_suppressed],
            "parse_errors": result.parse_errors,
            "stale_baseline": [
                {"rule": rule, "path": path, "code": code}
                for rule, path, code in result.stale_baseline],
            "ok": result.ok,
        }, indent=2))
    else:
        print("\n".join(_format_text(result, args.verbose)))
    return 0 if result.ok else 1
