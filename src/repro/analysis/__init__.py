"""Static analysis for the reproduction: determinism & protocol lints.

Everything the simulator proves — chaos regressions, shrunk schedules,
benchmark numbers — rests on one property: a run is a pure function of
``(seed, config)``.  This package enforces that property *statically*:

- :mod:`~repro.analysis.determinism` walks every module's AST and flags
  nondeterminism hazards (ambient randomness, wall-clock reads, real
  I/O, order-escaping ``set`` iteration, scheduling-visible ``dict``
  iteration, ``id()``/``hash()`` ordering, and non-``Event`` yields in
  process bodies);
- :mod:`~repro.analysis.atomicity` splits each process body into
  *yield segments* and flags check-then-act races across yields
  (stale guard snapshots, unguarded post-yield state writes, and
  collections mutated mid-iteration across a yield);
- :mod:`~repro.analysis.protocol` cross-references the frozen-dataclass
  message catalogs against the ``isinstance``-chain dispatchers and
  reports unhandled, dead, epoch-unchecked, and size-less message
  types;
- :mod:`~repro.analysis.findings` provides the shared finding model,
  ``# lint: allow(<rule>)`` pragma suppression, and the checked-in
  baseline mechanism;
- :mod:`~repro.analysis.runner` ties it together and
  :mod:`~repro.analysis.cli` exposes ``python -m repro lint``.
"""

from __future__ import annotations

from .atomicity import (ATOMICITY_RULES, DEFAULT_GUARD_ATTRS,
                        lint_atomicity)
from .determinism import DETERMINISM_RULES, lint_source
from .findings import (Baseline, Finding, match_baseline, parse_pragmas,
                       suppressed)
from .protocol import (DEFAULT_PROTOCOLS, ProtocolSpec, check_protocol,
                       check_protocols)
from .runner import LintResult, run_lint

__all__ = [
    "ATOMICITY_RULES",
    "Baseline",
    "DEFAULT_GUARD_ATTRS",
    "DEFAULT_PROTOCOLS",
    "DETERMINISM_RULES",
    "Finding",
    "LintResult",
    "ProtocolSpec",
    "check_protocol",
    "check_protocols",
    "lint_atomicity",
    "lint_source",
    "match_baseline",
    "parse_pragmas",
    "run_lint",
    "suppressed",
]
