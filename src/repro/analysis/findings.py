"""Finding model, pragma suppression, and the checked-in baseline.

A finding pins a rule violation to ``path:line``.  Two escape hatches
keep intentional uses green without weakening the gate for new code:

**Pragmas** — ``# lint: allow(rule-a, rule-b)`` on the offending line
(or the line directly above it) suppresses those rules for that line.
Pragmas are the right tool when the code is *correct* and the reason
fits in the comment ("insertion order: cohorts registered in sorted
order at build time").

**Baseline** — a checked-in JSON file listing tolerated findings.  Each
entry is matched by ``(rule, path, code)`` where ``code`` is the
stripped source line, *not* the line number, so unrelated edits above a
baselined site do not resurrect it.  Duplicate source lines are matched
with multiplicity.  The baseline is for pre-existing debt; new code
should be clean or carry a pragma with its justification.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Finding", "Baseline", "parse_pragmas", "statement_spans",
           "suppressed", "match_baseline"]

#: ``# lint: allow(rule-a, rule-b)`` — also tolerates ``lint:allow``.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str           # repo-relative, forward slashes
    line: int           # 1-indexed
    message: str
    code: str = ""      # stripped source line, used for baseline matching

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message, "code": self.code}


def statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line spans covered by each statement, for pragma attachment.

    Simple statements span their full extent (so a pragma on any
    continuation line of a multi-line call covers the whole call);
    compound statements (``if``/``for``/``def``...) span their header
    only, so a pragma inside a block never blankets the block.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):  # type: ignore[arg-type]
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", start) or start
        body = getattr(node, "body", None)
        if isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            end = body[0].lineno - 1
        if end >= start:
            spans.append((start, end))
    return spans


def parse_pragmas(source: str,
                  tree: Optional[ast.AST] = None
                  ) -> Dict[int, Set[str]]:
    """Map line number -> set of rule names allowed on that line.

    A pragma covers its own line and the line below it, so both styles
    work::

        for proc in procs:  # lint: allow(set-iteration)

        # lint: allow(dict-order)  -- insertion order is build order
        for name, node in self.nodes.items():

    When the module's parsed ``tree`` is supplied, a pragma anywhere
    inside a multi-line statement additionally covers that whole
    statement, so findings anchored to the first line of a long call
    can be suppressed from any of its continuation lines.
    """
    allowed: Dict[int, Set[str]] = {}
    spans = statement_spans(tree) if tree is not None else []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(text)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        targets = {lineno, lineno + 1}
        for start, end in spans:
            if start <= lineno <= end and end > start:
                targets.update(range(start, end + 1))
        for target in targets:
            allowed.setdefault(target, set()).update(rules)
    return allowed


def suppressed(finding: Finding, pragmas: Dict[int, Set[str]]) -> bool:
    rules = pragmas.get(finding.line)
    if not rules:
        return False
    return finding.rule in rules or "*" in rules


@dataclass
class Baseline:
    """Tolerated findings, keyed by ``(rule, path, code)`` with counts."""

    entries: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        baseline = cls()
        for item in data.get("findings", []):
            key = (item["rule"], item["path"], item.get("code", ""))
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for f in findings:
            key = (f.rule, f.path, f.code)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    def dump(self, path: Path) -> None:
        items = []
        for (rule, fpath, code), count in sorted(self.entries.items()):
            items.extend({"rule": rule, "path": fpath, "code": code}
                         for _ in range(count))
        path.write_text(
            json.dumps({"comment": "Tolerated pre-existing lint findings; "
                                   "see DESIGN.md 'Determinism rules'.",
                        "findings": items},
                       indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def match_baseline(findings: List[Finding],
                   baseline: Optional[Baseline]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined), consuming baseline budget
    with multiplicity."""
    if baseline is None:
        return list(findings), []
    budget = dict(baseline.entries)
    new: List[Finding] = []
    old: List[Finding] = []
    for f in findings:
        key = (f.rule, f.path, f.code)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            old.append(f)
        else:
            new.append(f)
    return new, old
