"""Cross-yield atomicity lints: static check-then-act race detection.

Cooperative protocol code runs inside generator *processes*: every
``yield`` is a point where the rest of the world may move — elections
depose leaders, epochs advance, commit queues drain, membership and
range maps change.  The paper's safety argument (§4–6) leans on
leaders re-checking their authority at every decision point.  These
rules enforce that discipline statically.

The unit of analysis is the **yield segment**: the run of code between
two yields inside one generator, which executes atomically under the
cooperative scheduler.  Each sim-visible process body (discovered with
the same ``spawn``/``yield from`` closure the yield-discipline rule
uses, extended across modules by the runner) is split into segments,
and per-segment read/write/guard sets over tracked receivers (``self``
plus parameters and their attribute aliases) drive three rules:

``stale-guard-across-yield``
    A guard attribute (epoch, term, role, leader/status flags,
    versions, generations — a configurable seed list plus names
    compared in ``if``/``while`` guards) snapshotted into a local (or
    passed in as a guard-named parameter) before a yield and used
    after it without re-reading the live attribute.  The canonical
    safe idiom re-reads: ``if not self.is_leader or self.epoch !=
    epoch: return``.

``write-after-yield-unguarded``
    Replicated/protocol state written in a post-yield segment whose
    dominating guards were all established before the yield.  A write
    is considered guarded when its segment re-tests any tracked
    attribute (an ``if``/``while`` guard since the last yield) or
    re-reads the written attribute itself — so monotonic merges like
    ``self.committed_lsn = max(self.committed_lsn, new)`` and
    counters (``+=``) are exempt.

``mutate-while-iterating``
    A live collection iterated by a loop whose body both yields and
    mutates the same collection.  Another process can interleave at
    the yield and observe (or trip over) the half-mutated state;
    iterate a snapshot (``list(self.peers)``) instead.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .determinism import (close_process_names, collect_spawned,
                          collect_yield_edges)
from .findings import Finding

__all__ = ["ATOMICITY_RULES", "DEFAULT_GUARD_ATTRS", "lint_atomicity"]

ATOMICITY_RULES: Dict[str, str] = {
    "stale-guard-across-yield": "guard value snapshotted before a yield "
                                "and used after it without re-reading "
                                "the live attribute",
    "write-after-yield-unguarded": "protocol state written after a yield "
                                   "with no re-validation since the "
                                   "world last moved",
    "mutate-while-iterating": "collection mutated while a loop over it "
                              "spans a yield; iterate a snapshot",
}

#: Seed guard attributes: authority and freshness markers a process
#: must re-check after any yield before acting on a snapshot of them.
DEFAULT_GUARD_ATTRS: FrozenSet[str] = frozenset({
    "epoch", "term", "role", "leader", "is_leader", "open_for_writes",
    "alive", "migrating", "electing", "status", "map_version",
})
#: Substrings that make any attribute or parameter name guard-like.
_GUARD_MARKERS = ("epoch", "term", "version", "generation", "leader",
                  "status")
#: Attribute names that count as replicated/protocol state for the
#: write-after-yield rule, beyond the name markers below.
_STATE_EXACT = frozenset({
    "open_for_writes", "migrating", "electing", "alive", "zk",
    "catchup_source", "snapshot_seen", "write_block",
})
_STATE_MARKERS = ("epoch", "term", "version", "generation", "leader",
                  "role", "status", "lsn", "floor", "seq", "member")

#: wrappers that snapshot a collection before iterating it
_SNAPSHOT_WRAPPERS = {"list", "tuple", "sorted", "set", "frozenset"}
#: mutating methods on dict/list/set receivers
_MUTATOR_METHODS = {"append", "add", "remove", "discard", "pop",
                    "popitem", "clear", "update", "insert", "extend",
                    "setdefault"}
#: attributes that alias immutable snapshots (message payloads,
#: config) — locals bound through them cannot go stale
_NONSTATE_ALIAS_ATTRS = {"payload", "config"}


def _is_guard_name(name: str, extra: FrozenSet[str] = frozenset()) -> bool:
    if name in DEFAULT_GUARD_ATTRS or name in extra:
        return True
    if name.endswith("_gen") or name == "gen":
        return True
    low = name.lower()
    return any(marker in low for marker in _GUARD_MARKERS)


def _is_state_name(name: str, extra: FrozenSet[str] = frozenset()) -> bool:
    if name in _STATE_EXACT or name in extra:
        return True
    low = name.lower()
    return any(marker in low for marker in _STATE_MARKERS)


def _guard_names_match(attr: str, param: str) -> bool:
    """Does a re-read of attribute ``attr`` refresh guard-named
    parameter ``param``?  (``leader`` ~ ``leader``, ``epoch`` ~
    ``epoch_at_handoff``.)"""
    if attr == param:
        return True
    if len(attr) < 3:
        return False
    return attr in param or param in attr


def _contains_yield(nodes: Iterable[ast.AST]) -> bool:
    """Any yield in the statements, not descending into nested defs."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _all_param_names(args: ast.arguments) -> List[str]:
    params = list(getattr(args, "posonlyargs", ())) + list(args.args)
    params += list(args.kwonlyargs)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            params.append(extra)
    return [a.arg for a in params]


class _Event:
    """One recorded read / use / guard-test / write occurrence."""

    __slots__ = ("seg", "line", "yloops", "nid")

    def __init__(self, seg: int, line: int, yloops: FrozenSet[int],
                 nid: int = 0) -> None:
        self.seg = seg
        self.line = line
        self.yloops = yloops
        self.nid = nid


class _Bind:
    """A local (or parameter) holding a pre-yield guard snapshot."""

    __slots__ = ("var", "base", "attr", "seg", "line", "yloops",
                 "value_id", "is_param")

    def __init__(self, var: str, base: Optional[str], attr: Optional[str],
                 seg: int, line: int, yloops: FrozenSet[int],
                 value_id: int = 0, is_param: bool = False) -> None:
        self.var = var
        self.base = base
        self.attr = attr
        self.seg = seg
        self.line = line
        self.yloops = yloops
        self.value_id = value_id
        self.is_param = is_param


class _Write:
    __slots__ = ("base", "attr", "seg", "line", "yloops")

    def __init__(self, base: str, attr: str, seg: int, line: int,
                 yloops: FrozenSet[int]) -> None:
        self.base = base
        self.attr = attr
        self.seg = seg
        self.line = line
        self.yloops = yloops


class _FuncAnalysis:
    """Segment one process-body generator and apply the three rules."""

    def __init__(self, func: ast.FunctionDef, seed: Set[str],
                 guard_attrs: FrozenSet[str], emit) -> None:
        self.func = func
        self.emit = emit
        self.seg = 0
        #: stack of (loop node id, loop-body-contains-yield)
        self.loops: List[Tuple[int, bool]] = []
        self.tracked = self._collect_tracked(set(seed))
        self.inferred = self._infer_guards()
        self.guard_attrs = frozenset(guard_attrs) | self.inferred
        self.state_attrs = self.guard_attrs
        self.reads: Dict[Tuple[str, str], List[_Event]] = {}
        self.guard_tests: List[_Event] = []
        self.binds: Dict[str, _Bind] = {}
        self.uses: List[Tuple[_Bind, _Event]] = []
        self.writes: List[_Write] = []
        self.mutations: List[Tuple[str, str, int]] = []  # rule (c) hits
        for name in _all_param_names(func.args):
            if name != "self" and _is_guard_name(name, self.guard_attrs):
                self.binds[name] = _Bind(name, None, None, seg=0,
                                         line=func.lineno,
                                         yloops=frozenset(),
                                         is_param=True)

    # -- pre-passes --------------------------------------------------------
    def _own_nodes(self) -> Iterable[ast.AST]:
        """Every node in the body, not descending into nested defs."""
        stack: List[ast.AST] = list(self.func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _collect_tracked(self, tracked: Set[str]) -> Set[str]:
        """Fixpoint of receiver aliases: ``node = replica.node`` makes
        ``node`` a tracked receiver too (but not through ``.payload``)."""
        assigns: List[Tuple[ast.expr, ast.expr]] = []
        for node in self._own_nodes():
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Tuple) and isinstance(value,
                                                                ast.Tuple) \
                        and len(target.elts) == len(value.elts):
                    assigns.extend(zip(target.elts, value.elts))
                else:
                    assigns.append((target, value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigns.append((node.target, node.value))
        changed = True
        while changed:
            changed = False
            for target, value in assigns:
                if not isinstance(target, ast.Name) \
                        or target.id in tracked:
                    continue
                root, attrs = _attr_chain(value)
                if root is None or not attrs:
                    continue
                if root in tracked and not any(
                        a in _NONSTATE_ALIAS_ATTRS for a in attrs):
                    tracked.add(target.id)
                    changed = True
        return tracked

    def _infer_guards(self) -> FrozenSet[str]:
        """Attributes of tracked receivers compared in if/while tests."""
        inferred: Set[str] = set()
        for node in self._own_nodes():
            if not isinstance(node, (ast.If, ast.While, ast.IfExp)):
                continue
            func_positions = {id(sub.func) for sub in ast.walk(node.test)
                              if isinstance(sub, ast.Call)}
            for sub in ast.walk(node.test):
                if (isinstance(sub, ast.Attribute)
                        and id(sub) not in func_positions
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in self.tracked):
                    inferred.add(sub.attr)
        return frozenset(inferred)

    # -- the walk ----------------------------------------------------------
    def run(self) -> None:
        for stmt in self.func.body:
            self._walk(stmt)
        self._report()

    def _yloops(self) -> FrozenSet[int]:
        return frozenset(lid for lid, has_yield in self.loops if has_yield)

    def _event(self, node: ast.AST) -> _Event:
        return _Event(self.seg, getattr(node, "lineno", self.func.lineno),
                      self._yloops(), id(node))

    def _walk(self, node: ast.AST) -> None:
        method = getattr(self, "_walk_" + type(node).__name__, None)
        if method is not None:
            method(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _walk_Yield(self, node: ast.Yield) -> None:
        if node.value is not None:
            self._walk(node.value)
        self.seg += 1

    def _walk_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._walk(node.value)
        self.seg += 1

    def _walk_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            bind = self.binds.get(node.id)
            if bind is not None:
                self.uses.append((bind, self._event(node)))
        else:
            self.binds.pop(node.id, None)

    def _walk_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id in self.tracked):
            self.reads.setdefault((node.value.id, node.attr),
                                  []).append(self._event(node))
        self._walk(node.value)

    def _walk_Assign(self, node: ast.Assign) -> None:
        # ``x.attr = yield from gen(...)`` stores the result of a
        # yield decided on *before* it: a continuation, not a
        # check-then-act race, so rule (b) skips it.
        result_store = _contains_yield([node.value])
        self._walk(node.value)
        for target in node.targets:
            self._store(target, result_store=result_store)
        if len(node.targets) == 1:
            self._maybe_bind(node.targets[0], node.value)

    def _walk_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        result_store = _contains_yield([node.value])
        self._walk(node.value)
        self._store(node.target, result_store=result_store)
        self._maybe_bind(node.target, node.value)

    def _walk_AugAssign(self, node: ast.AugAssign) -> None:
        # ``x.a += 1`` reads its own target: a read-modify-write of
        # live state, not a blind overwrite of a stale decision.
        self._walk(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            self.binds.pop(target.id, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._walk(target.value)

    def _store(self, target: ast.expr,
               result_store: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.binds.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            if (not result_store
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self.tracked
                    and _is_state_name(target.attr, self.state_attrs)):
                self.writes.append(_Write(target.value.id, target.attr,
                                          self.seg, target.lineno,
                                          self._yloops()))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, result_store=result_store)
        elif isinstance(target, (ast.Subscript, ast.Starred)):
            self._walk(target.value)

    def _maybe_bind(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in self.tracked
                and value.value.id != target.id
                and _is_guard_name(value.attr, self.guard_attrs)):
            self.binds[target.id] = _Bind(
                target.id, value.value.id, value.attr, self.seg,
                target.lineno, self._yloops(), value_id=id(value))

    def _walk_test(self, test: ast.expr,
                   record_guard: bool = True) -> bool:
        """Walk an if/while test; when it reads any tracked-receiver
        attribute it is a guard point.  Returns that fact."""
        before = {key: len(evts) for key, evts in self.reads.items()}
        self._walk(test)
        reads_state = any(len(evts) > before.get(key, 0)
                          for key, evts in self.reads.items())
        if reads_state and record_guard:
            self.guard_tests.append(self._event(test))
        return reads_state

    def _walk_If(self, node: ast.If) -> None:
        self._walk_test(node.test)
        for stmt in node.body:
            self._walk(stmt)
        for stmt in node.orelse:
            self._walk(stmt)

    def _walk_While(self, node: ast.While) -> None:
        self._walk_test(node.test)
        has_yield = _contains_yield(node.body)
        self.loops.append((id(node), has_yield))
        for stmt in node.body:
            self._walk(stmt)
        self.loops.pop()
        if has_yield:
            # The test re-executes after every iteration, so its reads
            # are live again in the loop-exit segment — that is what
            # keeps ``while self.epoch == epoch: ... yield`` clean.
            # As a *guard* it only dominates code AFTER the loop (a
            # resumed body runs to the write before the test re-runs),
            # so the guard event is pinned to the loop's last line.
            reads_state = self._walk_test(node.test, record_guard=False)
            if reads_state:
                end = getattr(node, "end_lineno", node.lineno) \
                    or node.lineno
                self.guard_tests.append(
                    _Event(self.seg, end, self._yloops()))
        for stmt in node.orelse:
            self._walk(stmt)

    def _walk_For(self, node: ast.For) -> None:
        self._walk(node.iter)
        has_yield = _contains_yield(node.body)
        live = self._live_iter_target(node.iter)
        if has_yield and live is not None:
            self._check_loop_mutations(node, live)
        self.loops.append((id(node), has_yield))
        self._store(node.target)
        for stmt in node.body:
            self._walk(stmt)
        self.loops.pop()
        for stmt in node.orelse:
            self._walk(stmt)

    def _walk_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested generators are analyzed on their own visit

    _walk_AsyncFunctionDef = _walk_FunctionDef
    _walk_Lambda = _walk_FunctionDef  # type: ignore[assignment]

    # -- rule (c): mutate-while-iterating ----------------------------------
    def _live_iter_target(self, expr: ast.expr
                          ) -> Optional[Tuple[str, str]]:
        """(base, attr) when the loop iterates a live collection
        attribute (directly or via a dict view), else None."""
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in {"keys", "values", "items"}
                and not expr.args):
            expr = expr.func.value
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id in self.tracked):
            return expr.value.id, expr.attr
        return None

    def _check_loop_mutations(self, loop: ast.For,
                              live: Tuple[str, str]) -> None:
        base, attr = live

        def is_target(expr: ast.expr) -> bool:
            return (isinstance(expr, ast.Attribute)
                    and expr.attr == attr
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == base)

        seen_lines: Set[int] = set()
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            hit = None
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and is_target(node.func.value)):
                hit = f".{node.func.attr}()"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if is_target(target) or (
                            isinstance(target, ast.Subscript)
                            and is_target(target.value)):
                        hit = "assignment"
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and is_target(target.value):
                        hit = "del"
            if hit is not None and node.lineno not in seen_lines:
                seen_lines.add(node.lineno)
                self.emit("mutate-while-iterating", node,
                          f"'{base}.{attr}' is mutated ({hit}) inside a "
                          f"loop over it that also yields; iterate a "
                          f"snapshot (list({base}.{attr})) instead")

    # -- reporting ---------------------------------------------------------
    def _revalidated(self, bind: _Bind, use: _Event) -> bool:
        if bind.is_param:
            for (_, attr), events in self.reads.items():
                if not _guard_names_match(attr, bind.var):
                    continue
                if not _is_guard_name(attr, self.guard_attrs):
                    continue
                for r in events:
                    if r.seg > 0 and r.line <= use.line:
                        return True
            return False
        for r in self.reads.get((bind.base, bind.attr), ()):
            if r.nid == bind.value_id:
                continue
            if r.seg > bind.seg and r.line <= use.line:
                return True
        return False

    def _report(self) -> None:
        # rule (a): stale-guard-across-yield, one finding per snapshot
        reported: Set[int] = set()
        receivers = {base for base, _ in self.reads}
        for bind, use in self.uses:
            if id(bind) in reported:
                continue
            if bind.is_param and bind.var in receivers:
                continue    # an object we call into, not a snapshot
            crossed = (use.seg > bind.seg
                       or bool(use.yloops - bind.yloops))
            if not crossed or self._revalidated(bind, use):
                continue
            reported.add(id(bind))
            later = sum(1 for b, u in self.uses
                        if b is bind and u.line > use.line)
            more = f" (+{later} later stale use(s))" if later else ""
            if bind.is_param:
                # Anchor at the def line: the pragma argument ("this
                # parameter is not a live guard") belongs there.
                anchor = _Event(use.seg, bind.line, use.yloops)
                what = (f"parameter '{bind.var}' carries a guard value "
                        f"from before this process last yielded")
            else:
                anchor = use
                what = (f"'{bind.var}' snapshots guard "
                        f"'{bind.base}.{bind.attr}' at line {bind.line}")
            self.emit("stale-guard-across-yield", anchor,
                      f"{what} and is used after a yield without "
                      f"re-reading the live attribute{more}")

        # rule (b): write-after-yield-unguarded
        for w in self.writes:
            if w.seg == 0 and not w.yloops:
                continue            # pre-yield: the segment is atomic
            key = (w.base, w.attr)
            fresh = any(r.seg == w.seg and r.line <= w.line
                        for r in self.reads.get(key, ()))
            guarded = any(g.seg == w.seg and g.line <= w.line
                          for g in self.guard_tests)
            if not fresh and not guarded:
                self.emit("write-after-yield-unguarded", w,
                          f"'{w.base}.{w.attr}' is written after a yield "
                          f"with no guard re-checked (and no re-read of "
                          f"'{w.attr}') since the last scheduling point")


def _attr_chain(expr: ast.expr) -> Tuple[Optional[str], List[str]]:
    """``replica.node.zk`` -> ('replica', ['node', 'zk']); None for
    anything that is not a plain attribute chain on a name."""
    attrs: List[str] = []
    while isinstance(expr, ast.Attribute):
        attrs.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id, attrs[::-1]
    return None, attrs


class _ModuleWalker(ast.NodeVisitor):
    def __init__(self, path: str, lines: List[str],
                 process_names: Set[str],
                 guard_attrs: FrozenSet[str]) -> None:
        self.path = path
        self.lines = lines
        self.process_names = process_names
        self.guard_attrs = guard_attrs
        self.findings: List[Finding] = []
        self._param_stack: List[List[str]] = []

    def _emit_for(self, func: ast.FunctionDef):
        def emit(rule: str, node, message: str) -> None:
            if isinstance(node, (_Write, _Event)):
                line = node.line
            else:
                line = getattr(node, "lineno", func.lineno)
            code = ""
            if 1 <= line <= len(self.lines):
                code = self.lines[line - 1].strip()
            self.findings.append(Finding(
                rule=rule, path=self.path, line=line,
                message=f"in process {func.name!r}: {message}",
                code=code))
        return emit

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._param_stack.append(_all_param_names(node.args))
        try:
            if (node.name in self.process_names
                    and _contains_yield(node.body)):
                seed = {"self"}
                for params in self._param_stack:
                    seed.update(params)
                analysis = _FuncAnalysis(node, seed, self.guard_attrs,
                                         self._emit_for(node))
                analysis.run()
            self.generic_visit(node)
        finally:
            self._param_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def lint_atomicity(source: str, path: str,
                   spawned: Iterable[str] = (),
                   guard_attrs: Optional[Iterable[str]] = None
                   ) -> List[Finding]:
    """Run the cross-yield atomicity rules over one module's source.

    ``spawned`` carries process-body names discovered in *other*
    modules (the runner passes the cross-module ``yield from``
    closure); local ``spawn`` sites and ``yield from`` edges are added
    here.  ``guard_attrs`` overrides :data:`DEFAULT_GUARD_ATTRS`.
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    local_spawned = collect_spawned(tree) | set(spawned)
    edges = collect_yield_edges(tree)
    process_names = close_process_names(local_spawned, edges)
    guards = (frozenset(guard_attrs) if guard_attrs is not None
              else DEFAULT_GUARD_ATTRS)
    walker = _ModuleWalker(path, lines, process_names, guards)
    walker.visit(tree)
    return sorted(walker.findings, key=lambda f: (f.line, f.rule))
