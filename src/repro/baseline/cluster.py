"""Cluster harness for the eventually consistent baseline."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.partition import RangePartitioner
from ..sim.events import Simulator
from ..sim.network import LatencyModel, Network
from ..sim.rng import RngRegistry
from .client import CassandraClient
from .config import CassandraConfig
from .node import CassandraNode

__all__ = ["CassandraCluster"]


class CassandraCluster:
    """A complete simulated baseline deployment.

    No coordination service exists (membership is static and there is no
    leader to elect); nodes serve as soon as they are constructed —
    matching the paper's observation that Cassandra is "always available"
    at the price of consistency (§D.1).
    """

    def __init__(self, n_nodes: int = 5,
                 config: Optional[CassandraConfig] = None,
                 seed: int = 0,
                 node_names: Optional[List[str]] = None,
                 latency: Optional[LatencyModel] = None):
        self.config = (config or CassandraConfig()).validate()
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.network = Network(self.sim, self.rng, latency)
        names = node_names or [f"cnode{i}" for i in range(n_nodes)]
        self.partitioner = RangePartitioner(
            names, replication_factor=self.config.replication_factor)
        self.nodes: Dict[str, CassandraNode] = {
            name: CassandraNode(self.sim, self.network, self.rng, name,
                                self.partitioner, self.config)
            for name in names
        }
        self._clients: Dict[str, CassandraClient] = {}

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate, limit: float, step: float = 0.05,
                  what: str = "condition") -> None:
        from ..sim.events import SimulationError
        deadline = self.sim.now + limit
        while not predicate():
            if self.sim.now >= deadline:
                raise SimulationError(f"timed out waiting for {what}")
            self.sim.run(until=min(self.sim.now + step, deadline))

    def client(self, name: str = "cclient0") -> CassandraClient:
        client = self._clients.get(name)
        if client is None:
            client = CassandraClient(self.sim, self.network, name,
                                     self.partitioner, self.config,
                                     self.rng)
            self._clients[name] = client
        return client

    def crash_node(self, name: str) -> None:
        self.nodes[name].crash()

    def restart_node(self, name: str) -> None:
        self.nodes[name].restart()

    def all_failures(self) -> List[BaseException]:
        out: List[BaseException] = []
        for node in self.nodes.values():
            out.extend(node.failures)
        return out
