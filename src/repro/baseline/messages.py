"""Messages for the eventually consistent baseline (§2.3, §9).

Clients talk to a *coordinator* (any replica of the key); the coordinator
fans out to replicas.  There is no leader, no propose/ack ordering, and
no commit message — consistency comes only from last-write-wins
timestamps plus read repair and hinted handoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CoordWrite", "CoordRead", "ReplicaWrite", "ReplicaRead",
           "ReplicaReadResult"]


@dataclass(frozen=True)
class CoordWrite:
    """Client → coordinator."""

    key: bytes
    colname: bytes
    value: Optional[bytes]
    consistency: str          # "weak" (W=1) or "quorum" (W=2)
    tombstone: bool = False


@dataclass(frozen=True)
class CoordRead:
    """Client → coordinator."""

    key: bytes
    colname: bytes
    consistency: str          # "weak" (R=1) or "quorum" (R=2)


@dataclass(frozen=True)
class ReplicaWrite:
    """Coordinator → replica (also used for hint replay & read repair)."""

    group_id: int
    key: bytes
    colname: bytes
    value: Optional[bytes]
    timestamp: float          # LWW conflict-resolution timestamp
    seq: int                  # coordinator-unique tiebreak
    tombstone: bool = False


@dataclass(frozen=True)
class ReplicaRead:
    """Coordinator → replica."""

    group_id: int
    key: bytes
    colname: bytes


@dataclass(frozen=True)
class ReplicaReadResult:
    value: Optional[bytes]
    timestamp: float
    seq: int
    tombstone: bool
    found: bool
    replica: str
