"""Client for the eventually consistent baseline.

Routes every request to a coordinator that replicates the key (a "smart"
client, like Cassandra's token-aware drivers).  Weak reads therefore cost
one network round trip — matching the paper, where Cassandra's weak read
latency is nearly identical to Spinnaker's timeline read (§9.1).
"""

from __future__ import annotations

from typing import Optional

from ..core.datamodel import RequestTimeout
from ..core.partition import RangePartitioner, key_of
from ..sim.events import Simulator
from ..sim.network import Network, RpcTimeout
from ..sim.process import timeout
from ..sim.rng import RngRegistry
from .config import QUORUM, CassandraConfig
from .messages import CoordRead, CoordWrite

__all__ = ["CassandraClient", "ReadValue"]


class ReadValue:
    """A baseline read result: value + LWW timestamp (no versions)."""

    __slots__ = ("value", "timestamp", "found")

    def __init__(self, value: Optional[bytes], timestamp: float,
                 found: bool):
        self.value = value
        self.timestamp = timestamp
        self.found = found


class CassandraClient:
    """One client machine talking to the baseline cluster."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 partitioner: RangePartitioner, config: CassandraConfig,
                 rng: RngRegistry):
        self.sim = sim
        self.name = name
        self.partitioner = partitioner
        self.config = config
        self.endpoint = network.endpoint(name)
        self._rng = rng.stream(f"cclient:{name}")
        self.ops_completed = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def write(self, key: bytes, colname: bytes, value: bytes,
              consistency: str = QUORUM):
        msg = CoordWrite(key=key, colname=colname, value=value,
                         consistency=consistency)
        return (yield from self._call(key, msg, 96 + len(value)))

    def delete(self, key: bytes, colname: bytes,
               consistency: str = QUORUM):
        msg = CoordWrite(key=key, colname=colname, value=None,
                         consistency=consistency, tombstone=True)
        return (yield from self._call(key, msg, 96))

    def read(self, key: bytes, colname: bytes,
             consistency: str = QUORUM):
        msg = CoordRead(key=key, colname=colname, consistency=consistency)
        reply = yield from self._call(key, msg, 96)
        return ReadValue(reply.get("value"), reply.get("timestamp", -1.0),
                         reply.get("found", False))

    # ------------------------------------------------------------------
    def _call(self, key: bytes, msg, size: int):
        cfg = self.config
        cohort = self.partitioner.cohort_for_key(key_of(key))
        members = list(cohort.members)
        target = self._rng.choice(members)
        deadline = self.sim.now + cfg.client_op_timeout
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise RequestTimeout(f"{type(msg).__name__} timed out")
            try:
                reply = yield self.endpoint.request(
                    target, msg, size=size,
                    timeout=min(remaining, cfg.rpc_timeout))
            except RpcTimeout:
                self.retries += 1
                target = members[(members.index(target) + 1)
                                 % len(members)]
                continue
            if reply.get("ok"):
                self.ops_completed += 1
                return reply
            self.retries += 1
            target = members[(members.index(target) + 1) % len(members)]
            yield timeout(self.sim, cfg.client_retry_backoff)
