"""Tunables for the eventually consistent baseline.

Where a knob models the same physical thing as in Spinnaker (CPU cost of
a read, log-force profile, cores) the default matches
:class:`repro.core.config.SpinnakerConfig` — Spinnaker was derived from
the Cassandra codebase precisely so the comparison isolates the
replication protocol (Appendix C), and our two stores share the storage
and hardware models the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.disk import DiskProfile

__all__ = ["CassandraConfig", "WEAK", "QUORUM"]

#: consistency levels (subset the paper evaluates)
WEAK = "weak"
QUORUM = "quorum"


@dataclass
class CassandraConfig:
    """Knobs for the baseline store."""

    replication_factor: int = 3

    # -- hardware (matched to SpinnakerConfig) ---------------------------
    cores_per_node: int = 8
    log_profile: DiskProfile = field(default_factory=DiskProfile.sata_log)
    group_commit: bool = True

    # -- CPU service times ------------------------------------------------
    #: per-read CPU+network-stack cost at a replica (same as Spinnaker)
    read_service: float = 1.8e-3
    #: coordinator-side cost of a quorum read: merging responses and
    #: checking for conflicts caused by eventual consistency (§9.1)
    conflict_check_service: float = 1.6e-3
    #: replica-side cost to process a write
    write_replica_service: float = 0.3e-3
    #: coordinator-side cost to fan a write out
    write_coordinator_service: float = 0.55e-3

    # -- anti-entropy ---------------------------------------------------
    #: how long the coordinator waits before writing a hint for a
    #: replica that did not ack (hinted handoff)
    hint_timeout: float = 1.0
    #: how often stored hints are replayed
    hint_replay_interval: float = 5.0
    #: read repair runs in the background on quorum-read mismatches
    read_repair: bool = True

    # -- storage ----------------------------------------------------------
    flush_threshold_bytes: int = 64 * 1024 * 1024

    # -- client ----------------------------------------------------------
    client_op_timeout: float = 10.0
    client_retry_backoff: float = 0.02
    rpc_timeout: float = 2.0

    def validate(self) -> "CassandraConfig":
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        return self

    def acks_for(self, consistency: str) -> int:
        if consistency == WEAK:
            return 1
        if consistency == QUORUM:
            return self.replication_factor // 2 + 1
        raise ValueError(f"unknown consistency {consistency!r}")

    def reads_for(self, consistency: str) -> int:
        return self.acks_for(consistency)
