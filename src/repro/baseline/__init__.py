"""The eventually consistent baseline (Cassandra/Dynamo-style, §2.3, §9).

Shares the simulator, storage engine, partitioning and hardware models
with :mod:`repro.core`; differs exactly where the paper says Cassandra
differs: no leader, last-write-wins timestamps, weak/quorum consistency
levels, read repair and hinted handoff instead of quorum-based recovery.
"""

from .config import QUORUM, WEAK, CassandraConfig
from .cluster import CassandraCluster
from .client import CassandraClient, ReadValue
from .node import CassandraNode

__all__ = [
    "CassandraConfig", "CassandraCluster", "CassandraClient",
    "CassandraNode", "ReadValue", "WEAK", "QUORUM",
]
