"""A node of the eventually consistent baseline store.

Every node is a replica for three key ranges (same chained-declustering
placement as Spinnaker) and can coordinate any request for a key it
replicates.  The write path matches Cassandra's, as the paper describes
it (§9): a write is sent to **all** replicas; a *weak* write returns
after 1 replica has logged it durably, a *quorum* write after 2.  Reads:
*weak* touches 1 replica; *quorum* reads 2 replicas, resolves conflicts
by timestamp (last write wins), and repairs stale replicas in the
background.

There is deliberately **no** leader, no LSN ordering across replicas, and
no quorum-based recovery — the gaps the paper contrasts with Spinnaker:
concurrent writes through different coordinators can conflict, and a
restarted replica serves whatever its local log held plus whatever hints
or read repairs happen to reach it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..sim.disk import LogDevice
from ..sim.events import Event, Simulator
from ..sim.network import Network, Request, RpcTimeout
from ..sim.process import (Process, ProcessKilled, all_of, quorum, spawn,
                           timeout)
from ..sim.resources import Resource, serve
from ..sim.rng import RngRegistry
from ..storage.engine import StorageEngine
from ..storage.lsn import LSN
from ..storage.memtable import timestamp_order
from ..storage.records import WriteRecord
from ..storage.wal import SharedLog
from .config import CassandraConfig
from .messages import (CoordRead, CoordWrite, ReplicaRead,
                       ReplicaReadResult, ReplicaWrite)
from ..core.partition import RangePartitioner, key_of

__all__ = ["CassandraNode"]


class CassandraNode:
    """One baseline server."""

    def __init__(self, sim: Simulator, network: Network, rng: RngRegistry,
                 name: str, partitioner: RangePartitioner,
                 config: CassandraConfig):
        self.sim = sim
        self.network = network
        self.name = name
        self.partitioner = partitioner
        self.config = config
        self.endpoint = network.endpoint(name)
        self.endpoint.on_request(self._dispatch)
        self.cpu = Resource(sim, capacity=config.cores_per_node)
        self.device = LogDevice(sim, rng, f"{name}-clog",
                                profile=config.log_profile,
                                group_commit=config.group_commit)
        self.wal = SharedLog(self.device)
        self.engines: Dict[int, StorageEngine] = {
            cohort.cohort_id: StorageEngine(
                cohort.cohort_id,
                flush_threshold_bytes=config.flush_threshold_bytes,
                order=timestamp_order)
            for cohort in partitioner.cohorts_of_node(name)
        }
        self._local_seq: Dict[int, int] = {gid: 0 for gid in self.engines}
        self._coord_seq = itertools.count(1)
        self.alive = True
        #: hints awaiting replay: replica name -> list of ReplicaWrite
        self.hints: Dict[str, List[ReplicaWrite]] = {}
        #: peers suspected down (name -> suspicion expiry time)
        self.suspected: Dict[str, float] = {}
        #: live handler processes in spawn order (ordered-set via dict;
        #: crash-time interrupt order must be deterministic)
        self._procs: Dict[Process, None] = {}
        self.failures: List[BaseException] = []
        self.writes_coordinated = 0
        self.reads_coordinated = 0
        self.read_repairs = 0
        self.spawn_proc(self._hint_replayer(), "hints")

    # ------------------------------------------------------------------
    # Supervision (mirrors SpinnakerNode)
    # ------------------------------------------------------------------
    def spawn_proc(self, gen, name: str = "") -> Process:
        proc = spawn(self.sim, gen, name=f"{self.name}:{name}")
        self._procs[proc] = None

        def _done(ev):
            self._procs.pop(proc, None)
            if not ev._ok:
                ev.defuse()
                if not isinstance(ev._value, ProcessKilled):
                    self.failures.append(ev._value)

        proc.add_callback(_done)
        return proc

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        if not self.alive:
            return
        self.alive = False
        for proc in list(self._procs):
            proc.interrupt("crash")
        self._procs.clear()
        self.endpoint.crash()
        self.device.crash()
        self.wal.crash()
        # lint: allow(dict-order) — engines inserted in partitioner order
        for engine in self.engines.values():
            engine.crash()

    def restart(self) -> None:
        if self.alive:
            return
        self.alive = True
        self.endpoint.restart()
        self.device.restart()
        # Local recovery: replay the whole surviving log — every logged
        # write applies (there is no commit concept to wait for).
        for gid, engine in self.engines.items():
            for record in self.wal.write_records(
                    gid, after=engine.checkpoint_lsn):
                engine.apply(record)
            if self.wal.last_lsn(gid).seq >= self._local_seq.get(gid, 0):
                self._local_seq[gid] = self.wal.last_lsn(gid).seq
        self.spawn_proc(self._hint_replayer(), "hints")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, req: Request) -> None:
        payload = req.payload
        if isinstance(payload, CoordWrite):
            self.spawn_proc(self._coordinate_write(req), "coord-write")
        elif isinstance(payload, CoordRead):
            self.spawn_proc(self._coordinate_read(req), "coord-read")
        elif isinstance(payload, ReplicaWrite):
            self.spawn_proc(self._replica_write(req), "replica-write")
        elif isinstance(payload, ReplicaRead):
            self.spawn_proc(self._replica_read(req), "replica-read")

    def _group_for(self, key: bytes):
        return self.partitioner.cohort_for_key(key_of(key))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _coordinate_write(self, req: Request):
        cfg = self.config
        msg: CoordWrite = req.payload
        group = self._group_for(msg.key)
        if group.cohort_id not in self.engines:
            req.respond({"ok": False, "code": "wrong-node"}, size=64)
            return
        yield from serve(self.cpu, cfg.write_coordinator_service)
        rwrite = ReplicaWrite(
            group_id=group.cohort_id, key=msg.key, colname=msg.colname,
            value=msg.value, timestamp=self.sim.now,
            seq=next(self._coord_seq), tombstone=msg.tombstone)
        size = 96 + (len(msg.value) if msg.value else 0)
        acks: List[Event] = []
        for member in group.members:
            if member == self.name:
                acks.append(self.spawn_proc(
                    self._apply_write_locally(rwrite), "local-write"))
            else:
                acks.append(self.endpoint.request(member, rwrite,
                                                  size=size))
        needed = cfg.acks_for(msg.consistency)
        win = quorum(self.sim, acks, need=needed)
        # Hinted handoff for laggards/failures runs regardless.
        self.spawn_proc(self._hint_watch(group.members, acks, rwrite),
                        "hint-watch")
        try:
            yield win
        except Exception:
            req.respond({"ok": False, "code": "unavailable"}, size=64)
            return
        self.writes_coordinated += 1
        req.respond({"ok": True, "timestamp": rwrite.timestamp}, size=64)

    def _apply_write_locally(self, rwrite: ReplicaWrite):
        """The coordinator is itself a replica: log + apply, no network."""
        yield from serve(self.cpu, self.config.write_replica_service)
        yield from self._log_and_apply(rwrite)
        return self.name

    def _replica_write(self, req: Request):
        yield from serve(self.cpu, self.config.write_replica_service)
        yield from self._log_and_apply(req.payload)
        req.respond(self.name, size=48)

    def _log_and_apply(self, rwrite: ReplicaWrite):
        gid = rwrite.group_id
        if gid not in self.engines:
            return
        self._local_seq[gid] = self._local_seq.get(gid, 0) + 1
        record = WriteRecord(
            lsn=LSN(1, self._local_seq[gid]), cohort_id=gid,
            key=rwrite.key, colname=rwrite.colname, value=rwrite.value,
            version=rwrite.seq, timestamp=rwrite.timestamp,
            tombstone=rwrite.tombstone)
        ev = self.wal.append(record, force=True)
        if ev is not None:
            yield ev
        self.engines[gid].apply(record)

    def _hint_watch(self, members, acks, rwrite: ReplicaWrite):
        """Store a hint for any replica that has not acked in time."""
        cfg = self.config
        yield timeout(self.sim, cfg.hint_timeout)
        for member, ack in zip(members, acks):
            if not ack.triggered or not ack._ok:
                if not ack.triggered:
                    pass  # leave it pending; hint covers the data
                else:
                    ack.defuse()
                if member != self.name:
                    self.hints.setdefault(member, []).append(rwrite)

    def _hint_replayer(self):
        cfg = self.config
        while True:
            yield timeout(self.sim, cfg.hint_replay_interval)
            for member in list(self.hints):
                pending = self.hints.pop(member, [])
                still_failed: List[ReplicaWrite] = []
                for rwrite in pending:
                    try:
                        yield self.endpoint.request(
                            member, rwrite,
                            size=96 + (len(rwrite.value)
                                       if rwrite.value else 0),
                            timeout=cfg.rpc_timeout)
                    except RpcTimeout:
                        still_failed.append(rwrite)
                if still_failed:
                    self.hints.setdefault(member, []).extend(still_failed)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _coordinate_read(self, req: Request):
        cfg = self.config
        msg: CoordRead = req.payload
        group = self._group_for(msg.key)
        if group.cohort_id not in self.engines:
            req.respond({"ok": False, "code": "wrong-node"}, size=64)
            return
        needed = cfg.reads_for(msg.consistency)
        if needed == 1:
            # Weak read: serve purely locally.
            result = yield from self._local_read(group.cohort_id, msg)
            self.reads_coordinated += 1
            req.respond(self._as_reply(result),
                        size=64 + (len(result.value)
                                   if result.value else 0))
            return
        # Quorum read: local + (needed - 1) remote replicas in parallel,
        # then a conflict check over the responses (§9.1).  Remote
        # replicas are chosen live-first (suspicion from recent
        # timeouts), with fallback to the third replica on timeout.
        local_proc = self.spawn_proc(
            self._local_read_proc(group.cohort_id, msg), "local-read")
        rread = ReplicaRead(group_id=group.cohort_id, key=msg.key,
                            colname=msg.colname)
        others = [m for m in group.members if m != self.name]
        remote_proc = self.spawn_proc(
            self._remote_reads(others, rread, needed - 1), "remote-read")
        pair = yield all_of(self.sim, [local_proc, remote_proc])
        local_result, remote_results = pair
        if remote_results is None:
            req.respond({"ok": False, "code": "unavailable"}, size=64)
            return
        results = [local_result] + remote_results
        yield from serve(self.cpu, cfg.conflict_check_service)
        best = max(results, key=lambda r: (r.found, r.timestamp, r.seq))
        if cfg.read_repair:
            self._maybe_read_repair(group, msg, results, best)
        self.reads_coordinated += 1
        req.respond(self._as_reply(best),
                    size=64 + (len(best.value) if best.value else 0))

    def _remote_reads(self, others: List[str], rread: ReplicaRead,
                      count: int):
        """Read from ``count`` remote replicas, live-first with fallback.

        Returns the list of results, or None if a quorum of remote
        replicas is unreachable.
        """
        cfg = self.config
        now = self.sim.now
        ordered = sorted(others,
                         key=lambda m: self.suspected.get(m, 0.0) > now)
        results: List[ReplicaReadResult] = []
        for member in ordered:
            if len(results) >= count:
                break
            try:
                result = yield self.endpoint.request(
                    member, rread, size=96, timeout=cfg.rpc_timeout)
            except RpcTimeout:
                self.suspected[member] = self.sim.now + 10.0
                continue
            results.append(result)
        if len(results) < count:
            return None
        return results

    def _local_read(self, gid: int, msg):
        yield from serve(self.cpu, self.config.read_service)
        return self._read_cell(gid, msg.key, msg.colname)

    def _local_read_proc(self, gid: int, msg):
        result = yield from self._local_read(gid, msg)
        return result

    def _replica_read(self, req: Request):
        msg: ReplicaRead = req.payload
        yield from serve(self.cpu, self.config.read_service)
        result = self._read_cell(msg.group_id, msg.key, msg.colname)
        req.respond(result,
                    size=64 + (len(result.value) if result.value else 0))

    def _read_cell(self, gid: int, key: bytes,
                   colname: bytes) -> ReplicaReadResult:
        engine = self.engines.get(gid)
        cell = engine.get(key, colname) if engine is not None else None
        if cell is None:
            return ReplicaReadResult(value=None, timestamp=-1.0, seq=0,
                                     tombstone=False, found=False,
                                     replica=self.name)
        return ReplicaReadResult(value=cell.value, timestamp=cell.timestamp,
                                 seq=cell.version,
                                 tombstone=cell.tombstone,
                                 found=not cell.tombstone,
                                 replica=self.name)

    def _maybe_read_repair(self, group, msg: CoordRead, results,
                           best) -> None:
        """Push the winning value to replicas that returned stale data."""
        if not best.found:
            return
        stale = [r for r in results
                 if (r.timestamp, r.seq) < (best.timestamp, best.seq)]
        if not stale:
            return
        self.read_repairs += 1
        repair = ReplicaWrite(
            group_id=group.cohort_id, key=msg.key, colname=msg.colname,
            value=best.value, timestamp=best.timestamp, seq=best.seq,
            tombstone=best.tombstone)
        size = 96 + (len(best.value) if best.value else 0)
        for r in stale:
            if r.replica == self.name:
                self.spawn_proc(self._apply_write_locally(repair),
                                "read-repair")
            else:
                self.endpoint.send(r.replica, repair, size=size)

    def _as_reply(self, result: ReplicaReadResult) -> Dict:
        return {"ok": True, "found": result.found, "value": result.value,
                "timestamp": result.timestamp}
