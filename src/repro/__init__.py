"""Reproduction of "Using Paxos to Build a Scalable, Consistent, and
Highly Available Datastore" (Rao, Shekita, Tata; VLDB 2011).

Packages:

* :mod:`repro.sim` — deterministic discrete-event simulation substrate
  (network, disks, CPUs, failure injection);
* :mod:`repro.storage` — WAL / memtable / SSTable storage engine;
* :mod:`repro.coord` — ZooKeeper-equivalent coordination service;
* :mod:`repro.core` — Spinnaker itself (the paper's contribution);
* :mod:`repro.baseline` — the eventually consistent comparison store;
* :mod:`repro.bench` — workloads and one experiment per table/figure.

Quick start::

    from repro.core import SpinnakerCluster
    cluster = SpinnakerCluster(n_nodes=5, seed=42)
    cluster.start()
    client = cluster.client()

See README.md, DESIGN.md and EXPERIMENTS.md at the repository root.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
