"""``python -m repro trace`` — run a traced load and render the result.

Runs one load point of the fig9-style write experiment (or a read /
mixed workload) against a fresh Spinnaker cluster with every request
traced, then prints either the slowest request's span tree (default) or
the per-phase attribution table plus slowest-trace exemplars
(``--phases``).  Deterministic: the same flags print the same bytes.

Examples::

    python -m repro trace                      # slowest write, span tree
    python -m repro trace --phases             # per-phase table
    python -m repro trace --phases --scale 0.05
    python -m repro trace --disk ssd --workload read
    python -m repro trace --trace-id 17        # one specific trace
"""

from __future__ import annotations

import argparse
from typing import List

from ..sim.disk import DiskProfile
from .phases import (collect_traces, format_phase_table, format_trace,
                     phase_summary, slowest_traces)
from .trace import RequestTracer

__all__ = ["main"]

#: ``--disk`` choices -> DiskProfile constructor
_DISKS = {
    "sata": DiskProfile.sata_log,
    "ssd": DiskProfile.ssd_log,
    "memory": DiskProfile.memory_log,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Causal request tracing: run a traced load point "
                    "and render span trees / per-phase latency "
                    "attribution (see OBSERVABILITY.md).")
    parser.add_argument("--phases", action="store_true",
                        help="print the per-phase attribution table "
                             "(plus slowest-trace exemplars) instead of "
                             "a single span tree")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fig9-style load scale; sets thread count "
                             "(default 0.05)")
    parser.add_argument("--workload", choices=("write", "read", "mixed"),
                        default="write")
    parser.add_argument("--disk", choices=sorted(_DISKS), default="sata",
                        help="log-device profile (default sata, as fig9)")
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--threads", type=int, default=None,
                        help="override the scale-derived thread count")
    parser.add_argument("--ops", type=int, default=None,
                        help="measured ops per thread (default from "
                             "scale)")
    parser.add_argument("--sample-every", type=int, default=1,
                        help="trace 1-in-N requests (default 1 = all)")
    parser.add_argument("--slowest", type=int, default=1,
                        help="number of slowest-trace exemplars to "
                             "render (default 1)")
    parser.add_argument("--trace-id", type=int, default=None,
                        help="render this trace id instead of the "
                             "slowest")
    return parser


def _run_traced_load(args) -> RequestTracer:
    from ..bench.experiments import _ops, _threads
    from ..bench.harness import SpinnakerTarget, run_load
    from ..bench.workload import (mixed_workload, read_workload,
                                  write_workload)
    from ..core import SpinnakerConfig

    if args.workload == "read":
        workload = read_workload("strong", preload_rows=500)
    elif args.workload == "mixed":
        workload = mixed_workload()
    else:
        workload = write_workload()
    # fig9's thread ladder, scaled like `repro bench --scale`: the
    # midpoint of the scaled ladder approximates moderate load.
    ladder = _threads([4, 8, 16, 32, 64, 96], args.scale)
    threads = (args.threads if args.threads is not None
               else ladder[len(ladder) // 2])
    ops = args.ops if args.ops is not None else _ops(args.scale, 40)
    config = SpinnakerConfig(log_profile=_DISKS[args.disk]())
    tracer = RequestTracer(sample_every=args.sample_every)
    target = SpinnakerTarget(args.nodes, config=config, seed=args.seed,
                             request_tracer=tracer)
    point = run_load(target, workload, threads, ops_per_thread=ops,
                     warmup_ops=8, seed=args.seed)
    print(f"ran {args.workload} load: {threads} threads x {ops} ops on "
          f"{args.nodes} nodes ({args.disk} log), "
          f"{point.throughput:.0f} req/s, mean {point.mean_ms:.2f} ms; "
          f"{tracer.sampled} traced / {tracer.skipped} unsampled")
    return tracer


def main(argv: List[str]) -> int:
    args = _build_parser().parse_args(argv)
    tracer = _run_traced_load(args)
    views = collect_traces(tracer)
    if not views:
        print("no completed traces collected")
        return 1
    print()
    if args.phases:
        print(format_phase_table(phase_summary(views)))
        exemplars = slowest_traces(views, k=max(0, args.slowest))
        for view in exemplars:
            print()
            print(f"slowest {view.op}:")
            print(format_trace(view))
        return 0
    if args.trace_id is not None:
        chosen = [v for v in views if v.trace_id == args.trace_id]
        if not chosen:
            print(f"trace {args.trace_id} not found "
                  f"({len(views)} traces collected)")
            return 1
    else:
        chosen = slowest_traces(views, k=max(1, args.slowest))
    for view in chosen:
        print(format_trace(view))
        print()
    return 0
