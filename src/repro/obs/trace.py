"""Causal request tracing: spans, contexts, and the per-node span store.

Model
-----
A *trace* is one client operation (a ``put``, ``get``, ``scan`` or
transaction) as seen across every machine it touches.  It is a flat set
of :class:`Span` objects sharing a ``trace_id``; each span names a
*phase* of the request (see :data:`repro.obs.phases.WRITE_PHASES`) and
carries ``[start, end]`` simulated-time endpoints plus the node that did
the work.  The *root* span (``parent_id is None``) brackets the whole
client round trip; phase spans are its children.

The :class:`TraceContext` is the piece that travels: the client attaches
it to the request message (``msg.trace``), and every protocol layer that
wants to attribute latency opens/closes spans against it.  Because the
simulator is single-threaded and deterministic, the context can carry
mutable rendezvous fields (``last_sent_at``, ``server_done_at``) without
locks — and traces are bit-identical across runs with the same seed.

Sampling
--------
``RequestTracer(sample_every=N)`` traces 1-in-N operations, decided by a
dedicated deterministic RNG stream (``obs:sampler``) so that enabling
sampling never perturbs protocol or workload randomness.  A non-sampled
operation gets ``ctx = None`` and every downstream hook is a single
``is None`` test.

Zero-cost off switch
--------------------
:class:`NullRequestTracer` is the default everywhere.  Its ``begin``
returns ``None`` and ``enabled`` is False, so the traced code paths
reduce to one attribute load and one branch per operation; no spans, no
stores, no RNG draws.

Crash truncation
----------------
Spans still open when their node crashes (or a replica steps down) are
closed at the current simulated time with ``truncated=True`` — a trace
of a failed-over write shows the dead leader's half-finished phases
*and* the successful retry's complete ones.  ``Span.finish`` is
idempotent, so the node-level sweep (:meth:`RequestTracer.truncate_node`)
and replica-level cleanup cannot double-report.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

__all__ = ["Span", "SpanStore", "TraceContext", "RequestTracer",
           "NullRequestTracer"]


class Span:
    """One timed phase of one request on one node.

    ``end is None`` while the span is open; ``duration`` is only
    meaningful once closed.  ``fields`` holds small structured
    annotations (batch sizes, queue depths) for rendering.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start", "end", "truncated", "fields")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, node: str, start: float,
                 fields: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.truncated = False
        self.fields: Optional[dict] = fields

    @property
    def duration(self) -> float:
        """Closed-span duration in seconds (nan while open)."""
        if self.end is None:
            return float("nan")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("open" if self.end is None
                 else f"{self.duration * 1e3:.3f}ms")
        mark = " TRUNCATED" if self.truncated else ""
        return (f"<Span t{self.trace_id} {self.name}@{self.node} "
                f"{state}{mark}>")


class SpanStore:
    """Bounded FIFO of finished spans for one node.

    When full, the oldest spans fall off and ``dropped`` counts them —
    long traced runs keep recent requests rather than exploding memory.
    """

    def __init__(self, max_spans: int = 100_000):
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self.dropped = 0

    def add(self, span: Span) -> None:
        if (self._spans.maxlen is not None
                and len(self._spans) == self._spans.maxlen):
            self.dropped += 1
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        if trace_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.trace_id == trace_id]


class TraceContext:
    """The sampled-request token carried on client messages.

    Mutable rendezvous fields (single-threaded simulator, so plain
    attributes are race-free):

    ``last_sent_at``
        Set by the client immediately before each (re)send; the server
        uses it as the ``route`` span's start so retries never
        double-count earlier attempts.
    ``server_done_at``
        Set by the server at the instant it responds; the client uses it
        as the ``reply`` span's start.
    """

    __slots__ = ("tracer", "trace_id", "op", "origin", "root",
                 "last_sent_at", "server_done_at")

    def __init__(self, tracer: "RequestTracer", trace_id: int, op: str,
                 origin: str, root: Span):
        self.tracer = tracer
        self.trace_id = trace_id
        self.op = op
        self.origin = origin
        self.root = root
        self.last_sent_at: Optional[float] = None
        self.server_done_at: Optional[float] = None


class RequestTracer:
    """Factory and sink for request traces across a whole cluster.

    Bound to a cluster's simulator and RNG registry by
    :class:`~repro.core.cluster.SpinnakerCluster` (mirroring the
    protocol-event :class:`~repro.sim.tracing.Tracer`); ``begin`` is the
    only entry point the client calls, everything else operates on the
    returned :class:`TraceContext` or on :class:`Span` objects.
    """

    enabled = True

    def __init__(self, sample_every: int = 1,
                 max_spans_per_node: int = 100_000):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_spans_per_node = max_spans_per_node
        self.sim = None
        self._rng = None
        self._stores: Dict[str, SpanStore] = {}
        #: open spans per node, span_id -> Span (insertion == start order)
        self._open: Dict[str, Dict[int, Span]] = {}
        self._next_trace = 0
        self._next_span = 0
        self.sampled = 0
        self.skipped = 0

    # -- wiring ---------------------------------------------------------
    def bind(self, sim, rng_registry) -> None:
        """Attach to a simulation; called once by the cluster."""
        self.sim = sim
        self._rng = rng_registry.stream("obs:sampler")

    # -- trace lifecycle ------------------------------------------------
    def begin(self, op: str, origin: str) -> Optional[TraceContext]:
        """Start (or skip) a trace for one client operation.

        Returns None when the sampler says no; callers must treat None
        as "tracing off" for this request.
        """
        if self.sample_every > 1:
            if self._rng.randrange(self.sample_every) != 0:
                self.skipped += 1
                return None
        self.sampled += 1
        trace_id = self._next_trace
        self._next_trace += 1
        root = self._new_span(trace_id, None, op, origin, self.sim.now, None)
        self._register(root)
        return TraceContext(self, trace_id, op, origin, root)

    def start(self, ctx: TraceContext, name: str, node: str,
              **fields) -> Span:
        """Open a child span now; close it later with :meth:`finish`."""
        span = self._new_span(ctx.trace_id, ctx.root.span_id, name, node,
                              self.sim.now, fields or None)
        self._register(span)
        return span

    def finish(self, span: Span, **fields) -> None:
        """Close a span at the current time.  Idempotent: a span already
        closed (e.g. by crash truncation) is left untouched."""
        if span.end is not None:
            return
        span.end = self.sim.now
        if fields:
            if span.fields is None:
                span.fields = fields
            else:
                span.fields.update(fields)
        self._deregister(span)
        self.store(span.node).add(span)

    def span_at(self, ctx: TraceContext, name: str, node: str,
                start: float, end: Optional[float] = None,
                **fields) -> Span:
        """Record an already-delimited span (start in the past, end
        defaulting to now) without going through the open registry."""
        span = self._new_span(ctx.trace_id, ctx.root.span_id, name, node,
                              start, fields or None)
        span.end = self.sim.now if end is None else end
        self.store(node).add(span)
        return span

    def truncate(self, span: Span) -> None:
        """Close an open span as interrupted (crash / step-down)."""
        if span.end is not None:
            return
        span.truncated = True
        self.finish(span)

    def truncate_node(self, node: str) -> int:
        """Close every open span on ``node`` as truncated; the node
        crash path calls this so no span outlives its machine.  Returns
        the number of spans closed."""
        open_spans = self._open.get(node)
        if not open_spans:
            return 0
        victims = list(open_spans.values())
        for span in victims:
            self.truncate(span)
        return len(victims)

    # -- access ---------------------------------------------------------
    def store(self, node: str) -> SpanStore:
        store = self._stores.get(node)
        if store is None:
            store = self._stores[node] = SpanStore(self.max_spans_per_node)
        return store

    def stores(self) -> Dict[str, SpanStore]:
        return dict(self._stores)

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        """All finished spans across nodes (optionally one trace),
        ordered by (trace, start, span id) for stable rendering."""
        out: List[Span] = []
        for name in sorted(self._stores):
            out.extend(self._stores[name].spans(trace_id))
        out.sort(key=lambda s: (s.trace_id, s.start, s.span_id))
        return out

    def open_spans(self, node: Optional[str] = None) -> List[Span]:
        if node is not None:
            return list(self._open.get(node, {}).values())
        out: List[Span] = []
        for name in sorted(self._open):
            out.extend(self._open[name].values())
        return out

    def trace_ids(self) -> List[int]:
        seen = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    # -- internals ------------------------------------------------------
    def _new_span(self, trace_id: int, parent_id: Optional[int], name: str,
                  node: str, start: float, fields: Optional[dict]) -> Span:
        span_id = self._next_span
        self._next_span += 1
        return Span(trace_id, span_id, parent_id, name, node, start, fields)

    def _register(self, span: Span) -> None:
        self._open.setdefault(span.node, {})[span.span_id] = span

    def _deregister(self, span: Span) -> None:
        open_spans = self._open.get(span.node)
        if open_spans is not None:
            open_spans.pop(span.span_id, None)


class NullRequestTracer:
    """Tracing disabled: ``begin`` yields None so every instrumented
    call site short-circuits on its ``ctx is None`` guard."""

    enabled = False
    sample_every = 0
    sampled = 0
    skipped = 0

    def bind(self, sim, rng_registry) -> None:
        pass

    def begin(self, op: str, origin: str) -> None:
        return None

    def truncate_node(self, node: str) -> int:
        return 0

    def stores(self) -> Dict[str, SpanStore]:
        return {}

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        return []

    def open_spans(self, node: Optional[str] = None) -> List[Span]:
        return []

    def trace_ids(self) -> List[int]:
        return []
