"""Phase-breakdown aggregation over request traces.

Folds the spans collected by a :class:`~repro.obs.trace.RequestTracer`
into per-phase latency histograms, answering the paper's §9.1 question
— *where do the 40–90 ms writes go?* — with measured numbers: the mean
``log_force`` and ``quorum_wait`` per request, their share of the
end-to-end latency, and exemplar traces for the slow tail.

A request's per-phase duration is the **sum** of its same-named spans:
a write that retried after a leader crash has two ``route`` spans, and
both attempts' routing cost is honestly attributed to ``route``.  Spans
never overlap within a phase (the tracer opens at most one span per
phase per attempt), so the sum is wall-clock time, not double counting.

Shares are computed against the root span (client round trip).  They
need not sum to 1: ``log_force`` overlaps ``replicate_rtt`` by design
(Fig. 4 forces and proposes in parallel), and client-side retry backoff
sits in no phase at all.  ``OBSERVABILITY.md`` walks through reading
the numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.metrics import Histogram

__all__ = ["WRITE_PHASES", "READ_PHASES", "CATCHUP_PHASES", "TraceView",
           "collect_traces", "phase_durations", "phase_histograms",
           "phase_summary", "slowest_traces", "format_trace",
           "format_phase_table"]

#: Canonical phase order for the write path (Fig. 4).
WRITE_PHASES = ("route", "propose", "log_force", "replicate_rtt",
                "quorum_wait", "commit_apply", "reply")
#: Canonical phase order for the read path.
READ_PHASES = ("route", "read_serve", "reply")
#: Canonical phase order for chunked catch-up (§6.1): fetching one chunk
#: over the network vs. installing its snapshot slice locally.
CATCHUP_PHASES = ("catchup_fetch", "snapshot_install")


class TraceView:
    """One trace reassembled from per-node span stores."""

    __slots__ = ("trace_id", "op", "origin", "root", "spans")

    def __init__(self, trace_id: int, root, spans: List):
        self.trace_id = trace_id
        self.op = root.name
        self.origin = root.node
        self.root = root
        #: child spans sorted by (start, span_id); root excluded.
        self.spans = spans

    @property
    def duration(self) -> float:
        return self.root.duration

    @property
    def completed(self) -> bool:
        """Closed root, no error, not cut short by a crash."""
        return (self.root.end is not None and not self.root.truncated
                and not (self.root.fields or {}).get("error"))

    @property
    def truncated(self) -> bool:
        return any(s.truncated for s in self.spans) or self.root.truncated


def collect_traces(tracer, op: Optional[str] = None) -> List[TraceView]:
    """Reassemble finished traces (those whose root span closed) from a
    tracer's stores, in trace-id order."""
    by_trace: Dict[int, List] = {}
    for span in tracer.spans():
        by_trace.setdefault(span.trace_id, []).append(span)
    views: List[TraceView] = []
    for trace_id in sorted(by_trace):
        spans = by_trace[trace_id]
        root = None
        children = []
        for span in spans:
            if span.parent_id is None:
                root = span
            else:
                children.append(span)
        if root is None or root.end is None:
            continue  # still in flight, or root fell out of the store
        if op is not None and root.name != op:
            continue
        children.sort(key=lambda s: (s.start, s.span_id))
        views.append(TraceView(trace_id, root, children))
    return views


def phase_durations(view: TraceView) -> Dict[str, float]:
    """Per-phase seconds for one trace (same-named spans summed)."""
    out: Dict[str, float] = {}
    for span in view.spans:
        if span.end is None:
            continue
        out[span.name] = out.get(span.name, 0.0) + span.duration
    return out


def phase_histograms(views: List[TraceView],
                     completed_only: bool = True
                     ) -> Dict[str, Dict[str, Histogram]]:
    """``{op: {phase: Histogram, "_total": Histogram}}`` in seconds."""
    out: Dict[str, Dict[str, Histogram]] = {}
    for view in views:
        if completed_only and not view.completed:
            continue
        per_op = out.setdefault(view.op, {"_total": Histogram()})
        per_op["_total"].add(view.duration)
        for phase, seconds in phase_durations(view).items():
            hist = per_op.get(phase)
            if hist is None:
                hist = per_op[phase] = Histogram()
            hist.add(seconds)
    return out


def _phase_order(op: str, phases) -> List[str]:
    if op == "catchup":
        canon = CATCHUP_PHASES
    elif op in ("write", "txn"):
        canon = WRITE_PHASES
    else:
        canon = READ_PHASES
    ordered = [p for p in canon if p in phases]
    ordered.extend(sorted(p for p in phases
                          if p not in canon and p != "_total"))
    return ordered


def phase_summary(tracer_or_views) -> Dict[str, dict]:
    """JSON-ready ``{op: {count, total_ms, phases: {...}}}`` summary.

    ``phases[name]`` carries ``mean_ms``, ``p95_ms`` and ``share`` (the
    phase mean over the end-to-end mean).  This is the object embedded
    as the ``phases`` section of ``BENCH_report.json``.
    """
    if isinstance(tracer_or_views, list):
        views = tracer_or_views
    else:
        views = collect_traces(tracer_or_views)
    hists = phase_histograms(views)
    out: Dict[str, dict] = {}
    for op in sorted(hists):
        per_op = hists[op]
        total = per_op["_total"]
        total_mean = total.mean()
        phases: Dict[str, dict] = {}
        for phase in _phase_order(op, per_op):
            hist = per_op[phase]
            mean = hist.mean()
            phases[phase] = {
                "mean_ms": mean * 1e3,
                "p95_ms": hist.percentile(95) * 1e3,
                "share": (mean / total_mean) if total_mean else 0.0,
            }
        out[op] = {
            "count": total.count,
            "total_mean_ms": total_mean * 1e3,
            "total_p95_ms": total.percentile(95) * 1e3,
            "phases": phases,
        }
    return out


def slowest_traces(views: List[TraceView], k: int = 1,
                   op: Optional[str] = None) -> List[TraceView]:
    """The ``k`` slowest completed traces (ties broken by trace id for
    determinism), slowest first."""
    pool = [v for v in views if v.completed
            and (op is None or v.op == op)]
    pool.sort(key=lambda v: (-v.duration, v.trace_id))
    return pool[:k]


def format_trace(view: TraceView) -> str:
    """Render one trace as an indented span tree::

        trace 41 · write · 11.824 ms · origin client-0
        └─ route         node3   +0.000   0.712 ms
           propose       node3   +0.712   0.000 ms  batch=2
           ...
    """
    lines = [f"trace {view.trace_id} · {view.op} · "
             f"{view.duration * 1e3:.3f} ms · origin {view.origin}"
             + ("  [truncated spans]" if view.truncated else "")]
    t0 = view.root.start
    for i, span in enumerate(view.spans):
        lead = "└─ " if i == 0 else "   "
        mark = " ✂" if span.truncated else ""
        extra = ""
        if span.fields:
            extra = "  " + " ".join(f"{k}={v}" for k, v
                                    in sorted(span.fields.items()))
        lines.append(
            f"{lead}{span.name:<14} {span.node:<8} "
            f"+{(span.start - t0) * 1e3:7.3f} "
            f"{span.duration * 1e3:8.3f} ms{mark}{extra}")
    return "\n".join(lines)


def format_phase_table(summary: Dict[str, dict]) -> str:
    """Render :func:`phase_summary` output as an aligned text table."""
    lines: List[str] = []
    for op in sorted(summary):
        entry = summary[op]
        lines.append(f"{op}: n={entry['count']}  "
                     f"mean={entry['total_mean_ms']:.3f} ms  "
                     f"p95={entry['total_p95_ms']:.3f} ms")
        lines.append(f"  {'phase':<14}{'mean ms':>10}{'p95 ms':>10}"
                     f"{'share':>8}")
        # built in canonical phase order; rendering feeds no scheduling
        for phase, row in entry["phases"].items():  # lint: allow(dict-order)
            lines.append(f"  {phase:<14}{row['mean_ms']:>10.3f}"
                         f"{row['p95_ms']:>10.3f}"
                         f"{row['share'] * 100:>7.1f}%")
    return "\n".join(lines)
