"""Causal per-request observability (`OBSERVABILITY.md`).

Two layers:

- :mod:`repro.obs.trace` — the tracer itself: a :class:`TraceContext`
  rides on client request messages; protocol code closes timestamped
  :class:`Span` objects (``route``, ``propose``, ``log_force``,
  ``replicate_rtt``, ``quorum_wait``, ``commit_apply``, ``reply``) into
  bounded per-node stores.  :class:`NullRequestTracer` makes the whole
  machinery a single attribute test when tracing is off.
- :mod:`repro.obs.phases` — the aggregator: folds a run's spans into
  per-phase :class:`~repro.sim.metrics.Histogram` objects and renders
  phase tables and span trees (the `repro trace` CLI, and the
  ``phases`` section of ``BENCH_report.json``).

This package never imports from :mod:`repro.core`; the protocol imports
*us*, so tracing stays a leaf dependency.
"""

from .phases import (CATCHUP_PHASES, READ_PHASES, WRITE_PHASES,
                     collect_traces,
                     format_phase_table, format_trace, phase_durations,
                     phase_histograms, phase_summary, slowest_traces)
from .trace import (NullRequestTracer, RequestTracer, Span, SpanStore,
                    TraceContext)

__all__ = [
    "Span", "SpanStore", "TraceContext",
    "RequestTracer", "NullRequestTracer",
    "WRITE_PHASES", "READ_PHASES", "CATCHUP_PHASES",
    "collect_traces", "phase_durations", "phase_histograms",
    "phase_summary",
    "slowest_traces", "format_trace", "format_phase_table",
]
