"""Benchmark harness: workloads, closed-loop clients, and one experiment
per table/figure of the paper's evaluation (see DESIGN.md's index)."""

from .workload import (Workload, VALUE_SIZE, conditional_put_workload,
                       mixed_workload, read_workload, write_workload)
from .harness import (CassandraTarget, LoadPoint, SpinnakerTarget,
                      run_load, sweep)
from .openloop import (BurstyArrivals, DiurnalArrivals, MuxedUsers,
                       OpenLoadPoint, PoissonArrivals, run_open_load)
from .experiments import ALL_EXPERIMENTS, ExperimentResult
from .report import render

__all__ = [
    "Workload", "VALUE_SIZE",
    "read_workload", "write_workload", "mixed_workload",
    "conditional_put_workload",
    "SpinnakerTarget", "CassandraTarget", "LoadPoint", "run_load", "sweep",
    "PoissonArrivals", "BurstyArrivals", "DiurnalArrivals",
    "MuxedUsers", "OpenLoadPoint", "run_open_load",
    "ALL_EXPERIMENTS", "ExperimentResult", "render",
]
