"""Workload definitions (§9, Appendices C & D).

The paper's workloads:

* **reads** — each client reads 4 KB values from random rows (§9.1);
* **writes** — each client writes 4 KB values into rows with consecutive
  keys (§9.2);
* **mixed** — a read/write mix at a fixed write percentage (§D.3);
* **conditional put** — values first inserted, then atomically replaced
  via the conditional-put API (§D.5).

Loads are swept by doubling the number of threads per client node
(Appendix C); the *measured* completed requests/second is the x-axis.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List

__all__ = ["Workload", "VALUE_SIZE", "read_workload", "write_workload",
           "mixed_workload", "conditional_put_workload", "ZipfSampler"]


class ZipfSampler:
    """Zipfian index sampler (YCSB-style skew; not in the paper, used by
    the skew ablation to show leader hot-spotting).

    Index ``i`` (0-based) is drawn with probability proportional to
    ``1 / (i + 1) ** theta``; ``theta=0.99`` is the YCSB default.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self, rng) -> int:
        """Draw an index using ``rng.random()``."""
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, index: int) -> float:
        lo = self._cdf[index - 1] if index > 0 else 0.0
        return self._cdf[index] - lo

#: the paper uses 4 KB values everywhere
VALUE_SIZE = 4096


@dataclass
class Workload:
    """One benchmark workload.

    ``read_mode``/``write_mode`` name consistency levels and are
    interpreted by the target adapter: for Spinnaker reads,
    ``"strong"``/``"timeline"``; for baseline reads, ``"quorum"``/
    ``"weak"``; for baseline writes, ``"quorum"``/``"weak"``; Spinnaker
    writes ignore the mode (there is only one kind) unless it is
    ``"conditional"``.
    """

    name: str
    write_fraction: float = 0.0
    read_mode: str = "strong"
    write_mode: str = "default"
    value_size: int = VALUE_SIZE
    #: rows preloaded before measurement (the read working set — cached
    #: in memory, as in the paper's read experiments)
    preload_rows: int = 2000
    #: "uniform" (the paper's workloads) or "zipfian" (skew ablation)
    key_distribution: str = "uniform"
    zipf_theta: float = 0.99

    def validate(self) -> "Workload":
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.value_size < 0:
            raise ValueError("value_size must be >= 0")
        if self.key_distribution not in ("uniform", "zipfian"):
            raise ValueError(
                f"unknown key distribution {self.key_distribution!r}")
        return self

    def key_chooser(self, keys, rng):
        """A zero-arg callable drawing keys per the distribution."""
        if self.key_distribution == "zipfian":
            sampler = ZipfSampler(len(keys), self.zipf_theta)
            return lambda: keys[sampler.sample(rng)]
        return lambda: rng.choice(keys)


def read_workload(read_mode: str, value_size: int = VALUE_SIZE,
                  preload_rows: int = 2000) -> Workload:
    """§9.1: 100% reads of 4 KB values from random (preloaded) rows."""
    return Workload(name=f"read-{read_mode}", write_fraction=0.0,
                    read_mode=read_mode, value_size=value_size,
                    preload_rows=preload_rows).validate()


def write_workload(write_mode: str = "default",
                   value_size: int = VALUE_SIZE) -> Workload:
    """§9.2: 100% writes of 4 KB values to consecutive keys."""
    return Workload(name=f"write-{write_mode}", write_fraction=1.0,
                    write_mode=write_mode, value_size=value_size,
                    preload_rows=0).validate()


def mixed_workload(write_fraction: float, read_mode: str,
                   write_mode: str = "default",
                   value_size: int = VALUE_SIZE) -> Workload:
    """§D.3: mixed reads and writes at a given write percentage."""
    return Workload(name=f"mixed-{int(write_fraction * 100)}w-{read_mode}",
                    write_fraction=write_fraction, read_mode=read_mode,
                    write_mode=write_mode, value_size=value_size,
                    preload_rows=2000).validate()


def conditional_put_workload(value_size: int = VALUE_SIZE) -> Workload:
    """§D.5: atomically replace preloaded values via conditional put."""
    return Workload(name="conditional-put", write_fraction=1.0,
                    read_mode="strong", write_mode="conditional",
                    value_size=value_size, preload_rows=2000).validate()
