"""Closed-loop benchmark harness.

Reproduces the paper's methodology (Appendix C): a cluster of client
nodes drives the datastore with closed-loop threads; load is swept by
doubling threads per client node; the reported latency is the full
client round trip; throughput is the *measured* completed requests per
second.  Instead of a fixed wall-clock window, each thread performs a
fixed number of operations (with a warm-up prefix excluded), which keeps
simulation cost proportional to the sample count.

Two *targets* adapt the harness to the two stores; they share node
counts, hardware profiles, key distribution, and value sizes so the
comparison isolates the replication protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baseline import CassandraCluster, CassandraConfig
from ..core import SpinnakerCluster, SpinnakerConfig
from ..core.datamodel import RequestTimeout, VersionMismatch
from ..core.partition import key_of
from ..sim.metrics import Histogram
from ..sim.process import spawn
from ..storage.lsn import LSN
from ..storage.records import CommitMarker, WriteRecord
from .workload import Workload

__all__ = ["LoadPoint", "SpinnakerTarget", "CassandraTarget", "run_load",
           "sweep", "N_CLIENT_NODES"]

#: the paper used a second 10-node cluster for clients
N_CLIENT_NODES = 10


@dataclass
class LoadPoint:
    """One point on a latency-vs-load curve."""

    threads: int
    throughput: float          # measured completed ops/sec
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    ops: int
    errors: int
    version_conflicts: int = 0

    def __str__(self) -> str:
        return (f"{self.threads:5d} thr  {self.throughput:9.0f} req/s  "
                f"mean {self.mean_ms:7.2f} ms  p95 {self.p95_ms:7.2f} ms")


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------

def _tuned_overlay(config: Optional[SpinnakerConfig]
                   ) -> Optional[SpinnakerConfig]:
    """Apply the active ``--tuned-profile`` overlay, if any.

    ``repro.tune.profiles.activate_tuned_profile`` arms a knob overlay
    (loaded from ``configs/tuned-<profile>.json``); every Spinnaker
    cluster the harness builds while it is armed gets those values laid
    over whatever config the experiment chose, so one flag retunes a
    whole bench run.  Imported lazily: the tuner's evaluator drives
    this harness, so the module dependency must stay one-way.
    """
    from ..tune.profiles import active_overlay
    from ..tune.registry import apply_values
    overlay = active_overlay()
    if not overlay:
        return config
    return apply_values(config or SpinnakerConfig(), overlay)


class SpinnakerTarget:
    """Adapter: the harness drives a Spinnaker cluster."""

    kind = "spinnaker"

    def __init__(self, n_nodes: int = 10,
                 config: Optional[SpinnakerConfig] = None, seed: int = 0,
                 request_tracer=None, topology=None,
                 placement: str = "ring"):
        self.cluster = SpinnakerCluster(n_nodes=n_nodes,
                                        config=_tuned_overlay(config),
                                        seed=seed,
                                        request_tracer=request_tracer,
                                        topology=topology,
                                        placement=placement)
        self.sim = self.cluster.sim

    def start(self) -> None:
        self.cluster.start()

    # -- preloading ------------------------------------------------------
    def preload(self, keys: List[bytes], value_size: int) -> None:
        """Seed rows durably into every replica's log *before* boot, so
        local recovery installs them: versions start at 1 and later
        writes (higher epoch after the bootstrap election) win."""
        part = self.cluster.partitioner
        seqs: Dict[str, Dict[int, int]] = {
            name: {} for name in self.cluster.nodes}
        value = b"x" * value_size
        for key in keys:
            cohort = part.cohort_for_key(key_of(key))
            for member in cohort.members:
                node = self.cluster.nodes[member]
                seq = seqs[member].get(cohort.cohort_id, 0) + 1
                seqs[member][cohort.cohort_id] = seq
                node.wal.append(WriteRecord(
                    lsn=LSN(1, seq), cohort_id=cohort.cohort_id, key=key,
                    colname=b"v", value=value, version=1), force=True)
        for name, per_cohort in seqs.items():
            node = self.cluster.nodes[name]
            for cohort_id, seq in per_cohort.items():
                node.wal.append(CommitMarker(
                    lsn=LSN(1, seq), cohort_id=cohort_id,
                    committed_lsn=LSN(1, seq)), force=False)
        self.sim.run(until=self.sim.now + 1.0)  # land the forces

    # -- operations ---------------------------------------------------------
    def make_thread(self, client_name: str, workload: Workload,
                    thread_id: int, keys: List[bytes], rng):
        client = self.cluster.client(client_name)
        value = b"x" * workload.value_size
        choose_key = workload.key_chooser(keys, rng) if keys else None

        def read_op():
            key = choose_key()
            consistent = workload.read_mode == "strong"
            yield from client.get(key, b"v", consistent=consistent)

        def write_op():
            write_op.seq += 1
            key = b"w%d-%d" % (thread_id, write_op.seq)  # consecutive keys
            yield from client.put(key, b"v", value)
        write_op.seq = 0

        def conditional_op():
            # §D.5: replace values whose version the client knows (the
            # paper's clients learned versions during the insert phase).
            # Alternate insert (expected version 0) and replace (version
            # 1) over thread-private consecutive keys, so every call
            # pays the leader's read + version compare and no extra RTT.
            conditional_op.seq += 1
            replace = conditional_op.seq % 2 == 0
            key = b"cw%d-%d" % (thread_id,
                                (conditional_op.seq - 1) // 2)
            yield from client.conditional_put(
                key, b"v", value, 1 if replace else 0)
        conditional_op.seq = 0

        if workload.write_mode == "conditional":
            return read_op, conditional_op
        return read_op, write_op


class CassandraTarget:
    """Adapter: the harness drives the eventually consistent baseline."""

    kind = "cassandra"

    def __init__(self, n_nodes: int = 10,
                 config: Optional[CassandraConfig] = None, seed: int = 0):
        self.cluster = CassandraCluster(n_nodes=n_nodes, config=config,
                                        seed=seed)
        self.sim = self.cluster.sim

    def start(self) -> None:
        pass  # baseline nodes serve immediately

    def preload(self, keys: List[bytes], value_size: int) -> None:
        part = self.cluster.partitioner
        value = b"x" * value_size
        for key in keys:
            cohort = part.cohort_for_key(key_of(key))
            for member in cohort.members:
                node = self.cluster.nodes[member]
                gid = cohort.cohort_id
                node._local_seq[gid] = node._local_seq.get(gid, 0) + 1
                record = WriteRecord(
                    lsn=LSN(1, node._local_seq[gid]), cohort_id=gid,
                    key=key, colname=b"v", value=value, version=1,
                    timestamp=0.0)
                node.wal.append(record, force=True)
                node.engines[gid].apply(record)
        self.sim.run(until=self.sim.now + 1.0)

    def make_thread(self, client_name: str, workload: Workload,
                    thread_id: int, keys: List[bytes], rng):
        client = self.cluster.client(client_name)
        value = b"x" * workload.value_size
        choose_key = workload.key_chooser(keys, rng) if keys else None
        read_mode = ("quorum" if workload.read_mode
                     in ("quorum", "strong") else "weak")
        write_mode = ("weak" if workload.write_mode == "weak"
                      else "quorum")

        def read_op():
            key = choose_key()
            yield from client.read(key, b"v", consistency=read_mode)

        def write_op():
            write_op.seq += 1
            key = b"w%d-%d" % (thread_id, write_op.seq)
            yield from client.write(key, b"v", value,
                                    consistency=write_mode)
        write_op.seq = 0

        return read_op, write_op


# ---------------------------------------------------------------------------
# The closed loop
# ---------------------------------------------------------------------------

def run_load(target, workload: Workload, threads: int,
             ops_per_thread: int = 60, warmup_ops: int = 10,
             seed: int = 1) -> LoadPoint:
    """Run one load point: ``threads`` closed-loop clients, each doing
    ``warmup_ops`` unmeasured then ``ops_per_thread`` measured ops."""
    workload.validate()
    sim = target.sim
    rng_master = target.cluster.rng.fork(f"bench-{seed}")
    keys = [b"row-%06d" % i for i in range(workload.preload_rows)]
    if workload.preload_rows:
        target.preload(keys, workload.value_size)
    target.start()

    hist = Histogram()
    per_op: Dict[str, Histogram] = {"read": Histogram(),
                                    "write": Histogram()}
    stats = {"errors": 0, "conflicts": 0, "done": 0,
             "first_ts": None, "last_ts": None}

    def thread_body(tid: int):
        client_name = f"bclient{tid % N_CLIENT_NODES}"
        rng = rng_master.stream(f"thread-{tid}")
        read_op, write_op = target.make_thread(client_name, workload, tid,
                                               keys, rng)
        total = warmup_ops + ops_per_thread
        for i in range(total):
            is_write = rng.random() < workload.write_fraction
            op = write_op if is_write else read_op
            start = sim.now
            try:
                yield from op()
            except VersionMismatch:
                stats["conflicts"] += 1
                continue
            except RequestTimeout:
                stats["errors"] += 1
                continue
            if i < warmup_ops:
                continue
            latency = sim.now - start
            hist.add(latency)
            per_op["write" if is_write else "read"].add(latency)
            if stats["first_ts"] is None:
                stats["first_ts"] = sim.now
            stats["last_ts"] = sim.now
        stats["done"] += 1

    for tid in range(threads):
        spawn(sim, thread_body(tid), name=f"bench-thread-{tid}")
    target.cluster.run_until(lambda: stats["done"] == threads,
                             limit=36000.0, step=5.0,
                             what="benchmark threads")

    window = ((stats["last_ts"] - stats["first_ts"])
              if stats["first_ts"] is not None else 0.0)
    throughput = hist.count / window if window > 0 else 0.0
    return LoadPoint(
        threads=threads, throughput=throughput,
        mean_ms=hist.mean() * 1e3, p50_ms=hist.percentile(50) * 1e3,
        p95_ms=hist.percentile(95) * 1e3,
        p99_ms=hist.percentile(99) * 1e3,
        ops=hist.count, errors=stats["errors"],
        version_conflicts=stats["conflicts"])


def sweep(target_factory: Callable[[], object], workload: Workload,
          thread_counts: List[int], ops_per_thread: int = 60,
          warmup_ops: int = 10) -> List[LoadPoint]:
    """One latency-vs-load curve: a fresh cluster per load point (the
    paper likewise restarts between runs)."""
    points = []
    for threads in thread_counts:
        target = target_factory()
        points.append(run_load(target, workload, threads,
                               ops_per_thread=ops_per_thread,
                               warmup_ops=warmup_ops))
    return points
