"""Open-loop load generation: arrivals decoupled from completions.

The paper's harness (Appendix C) is *closed-loop*: each client thread
issues its next request only after the previous one returns, so a slow
server throttles its own offered load.  Production front-ends do not
behave that way — users arrive independently of how the datastore is
doing — and the difference matters exactly where this repo's north star
lives (does the design hold up at hundreds of nodes and ~10⁶ users?).
This module adds the open-loop side:

* **arrival processes** — :class:`PoissonArrivals` (memoryless, the
  M/G/k textbook case), :class:`BurstyArrivals` (on/off modulated
  Poisson: flash crowds), and :class:`DiurnalArrivals` (sinusoidally
  rate-modulated Poisson: day/night cycles).  Each draws inter-arrival
  gaps from a dedicated :class:`~repro.sim.rng.RngRegistry` stream, so
  arrival sequences are deterministic per seed and isolated from every
  other consumer of randomness;
* **client multiplexing** — one simulated driver process *per shard*
  models thousands of users (:class:`MuxedUsers`): per-user state is
  two compact ``array('I')`` counters (8 bytes/user, independent of how
  many operations the user performs), so a million modeled users cost
  ~8 MB rather than a million generator frames;
* :func:`run_open_load` — the harness: drive a target at a fixed
  *offered* rate for a fixed window and report completed throughput,
  latency percentiles, and how many arrivals were shed at the in-flight
  cap (the open-loop overload signal that closed loops can never show).

Determinism: driver processes draw only from their own forked streams
and never branch on tracer state, so simulated time is bit-identical
with request tracing on or off.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.datamodel import RequestTimeout, VersionMismatch
from ..sim.metrics import Histogram
from ..sim.process import spawn, timeout
from .harness import N_CLIENT_NODES
from .workload import Workload

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "MuxedUsers",
    "OpenLoadPoint",
    "run_open_load",
]


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    name = "poisson"
    __slots__ = ("rate",)

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("arrival rate must be > 0")
        self.rate = rate

    def next_gap(self, rng, now: float) -> float:
        """Seconds until the next arrival (``now`` unused: memoryless)."""
        return rng.expovariate(self.rate)


def _thinned_gap(rng, now: float, rate_max: float, rate_at) -> float:
    """One inter-arrival gap of a non-homogeneous Poisson process.

    Lewis-Shedler thinning: draw candidate arrivals at the bounding
    rate ``rate_max`` and accept each with probability
    ``rate_at(t) / rate_max``.  Exact for any intensity bounded by
    ``rate_max`` — naively drawing a gap at the rate in force at draw
    time undercounts sharp bursts (the last low-rate gap overshoots
    deep into the burst window).  Deterministic given the rng stream;
    the number of draws per arrival varies, which is fine because each
    generator owns its stream exclusively.
    """
    t = now
    while True:
        t += rng.expovariate(rate_max)
        if rng.random() * rate_max <= rate_at(t):
            return t - now


class BurstyArrivals:
    """On/off modulated Poisson: flash-crowd bursts over a quiet floor.

    During the first ``on_s`` seconds of every ``on_s + off_s`` cycle
    arrivals come at ``rate * burst_factor``; outside the burst they
    drop to the rate that keeps the *long-run mean* near ``rate``
    (clamped at a small floor so the off phase is never silent).
    Sampled by thinning (:func:`_thinned_gap`), so the burst windows
    get their full arrival mass despite the sharp rate edges.
    """

    name = "bursty"
    __slots__ = ("rate", "burst_factor", "on_s", "off_s",
                 "_rate_on", "_rate_off")

    def __init__(self, rate: float, burst_factor: float = 4.0,
                 on_s: float = 0.5, off_s: float = 1.5):
        if rate <= 0:
            raise ValueError("arrival rate must be > 0")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if on_s <= 0 or off_s <= 0:
            raise ValueError("on_s and off_s must be > 0")
        self.rate = rate
        self.burst_factor = burst_factor
        self.on_s = on_s
        self.off_s = off_s
        self._rate_on = rate * burst_factor
        # solve mean = (on*rate_on + off*rate_off) / (on + off) for off
        mean_total = rate * (on_s + off_s)
        self._rate_off = max((mean_total - self._rate_on * on_s) / off_s,
                             rate * 0.05)

    def _rate_at(self, t: float) -> float:
        phase = t % (self.on_s + self.off_s)
        return self._rate_on if phase < self.on_s else self._rate_off

    def next_gap(self, rng, now: float) -> float:
        return _thinned_gap(rng, now, self._rate_on, self._rate_at)


class DiurnalArrivals:
    """Sinusoidally rate-modulated Poisson: a day/night load cycle.

    Instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*now /
    period))``, floored at 5% of the mean so the trough never goes
    fully silent.  Sampled exactly by thinning (:func:`_thinned_gap`)
    against the peak rate.
    """

    name = "diurnal"
    __slots__ = ("rate", "period", "amplitude")

    def __init__(self, rate: float, period: float = 60.0,
                 amplitude: float = 0.5):
        if rate <= 0:
            raise ValueError("arrival rate must be > 0")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude

    def _rate_at(self, t: float) -> float:
        rate = self.rate * (1.0 + self.amplitude
                            * math.sin(2.0 * math.pi * t / self.period))
        return max(rate, self.rate * 0.05)

    def next_gap(self, rng, now: float) -> float:
        return _thinned_gap(rng, now, self.rate * (1.0 + self.amplitude),
                            self._rate_at)


# ---------------------------------------------------------------------------
# Multiplexed users
# ---------------------------------------------------------------------------

class MuxedUsers:
    """Bounded per-user state for a large modeled population.

    One driver process per shard attributes each arrival to a user in
    its contiguous slice of ``[0, n)``.  The only per-user storage is a
    pair of unsigned 32-bit counters (ops issued / completed), so the
    footprint is a flat ``8 * n`` bytes no matter how long the run is —
    the property the scale experiments rely on to model ~10⁶ users.
    """

    __slots__ = ("n", "shards", "issued", "completed")

    def __init__(self, n: int, shards: int):
        if n < 1 or shards < 1 or shards > n:
            raise ValueError(f"bad population n={n} shards={shards}")
        self.n = n
        self.shards = shards
        self.issued = array("I", bytes(4 * n))
        self.completed = array("I", bytes(4 * n))

    def shard_bounds(self, shard: int) -> range:
        """The user-id range owned by ``shard`` (near-equal slices)."""
        base = (self.n * shard) // self.shards
        end = (self.n * (shard + 1)) // self.shards
        return range(base, end)

    def pick(self, shard: int, rng) -> int:
        """Attribute one arrival to a uniform-random user of the shard."""
        bounds = self.shard_bounds(shard)
        uid = bounds.start + rng.randrange(len(bounds))
        self.issued[uid] += 1
        return uid

    def complete(self, uid: int) -> None:
        self.completed[uid] += 1

    def state_bytes(self) -> int:
        """Total per-user state held (the boundedness invariant)."""
        return (self.issued.itemsize * len(self.issued)
                + self.completed.itemsize * len(self.completed))

    def active_users(self) -> int:
        """How many users issued at least one operation."""
        return sum(1 for c in self.issued if c)


# ---------------------------------------------------------------------------
# The open loop
# ---------------------------------------------------------------------------

@dataclass
class OpenLoadPoint:
    """One open-loop measurement window."""

    arrival: str               # arrival-process name
    offered_rate: float        # configured arrivals/sec
    observed_offered: float    # arrivals/sec actually generated in-window
    throughput: float          # completed ops/sec in-window
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    ops: int
    errors: int
    shed: int                  # arrivals dropped at the in-flight cap
    n_users: int
    active_users: int
    user_state_bytes: int

    def __str__(self) -> str:
        return (f"{self.arrival:8s} offered {self.offered_rate:9.0f}/s  "
                f"done {self.throughput:9.0f}/s  "
                f"p95 {self.p95_ms:7.2f} ms  shed {self.shed}")


def run_open_load(target, workload: Workload, n_users: int, rate: float,
                  duration: float, warmup: float = 1.0,
                  arrivals: Callable[[float], object] = PoissonArrivals,
                  shards: int = 8, max_inflight_per_shard: int = 128,
                  seed: int = 1,
                  preload: bool = True) -> OpenLoadPoint:
    """Drive ``target`` open-loop at ``rate`` arrivals/sec for
    ``duration`` measured seconds (after ``warmup`` unmeasured ones).

    ``arrivals`` is a factory called with each shard's share of the
    rate (``rate / shards``); pass one of the arrival-process classes.
    Arrivals that find the shard at ``max_inflight_per_shard`` ops in
    flight are *shed* and counted — an open loop must never queue
    unboundedly inside the generator, and the shed count is the
    overload signal.
    """
    workload.validate()
    if n_users < shards:
        raise ValueError("need at least one user per shard")
    sim = target.sim
    rng_master = target.cluster.rng.fork(f"openloop-{seed}")
    keys = [b"row-%06d" % i for i in range(workload.preload_rows)]
    if preload and workload.preload_rows:
        target.preload(keys, workload.value_size)
    target.start()

    users = MuxedUsers(n_users, shards)
    hist = Histogram()
    inflight = array("I", bytes(4 * shards))
    stats = {"offered": 0, "shed": 0, "errors": 0, "conflicts": 0,
             "inflight": 0, "drivers_done": 0}
    t0 = sim.now
    measure_start = t0 + warmup
    end = measure_start + duration
    shard_rate = rate / shards

    def one_op(op, sid: int, uid: int, measured: bool):
        start = sim.now
        try:
            yield from op()
        except VersionMismatch:
            stats["conflicts"] += 1
            return
        except RequestTimeout:
            stats["errors"] += 1
            return
        finally:
            inflight[sid] -= 1
            stats["inflight"] -= 1
            users.complete(uid)
        if measured:
            hist.add(sim.now - start)

    def driver(sid: int):
        arr = arrivals(shard_rate)
        rng_arr = rng_master.stream(f"arrivals-{sid}")
        rng_ops = rng_master.stream(f"ops-{sid}")
        client_name = f"bclient{sid % N_CLIENT_NODES}"
        read_op, write_op = target.make_thread(client_name, workload, sid,
                                               keys, rng_ops)
        while True:
            yield timeout(sim, arr.next_gap(rng_arr, sim.now - t0))
            if sim.now >= end:
                break
            uid = users.pick(sid, rng_arr)
            measured = sim.now >= measure_start
            if measured:
                stats["offered"] += 1
            if inflight[sid] >= max_inflight_per_shard:
                if measured:
                    stats["shed"] += 1
                continue
            inflight[sid] += 1
            stats["inflight"] += 1
            is_write = rng_arr.random() < workload.write_fraction
            spawn(sim, one_op(write_op if is_write else read_op, sid, uid,
                              measured),
                  name=f"open-op-{sid}")
        stats["drivers_done"] += 1

    for sid in range(shards):
        spawn(sim, driver(sid), name=f"open-driver-{sid}")
    target.cluster.run_until(
        lambda: stats["drivers_done"] == shards and stats["inflight"] == 0,
        limit=warmup + duration + 300.0, step=5.0,
        what="open-loop drivers")

    throughput = hist.count / duration if duration > 0 else 0.0
    return OpenLoadPoint(
        arrival=getattr(arrivals(shard_rate), "name", "custom"),
        offered_rate=rate,
        observed_offered=stats["offered"] / duration if duration else 0.0,
        throughput=throughput,
        mean_ms=hist.mean() * 1e3,
        p50_ms=hist.percentile(50) * 1e3,
        p95_ms=hist.percentile(95) * 1e3,
        p99_ms=hist.percentile(99) * 1e3,
        ops=hist.count, errors=stats["errors"], shed=stats["shed"],
        n_users=n_users, active_users=users.active_users(),
        user_state_bytes=users.state_bytes())
