"""Rendering experiment results as the rows/series the paper reports.

``python -m repro.bench.report [exp ...] [--scale S] [--json FILE]
[--report FILE]`` runs experiments and prints their tables plus
shape-check verdicts; EXPERIMENTS.md records a full-scale run.
``--json`` additionally writes full machine-readable results for
downstream tooling; ``--report`` writes the compact per-experiment
summary (``BENCH_report.json`` at the repo root) that successive PRs
diff to track performance — naming a subset of experiments splices
them into an existing same-scale report instead of replacing it.  Experiments with a phase probe
(``PHASE_PROBES``) embed a ``phases`` section — per-phase latency
attribution from ``repro.obs`` (see OBSERVABILITY.md); ``--refresh-phases
FILE`` re-runs only the probes and rewrites the ``phases`` sections of
an existing report without re-running the (much slower) sweeps.
``--tuned-profile NAME`` applies the checked-in
``configs/tuned-<NAME>.json`` knob overlay to every Spinnaker cluster
the run builds (see TUNING.md); reports tagged with a tuned profile
only merge into reports with the same tag.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Dict, List, Optional

from .experiments import ALL_EXPERIMENTS, PHASE_PROBES, ExperimentResult
from .harness import LoadPoint

__all__ = ["render", "to_dict", "summarize", "write_bench_report",
           "refresh_phases", "main"]


def to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable view of an experiment result."""
    series = {}
    for label, data in result.series.items():
        if data and isinstance(data[0], LoadPoint):
            series[label] = [dataclasses.asdict(p) for p in data]
        else:
            series[label] = list(data)
    out = {
        "experiment": result.exp_id,
        "title": result.title,
        "series": series,
        "checks": dict(result.checks),
        "passed": result.passed,
        "notes": result.notes,
    }
    if result.phases:
        out["phases"] = result.phases
    return out


def summarize(result: ExperimentResult) -> dict:
    """A compact, diff-friendly summary of one experiment.

    Load-point series collapse to the numbers a perf reviewer compares
    across PRs — peak sustained throughput and the latency at the lowest
    load point; row series (recovery tables) are kept verbatim.
    """
    series: Dict[str, object] = {}
    for label, data in result.series.items():
        if data and isinstance(data[0], LoadPoint):
            series[label] = {
                "points": len(data),
                "peak_throughput_rps": round(
                    max(p.throughput for p in data), 1),
                "low_load_mean_ms": round(data[0].mean_ms, 3),
                "low_load_p95_ms": round(data[0].p95_ms, 3),
            }
        else:
            series[label] = list(data)
    out = {
        "title": result.title,
        "passed": result.passed,
        "checks": dict(result.checks),
        "series": series,
        "notes": result.notes,
    }
    if result.phases:
        out["phases"] = result.phases
    return out


def write_bench_report(results: List[ExperimentResult], path: str,
                       scale: float, merge: bool = False,
                       tuned_profile: Optional[str] = None) -> None:
    """Write the cross-PR perf-tracking summary (``BENCH_report.json``).

    With ``merge=True`` (a subset run) the named experiments are spliced
    into the existing report instead of replacing it, so re-running one
    experiment doesn't discard the rest — but only when the scales (and
    any active ``--tuned-profile``) match; a scale or overlay change
    invalidates the old numbers, so the file is rewritten from just
    this run.
    """
    payload = {
        "scale": scale,
        "experiments": {r.exp_id: summarize(r) for r in results},
    }
    if tuned_profile is not None:
        payload["tuned_profile"] = tuned_profile
    if merge:
        try:
            with open(path) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
        if (existing is not None and existing.get("scale") == scale
                and existing.get("tuned_profile") == tuned_profile):
            merged = dict(existing.get("experiments", {}))
            merged.update(payload["experiments"])
            payload["experiments"] = merged
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def refresh_phases(path: str, seed: int = 1) -> List[str]:
    """Re-run every phase probe and splice the results into an existing
    report file, leaving the sweep-derived sections untouched.

    The probes are fixed-size and independent of the report's ``scale``
    (see ``_phase_probe``), so refreshing them does not invalidate the
    recorded curves.  Returns the experiment ids refreshed.
    """
    with open(path) as fh:
        payload = json.load(fh)
    refreshed = []
    for exp_id in sorted(PHASE_PROBES):
        entry = payload.get("experiments", {}).get(exp_id)
        if entry is None:
            continue
        entry["phases"] = PHASE_PROBES[exp_id](seed=seed)
        refreshed.append(exp_id)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return refreshed


def _render_phases(phases: Dict[str, dict]) -> List[str]:
    lines = ["  phases (traced probe):"]
    for op in sorted(phases):
        entry = phases[op]
        lines.append(f"    {op}: n={entry['count']}  "
                     f"mean={entry['total_mean_ms']:.2f} ms")
        # built in canonical phase order by phase_summary
        for name, row in entry["phases"].items():  # lint: allow(dict-order)
            lines.append(f"      {name:<14}{row['mean_ms']:>9.3f} ms  "
                         f"{row['share'] * 100:5.1f}%")
    return lines


def _render_points(label: str, points: List[LoadPoint]) -> List[str]:
    lines = [f"  {label}:"]
    lines.append("    threads   load(req/s)   mean(ms)    p95(ms)   ops")
    for p in points:
        lines.append(f"    {p.threads:7d}   {p.throughput:11.0f}   "
                     f"{p.mean_ms:8.2f}   {p.p95_ms:8.2f}   {p.ops:5d}")
    return lines


def _render_rows(label: str, rows: List[dict]) -> List[str]:
    lines = [f"  {label}:"]
    if not rows:
        return lines
    keys = list(rows[0].keys())
    lines.append("    " + "   ".join(f"{k:>16s}" for k in keys))
    for row in rows:
        lines.append("    " + "   ".join(
            f"{row[k]:16.3f}" if isinstance(row[k], float)
            else f"{row[k]:16}" for k in keys))
    return lines


def render(result: ExperimentResult) -> str:
    """Human-readable experiment report: series tables + check verdicts."""
    lines = [f"== {result.exp_id}: {result.title} =="]
    for label, data in result.series.items():
        if data and isinstance(data[0], LoadPoint):
            lines.extend(_render_points(label, data))
        else:
            lines.extend(_render_rows(label, data))
    if result.phases:
        lines.extend(_render_phases(result.phases))
    if result.notes:
        lines.append(f"  notes: {result.notes}")
    for check, ok in result.checks.items():
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {check}")
    lines.append(f"  => {'SHAPE OK' if result.passed else 'SHAPE MISMATCH'}")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    scale = 1.0
    json_path = None
    report_path = None
    refresh_path = None
    tuned_profile = None
    names: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--scale":
            scale = float(next(it))
        elif arg == "--json":
            json_path = next(it)
        elif arg == "--report":
            report_path = next(it)
        elif arg == "--refresh-phases":
            refresh_path = next(it)
        elif arg == "--tuned-profile":
            tuned_profile = next(it)
        else:
            names.append(arg)
    if refresh_path is not None:
        refreshed = refresh_phases(refresh_path)
        print(f"refreshed phases of {', '.join(refreshed)} "
              f"in {refresh_path}")
        return 0
    subset = bool(names)
    if not names:
        names = list(ALL_EXPERIMENTS)
    status = 0
    collected = []
    results = []
    if tuned_profile is not None:
        from ..tune.profiles import (activate_tuned_profile,
                                     clear_tuned_profile)
        activate_tuned_profile(tuned_profile)
        print(f"tuned profile {tuned_profile!r} active: every Spinnaker "
              f"cluster gets the configs/tuned-{tuned_profile}.json "
              f"overlay\n")
    try:
        for name in names:
            fn = ALL_EXPERIMENTS.get(name)
            if fn is None:
                print(f"unknown experiment {name!r}; "
                      f"choices: {', '.join(ALL_EXPERIMENTS)}")
                return 2
            result = fn(scale=scale)
            print(render(result))
            print()
            collected.append(to_dict(result))
            results.append(result)
            if not result.passed:
                status = 1
    finally:
        if tuned_profile is not None:
            clear_tuned_profile()
    if json_path is not None:
        with open(json_path, "w") as fh:
            json.dump({"scale": scale, "results": collected}, fh,
                      indent=2)
        print(f"wrote {json_path}")
    if report_path is not None:
        write_bench_report(results, report_path, scale, merge=subset,
                           tuned_profile=tuned_profile)
        print(f"wrote {report_path}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
